//! Minimal, API-compatible subset of `serde_json` for offline builds:
//! `to_string`, `to_string_pretty`, `from_str`, and the `json!` macro,
//! all over the vendored serde shim's [`Value`] tree.

pub use serde::{Error, Value};

use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

/// Builds a [`Value`] literal. Object values may be arbitrary expressions
/// (including nested `json!` calls), which covers serde_json's macro usage
/// in this workspace.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::Value::from($val)), )*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Keep integral floats distinguishable from integers.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, items.iter(), items.len(), indent, depth, '[', ']', |out, item, ind, d| {
            write_value(out, item, ind, d)
        }),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            '{',
            '}',
            |out, (key, val), ind, d| {
                write_escaped(out, key);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)] // internal helper shared by array/object
fn write_seq<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            // Non-negative integers parse as U64 to match serialization.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = json!({
            "name": "bench",
            "count": 3usize,
            "ratio": 0.5,
            "items": vec![json!({"a": 1i64}), json!({"a": 2i64})],
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("line\n\"quote\"\tπ".to_owned());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
