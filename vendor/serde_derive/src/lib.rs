//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! syn/quote are unavailable offline, so the input item is parsed directly
//! from the raw `TokenStream` and the impls are emitted as source text.
//! Supported shapes — which cover every derive site in this workspace:
//! non-generic named-field structs (with `#[serde(skip)]`), tuple structs,
//! and fieldless enums. Anything else panics with a clear message so the
//! gap is visible at compile time rather than producing a wrong impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    /// (name, fields); each field is (ident, skip).
    NamedStruct(String, Vec<(String, bool)>),
    /// (name, field count).
    TupleStruct(String, usize),
    /// (name, variant names).
    FieldlessEnum(String, Vec<String>),
}

/// True when a `#[...]` attribute body is `serde(skip)`.
fn is_skip_attr(stream: TokenStream) -> bool {
    let text: String = stream.to_string().split_whitespace().collect();
    text == "serde(skip)"
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let kind;
    // Header: attributes and visibility, then `struct` or `enum`.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Consume a `(crate)`-style restriction if present.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = id.to_string();
                break;
            }
            other => panic!("serde shim derive: unexpected token in item header: {other:?}"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive: generic type `{name}` is not supported")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Item::NamedStruct(name, parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && kind == "struct" => {
            Item::TupleStruct(name, count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "enum" => {
            Item::FieldlessEnum(name, parse_fieldless_variants(g.stream()))
        }
        other => panic!("serde shim derive: unsupported item body for `{name}`: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<(String, bool)> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let mut skip = false;
        // Field attributes and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        skip |= is_skip_attr(g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break; // end of fields (or trailing comma already consumed)
        };
        fields.push((id.to_string(), skip));
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field, found {other:?}"),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    } else if c == ',' && angle_depth == 0 {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_fieldless_variants(stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Variant attributes (doc comments etc.).
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() != '#' {
                break;
            }
            iter.next();
            iter.next(); // the [...] group
        }
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break;
        };
        let variant = id.to_string();
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Group(_)) => panic!(
                "serde shim derive: enum variant `{variant}` carries data, which is not supported"
            ),
            other => panic!("serde shim derive: unexpected token after variant: {other:?}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::NamedStruct(name, fields) => {
            let entries: String = fields
                .iter()
                .filter(|(_, skip)| !skip)
                .map(|(f, _)| {
                    format!("(String::from(\"{f}\"), serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct(name, 1) => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                     serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct(name, n) => {
            let entries: String = (0..n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Array(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::FieldlessEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str(String::from(match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde shim derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::NamedStruct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|(f, skip)| {
                    if *skip {
                        format!("{f}: Default::default(),")
                    } else {
                        format!("{f}: serde::Deserialize::from_value(v.field(\"{f}\")?)?,")
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         Ok({name} {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct(name, 1) => format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok({name}(serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct(name, n) => {
            let entries: String = (0..n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Array(items) if items.len() == {n} =>\n\
                                 Ok({name}({entries})),\n\
                             other => Err(serde::Error::new(format!(\n\
                                 \"expected array of {n}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::FieldlessEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(serde::Error::new(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(serde::Error::new(format!(\n\
                                 \"expected string, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde shim derive: generated impl must parse")
}
