//! Minimal, API-compatible subset of `criterion` for offline builds.
//!
//! Implements the configuration/builder surface the workspace's benches
//! use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `iter`, `iter_batched`) with a simple but
//! honest measurement loop: per sample, the routine runs enough iterations
//! to cover ~1ms, and the reported figure is the median over
//! `sample_size` samples after a warm-up. No statistics engine, plots, or
//! baseline storage.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        let config = self.config;
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            config,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), self.config, None, &mut routine);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    config: Config,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.config, self.throughput, &mut routine);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.config, self.throughput, &mut |b: &mut Bencher| {
            routine(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    config: Config,
    /// Median seconds per iteration, filled by `iter`/`iter_batched`.
    median_secs: f64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate iterations per sample to roughly 1ms.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let warm_until = Instant::now() + self.config.warm_up_time.min(Duration::from_millis(500));
        while Instant::now() < warm_until {
            black_box(routine());
        }

        let budget = Instant::now() + self.config.measurement_time;
        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
            if Instant::now() > budget {
                break;
            }
        }
        self.median_secs = median(&mut samples);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_input = setup();
        black_box(routine(warm_input));

        let budget = Instant::now() + self.config.measurement_time;
        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_secs_f64());
            if Instant::now() > budget {
                break;
            }
        }
        self.median_secs = median(&mut samples);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    samples[samples.len() / 2]
}

fn run_benchmark(
    label: &str,
    config: Config,
    throughput: Option<Throughput>,
    routine: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        config,
        median_secs: 0.0,
    };
    routine(&mut bencher);
    let time = format_secs(bencher.median_secs);
    match throughput {
        Some(Throughput::Elements(n)) if bencher.median_secs > 0.0 => {
            let rate = n as f64 / bencher.median_secs;
            println!("  {label:<50} {time:>12}  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if bencher.median_secs > 0.0 => {
            let rate = n as f64 / bencher.median_secs / (1024.0 * 1024.0);
            println!("  {label:<50} {time:>12}  ({rate:.1} MiB/s)");
        }
        _ => println!("  {label:<50} {time:>12}"),
    }
}

fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Expands to a function running every listed target, in both the plain
/// `criterion_group!(name, targets...)` and the `name/config/targets`
/// struct-ish form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
