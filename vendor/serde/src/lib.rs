//! Minimal, API-compatible subset of `serde` for offline builds.
//!
//! The real serde is a zero-copy streaming framework; this shim instead
//! round-trips every value through a small JSON-like [`Value`] tree, which
//! is all the workspace needs (derived struct/enum (de)serialization plus
//! `serde_json` text round-trips). The `Serialize`/`Deserialize` derive
//! macros come from the sibling `serde_derive` shim and target these traits.

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object; field order follows declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object, erroring with context otherwise.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Shared (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls ---------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // Non-negative integers normalize to U64 (like serde_json's
                // Number) so parsed and constructed values compare equal.
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    ref other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::I64(n) => u64::try_from(n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    ref other => Err(Error::new(format!(
                        "expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    ref other => Err(Error::new(format!(
                        "expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::new(format!(
                                "expected tuple of {expected}, found array of {}", items.len())));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::new(format!(
                        "expected array, found {}", other.kind()))),
                }
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2));

// `From` conversions feeding `serde_json::json!` (they must live here, in
// `Value`'s own crate, to satisfy the orphan rule).
macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                // Match Serialize's normalization: non-negative ints are U64.
                let n = n as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
    )*};
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::U64(n as u64) }
        }
    )*};
}

impl_from_signed!(i8, i16, i32, i64, isize);
impl_from_unsigned!(u8, u16, u32, u64, usize);

impl From<f32> for Value {
    fn from(x: f32) -> Value {
        Value::F64(x as f64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::Str(s.clone())
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
