//! Minimal, API-compatible subset of the `rand` crate for offline builds.
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! surface the workspace actually uses: `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, and `Rng::gen_range` over integer and float ranges.
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid and fully deterministic, but NOT the same stream as upstream
//! `StdRng` (ChaCha12); seeds here reproduce only against this shim.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching the subset of `rand::SeedableRng` used.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods; blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        self.gen_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-15i64..=15);
            assert!((-15..=15).contains(&v));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.4f64..0.4);
            assert!((-0.4..0.4).contains(&v));
        }
    }
}
