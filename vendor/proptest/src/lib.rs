//! Minimal, API-compatible subset of `proptest` for offline builds.
//!
//! Provides the surface the workspace's property tests use: the
//! `proptest!` macro, range strategies over integers and floats,
//! `collection::vec`, and the `prop_assert*` / `prop_assume!` macros.
//! Unlike real proptest there is no shrinking and no persistence; each
//! property runs over a fixed number of deterministically sampled cases
//! (the first cases cover range endpoints, so boundaries are always hit).

use std::ops::Range;

/// Cases per property. Matches real proptest's default magnitude while
/// keeping the whole suite fast.
pub const CASES: usize = 256;

/// Deterministic generator behind every strategy (SplitMix64).
pub struct TestRng {
    state: u64,
    /// Index of the current case, used by range strategies to force
    /// endpoint coverage on the first samples.
    pub case: usize,
}

impl TestRng {
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
            case: 0,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of values for one proptest argument.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // First two cases pin the endpoints.
                match rng.case {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                    }
                }
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                match rng.case {
                    0 => self.start,
                    _ => self.start + (self.end - self.start) * (rng.unit_f64() as $t),
                }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = match rng.case {
                0 => self.len.start,
                1 => self.len.end - 1,
                _ => self.len.start + (rng.next_u64() % span) as usize,
            };
            // Element generation must not see the length-pinning cases, or
            // every element of the first two vectors would be an endpoint.
            let case = rng.case;
            rng.case = usize::MAX;
            let out = (0..n).map(|_| self.element.generate(rng)).collect();
            rng.case = case;
            out
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Strategy, TestRng};
}

/// Runs each `fn name(arg in strategy, ...) { body }` as a `#[test]` over
/// [`CASES`] deterministic samples.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..$crate::CASES {
                    rng.case = case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition (real proptest rejects and resamples; skipping is
/// equivalent here because cases are independent).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3i64..10, y in 0.5f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_in_bounds(v in collection::vec(0u16..4, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn assume_skips(x in 0i64..4) {
            prop_assume!(x != 0);
            prop_assert!(x != 0);
        }
    }
}
