use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::event::{EventId, EventRegistry};
use crate::instance::EventInstance;

/// A temporal sequence (Def 3.9): event instances in chronological order
/// by start time (ties broken by end time, then event id).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TemporalSequence {
    instances: Vec<EventInstance>,
}

impl TemporalSequence {
    /// Creates a sequence, sorting the instances chronologically.
    pub fn new(mut instances: Vec<EventInstance>) -> Self {
        instances.sort_by_key(EventInstance::chrono_key);
        TemporalSequence { instances }
    }

    /// The instances in chronological order.
    pub fn instances(&self) -> &[EventInstance] {
        &self.instances
    }

    /// Number of instances (`|S|`).
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True iff the sequence has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Indices (into [`TemporalSequence::instances`]) of the instances of
    /// one event, in chronological order.
    pub fn instances_of(&self, event: EventId) -> impl Iterator<Item = usize> + '_ {
        self.instances
            .iter()
            .enumerate()
            .filter(move |(_, inst)| inst.event == event)
            .map(|(i, _)| i)
    }

    /// True iff the sequence has at least one instance of `event`.
    pub fn contains_event(&self, event: EventId) -> bool {
        self.instances.iter().any(|i| i.event == event)
    }

    /// The distinct events occurring in this sequence, ascending.
    pub fn distinct_events(&self) -> Vec<EventId> {
        let mut ids: Vec<EventId> = self.instances.iter().map(|i| i.event).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// The temporal sequence database `D_SEQ` (Def 3.10, Table III): a list of
/// temporal sequences plus the registry naming the events that occur in
/// them.
///
/// The registry is held behind an [`Arc`]: sharded mining hands every
/// shard database the same master registry, so K shards share one
/// allocation instead of K deep clones of the label table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SequenceDatabase {
    registry: Arc<EventRegistry>,
    sequences: Vec<TemporalSequence>,
}

impl SequenceDatabase {
    /// Creates a database from parts. Accepts the registry by value or as
    /// an already-shared [`Arc`].
    pub fn new(registry: impl Into<Arc<EventRegistry>>, sequences: Vec<TemporalSequence>) -> Self {
        SequenceDatabase {
            registry: registry.into(),
            sequences,
        }
    }

    /// The event registry.
    pub fn registry(&self) -> &EventRegistry {
        &self.registry
    }

    /// The event registry as a shareable handle (no deep clone).
    pub fn shared_registry(&self) -> Arc<EventRegistry> {
        Arc::clone(&self.registry)
    }

    /// The sequences.
    pub fn sequences(&self) -> &[TemporalSequence] {
        &self.sequences
    }

    /// Number of sequences (`|D_SEQ|`), the denominator of relative
    /// support (Eq. 2/4).
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// True iff there are no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// A database restricted to the first `n` sequences — used by the
    /// Fig 10/11 %-of-data scalability experiments.
    pub fn take_sequences(&self, n: usize) -> SequenceDatabase {
        SequenceDatabase {
            registry: Arc::clone(&self.registry),
            sequences: self.sequences[..n.min(self.sequences.len())].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(event: u32, s: i64, e: i64) -> EventInstance {
        EventInstance::new(EventId(event), s, e)
    }

    #[test]
    fn new_sorts_chronologically() {
        let seq = TemporalSequence::new(vec![inst(0, 10, 20), inst(1, 0, 5), inst(2, 0, 3)]);
        let starts: Vec<i64> = seq.instances().iter().map(|i| i.interval.start).collect();
        assert_eq!(starts, vec![0, 0, 10]);
        // Tie at start 0 broken by end time: [0,3) before [0,5).
        assert_eq!(seq.instances()[0].event, EventId(2));
    }

    #[test]
    fn instances_of_filters_by_event() {
        let seq = TemporalSequence::new(vec![
            inst(0, 0, 5),
            inst(1, 2, 9),
            inst(0, 10, 12),
        ]);
        assert_eq!(seq.instances_of(EventId(0)).collect::<Vec<_>>(), vec![0, 2]);
        assert!(seq.contains_event(EventId(1)));
        assert!(!seq.contains_event(EventId(9)));
    }

    #[test]
    fn distinct_events_sorted_unique() {
        let seq = TemporalSequence::new(vec![inst(3, 0, 5), inst(1, 1, 2), inst(3, 6, 8)]);
        assert_eq!(seq.distinct_events(), vec![EventId(1), EventId(3)]);
    }

    #[test]
    fn take_sequences_truncates() {
        let db = SequenceDatabase::new(
            EventRegistry::new(),
            vec![TemporalSequence::default(); 5],
        );
        assert_eq!(db.take_sequences(3).len(), 3);
        assert_eq!(db.take_sequences(10).len(), 5);
    }
}
