use std::collections::HashMap;

use ftpm_timeseries::{SymbolId, VariableId};
use serde::{Deserialize, Serialize};

/// Dense identifier of a temporal event — a `(variable, symbol)` pair such
/// as "Kitchen = On" (`K_On` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub u32);

/// Interns `(variable, symbol)` pairs into dense [`EventId`]s and keeps
/// their display labels.
///
/// Every distinct event of the database gets one id; ids are dense so that
/// miners can use them as vector indices.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventRegistry {
    labels: Vec<String>,
    variables: Vec<VariableId>,
    symbols: Vec<SymbolId>,
    #[serde(skip)]
    index: HashMap<(VariableId, SymbolId), EventId>,
}

impl EventRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an event, returning its id. `label` is only used the first
    /// time a pair is seen.
    pub fn intern(
        &mut self,
        variable: VariableId,
        symbol: SymbolId,
        label: impl FnOnce() -> String,
    ) -> EventId {
        if let Some(&id) = self.index.get(&(variable, symbol)) {
            return id;
        }
        let id = EventId(self.labels.len() as u32);
        self.labels.push(label());
        self.variables.push(variable);
        self.symbols.push(symbol);
        self.index.insert((variable, symbol), id);
        id
    }

    /// Looks up an event without interning.
    pub fn get(&self, variable: VariableId, symbol: SymbolId) -> Option<EventId> {
        self.index.get(&(variable, symbol)).copied()
    }

    /// Finds an event by its display label (e.g. `"K=On"`).
    pub fn lookup_label(&self, label: &str) -> Option<EventId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| EventId(i as u32))
    }

    /// Display label of an event.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn label(&self, id: EventId) -> &str {
        &self.labels[id.0 as usize]
    }

    /// The variable an event belongs to — used by A-HTPGM to check the
    /// correlation graph edge between the series of two events (Alg. 2,
    /// line 10).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn variable(&self, id: EventId) -> VariableId {
        self.variables[id.0 as usize]
    }

    /// The symbol of an event.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn symbol(&self, id: EventId) -> SymbolId {
        self.symbols[id.0 as usize]
    }

    /// Number of distinct events (`m` in the complexity analyses).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff no event has been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over all event ids.
    pub fn ids(&self) -> impl Iterator<Item = EventId> {
        (0..self.labels.len() as u32).map(EventId)
    }

    /// Rebuilds the lookup index after deserialization (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .variables
            .iter()
            .zip(&self.symbols)
            .enumerate()
            .map(|(i, (&v, &s))| ((v, s), EventId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut reg = EventRegistry::new();
        let a = reg.intern(VariableId(0), SymbolId(1), || "K=On".into());
        let b = reg.intern(VariableId(0), SymbolId(1), || "ignored".into());
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.label(a), "K=On");
    }

    #[test]
    fn distinct_pairs_get_distinct_ids() {
        let mut reg = EventRegistry::new();
        let a = reg.intern(VariableId(0), SymbolId(0), || "K=Off".into());
        let b = reg.intern(VariableId(0), SymbolId(1), || "K=On".into());
        let c = reg.intern(VariableId(1), SymbolId(0), || "T=Off".into());
        assert_eq!(reg.len(), 3);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(reg.variable(c), VariableId(1));
        assert_eq!(reg.symbol(b), SymbolId(1));
    }

    #[test]
    fn lookup_by_label() {
        let mut reg = EventRegistry::new();
        let id = reg.intern(VariableId(2), SymbolId(1), || "M=On".into());
        assert_eq!(reg.lookup_label("M=On"), Some(id));
        assert_eq!(reg.lookup_label("M=Off"), None);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut reg = EventRegistry::new();
        reg.intern(VariableId(0), SymbolId(1), || "K=On".into());
        let json = serde_json::to_string(&reg).unwrap();
        let mut back: EventRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get(VariableId(0), SymbolId(1)), None);
        back.rebuild_index();
        assert_eq!(back.get(VariableId(0), SymbolId(1)), Some(EventId(0)));
    }
}
