#![forbid(unsafe_code)]
//! Temporal events, relations and sequences — the bridge between symbolic
//! time series (`ftpm-timeseries`) and pattern mining (`ftpm-core`).
//!
//! This crate implements:
//!
//! * [`Interval`] and [`EventInstance`] — a single occurrence of a temporal
//!   event during a time interval (Defs 3.4–3.5);
//! * [`TemporalRelation`] and [`RelationConfig`] — the simplified Allen
//!   relation model with the buffer `ε` and minimal overlap `d_o`
//!   (Defs 3.6–3.8, Table II);
//! * [`TemporalSequence`] and [`SequenceDatabase`] — the temporal sequence
//!   database `D_SEQ` (Defs 3.9–3.10, Table III);
//! * [`SplitConfig`] / [`to_sequence_database`] — the overlapping splitting
//!   strategy that converts `D_SYB` into `D_SEQ` without losing patterns
//!   (Section IV-B2, Fig 3);
//! * [`BoundaryPolicy`] — how miners treat instances whose runs the split
//!   clipped at a window boundary: keep the clipped view (`Clip`, the
//!   default), reason about the true run extent (`TrueExtent`), or drop
//!   them (`Discard`). Every [`EventInstance`] carries both the clipped
//!   interval and the unclipped extent, so the choice is made at mining
//!   time, not at split time.
//!
//! ## Interval convention
//!
//! The paper prints instance endpoints loosely (Table III mixes sample
//! times and transition times). This crate uses one consistent rule: a
//! sample at time `t` holds during `[t, t + step)`, so a run of identical
//! symbols over steps `i..=j` becomes the interval
//! `[time(i), time(j) + step)`. Adjacent events of the same variable then
//! share endpoints exactly, which is what the relation semantics need.

mod event;
mod instance;
mod relation;
mod sequence;
mod split;

pub use event::{EventId, EventRegistry};
pub use instance::{EventInstance, Interval, InvalidInterval};
pub use relation::{
    BoundaryKernel, BoundaryPolicy, BoundaryVisit, ClipKernel, DiscardKernel, RelationConfig,
    TemporalRelation, TrueExtentKernel,
};
pub use sequence::{SequenceDatabase, TemporalSequence};
pub use split::{to_sequence_database, ShardSpan, SplitConfig};
