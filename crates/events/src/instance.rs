use serde::{Deserialize, Serialize};

use crate::event::EventId;

/// A half-open time interval `[start, end)` in integer ticks.
///
/// Instances always have positive duration; zero-length intervals are
/// rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start time `t_s`.
    pub start: i64,
    /// Exclusive end time `t_e`.
    pub end: i64,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(start: i64, end: i64) -> Self {
        assert!(end > start, "interval must have positive duration: [{start}, {end})");
        Interval { start, end }
    }

    /// Duration `t_e − t_s` in ticks.
    pub fn duration(&self) -> i64 {
        self.end - self.start
    }

    /// True iff the two intervals share at least one instant.
    pub fn intersects(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The length of the intersection, zero if disjoint.
    pub fn overlap_duration(&self, other: &Interval) -> i64 {
        (self.end.min(other.end) - self.start.max(other.start)).max(0)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A single occurrence of a temporal event during an interval — the tuple
/// `e = (ω, [t_s, t_e])` of Def 3.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventInstance {
    /// The event this is an instance of.
    pub event: EventId,
    /// When the occurrence happened.
    pub interval: Interval,
}

impl EventInstance {
    /// Creates an instance.
    pub fn new(event: EventId, start: i64, end: i64) -> Self {
        EventInstance {
            event,
            interval: Interval::new(start, end),
        }
    }

    /// Chronological key: instances are ordered by start time, with ties
    /// broken by end time and then event id so sequences have a canonical
    /// order (Def 3.9 orders by start time only; the tie-breaks make the
    /// order total).
    pub fn chrono_key(&self) -> (i64, i64, EventId) {
        (self.interval.start, self.interval.end, self.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_and_intersection() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        let c = Interval::new(10, 12);
        assert_eq!(a.duration(), 10);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c), "half-open intervals touching do not intersect");
        assert_eq!(a.overlap_duration(&b), 5);
        assert_eq!(a.overlap_duration(&c), 0);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn empty_interval_panics() {
        let _ = Interval::new(5, 5);
    }

    #[test]
    fn chrono_key_orders_by_start_then_end() {
        let a = EventInstance::new(EventId(7), 0, 10);
        let b = EventInstance::new(EventId(1), 0, 12);
        let c = EventInstance::new(EventId(0), 3, 4);
        let mut v = [c, b, a];
        v.sort_by_key(|i| i.chrono_key());
        assert_eq!(v[0], a);
        assert_eq!(v[1], b);
        assert_eq!(v[2], c);
    }
}
