use serde::{Deserialize, Serialize};

use crate::event::EventId;

/// Error returned by [`Interval::try_new`] when `end <= start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidInterval {
    /// The offending start time.
    pub start: i64,
    /// The offending end time.
    pub end: i64,
}

impl std::fmt::Display for InvalidInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "interval must have positive duration: [{}, {})",
            self.start, self.end
        )
    }
}

impl std::error::Error for InvalidInterval {}

/// A half-open time interval `[start, end)` in integer ticks.
///
/// Instances always have positive duration; zero-length and reversed
/// (`start > end`) intervals are rejected at construction — a reversed
/// interval would report a negative [`duration`](Interval::duration) and
/// a vacuously-false [`intersects`](Interval::intersects), silently
/// corrupting every relation decision downstream. Use
/// [`Interval::try_new`] where the endpoints come from untrusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start time `t_s`.
    pub start: i64,
    /// Exclusive end time `t_e`.
    pub end: i64,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(start: i64, end: i64) -> Self {
        // lint: allow(panic, documented # Panics contract; try_new is the fallible path)
        assert!(end > start, "interval must have positive duration: [{start}, {end})");
        Interval { start, end }
    }

    /// Fallible counterpart of [`Interval::new`] for endpoints that come
    /// from user input: returns an error instead of panicking when
    /// `end <= start`.
    pub fn try_new(start: i64, end: i64) -> Result<Self, InvalidInterval> {
        if end > start {
            Ok(Interval { start, end })
        } else {
            Err(InvalidInterval { start, end })
        }
    }

    /// Duration `t_e − t_s` in ticks.
    pub fn duration(&self) -> i64 {
        debug_assert!(self.end > self.start, "corrupted interval {self}");
        self.end - self.start
    }

    /// True iff the two intervals share at least one instant.
    pub fn intersects(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The length of the intersection, zero if disjoint.
    pub fn overlap_duration(&self, other: &Interval) -> i64 {
        (self.end.min(other.end) - self.start.max(other.start)).max(0)
    }

    /// True iff `other` lies entirely within `self` (non-strictly).
    pub fn contains(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A single occurrence of a temporal event during an interval — the tuple
/// `e = (ω, [t_s, t_e])` of Def 3.5 — plus the *true extent* of the
/// underlying symbol run.
///
/// The window split clips runs at window boundaries, so `interval` is the
/// portion visible inside the window while `extent` is the full run as it
/// exists in the underlying data. For instances that were never clipped
/// (the common case) the two are identical. The clipped flags record
/// which side(s) the window cut; [`crate::BoundaryPolicy`] decides which
/// interval the miner reasons about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventInstance {
    /// The event this is an instance of.
    pub event: EventId,
    /// When the occurrence was observed inside its window (clipped).
    pub interval: Interval,
    /// The true extent of the underlying run, possibly reaching beyond
    /// the window on either side. Always contains `interval`.
    pub extent: Interval,
    /// True iff the run started before the window (`extent.start <
    /// interval.start`).
    pub clipped_left: bool,
    /// True iff the run ended after the window (`extent.end >
    /// interval.end`).
    pub clipped_right: bool,
}

impl EventInstance {
    /// Creates an unclipped instance: the extent equals the interval.
    pub fn new(event: EventId, start: i64, end: i64) -> Self {
        let interval = Interval::new(start, end);
        EventInstance {
            event,
            interval,
            extent: interval,
            clipped_left: false,
            clipped_right: false,
        }
    }

    /// Creates an instance whose observed `interval` is a window-clipped
    /// view of the run `extent`. The clipped flags are derived.
    ///
    /// # Panics
    ///
    /// Panics unless `extent` contains `interval`.
    pub fn with_extent(event: EventId, interval: Interval, extent: Interval) -> Self {
        // lint: allow(panic, documented # Panics contract: the window splitter always passes extent ⊇ interval)
        assert!(
            extent.contains(&interval),
            "extent {extent} must contain the clipped interval {interval}"
        );
        EventInstance {
            event,
            interval,
            extent,
            clipped_left: extent.start < interval.start,
            clipped_right: extent.end > interval.end,
        }
    }

    /// True iff the window boundary cut this run on either side.
    pub fn is_clipped(&self) -> bool {
        self.clipped_left || self.clipped_right
    }

    /// Chronological key: instances are ordered by start time, with ties
    /// broken by end time and then event id so sequences have a canonical
    /// order (Def 3.9 orders by start time only; the tie-breaks make the
    /// order total). Uses the clipped interval — the order the split
    /// observes inside a window.
    pub fn chrono_key(&self) -> (i64, i64, EventId) {
        (self.interval.start, self.interval.end, self.event)
    }

    /// Chronological key over the true extent — the order of the
    /// underlying runs, used when mining under
    /// [`crate::BoundaryPolicy::TrueExtent`].
    pub fn extent_key(&self) -> (i64, i64, EventId) {
        (self.extent.start, self.extent.end, self.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_and_intersection() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        let c = Interval::new(10, 12);
        assert_eq!(a.duration(), 10);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c), "half-open intervals touching do not intersect");
        assert_eq!(a.overlap_duration(&b), 5);
        assert_eq!(a.overlap_duration(&c), 0);
        assert!(a.contains(&Interval::new(0, 10)));
        assert!(a.contains(&Interval::new(3, 7)));
        assert!(!a.contains(&b));
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn empty_interval_panics() {
        let _ = Interval::new(5, 5);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn reversed_interval_panics() {
        let _ = Interval::new(9, 3);
    }

    #[test]
    fn try_new_rejects_without_panicking() {
        assert_eq!(Interval::try_new(0, 4), Ok(Interval::new(0, 4)));
        assert_eq!(
            Interval::try_new(4, 4),
            Err(InvalidInterval { start: 4, end: 4 })
        );
        let err = Interval::try_new(9, 3).expect_err("reversed");
        assert_eq!(err.to_string(), "interval must have positive duration: [9, 3)");
    }

    #[test]
    fn unclipped_instance_extent_equals_interval() {
        let a = EventInstance::new(EventId(7), 0, 10);
        assert_eq!(a.extent, a.interval);
        assert!(!a.is_clipped());
        assert_eq!(a.chrono_key(), a.extent_key());
    }

    #[test]
    fn with_extent_derives_clip_flags() {
        let iv = Interval::new(10, 20);
        let both = EventInstance::with_extent(EventId(1), iv, Interval::new(5, 25));
        assert!(both.clipped_left && both.clipped_right && both.is_clipped());
        let left = EventInstance::with_extent(EventId(1), iv, Interval::new(5, 20));
        assert!(left.clipped_left && !left.clipped_right);
        let none = EventInstance::with_extent(EventId(1), iv, iv);
        assert!(!none.is_clipped());
        assert_eq!(both.extent_key(), (5, 25, EventId(1)));
        assert_eq!(both.chrono_key(), (10, 20, EventId(1)));
    }

    #[test]
    #[should_panic(expected = "must contain")]
    fn with_extent_rejects_non_containing_extent() {
        let _ = EventInstance::with_extent(
            EventId(0),
            Interval::new(0, 10),
            Interval::new(2, 12),
        );
    }

    #[test]
    fn chrono_key_orders_by_start_then_end() {
        let a = EventInstance::new(EventId(7), 0, 10);
        let b = EventInstance::new(EventId(1), 0, 12);
        let c = EventInstance::new(EventId(0), 3, 4);
        let mut v = [c, b, a];
        v.sort_by_key(|i| i.chrono_key());
        assert_eq!(v[0], a);
        assert_eq!(v[1], b);
        assert_eq!(v[2], c);
    }
}
