use ftpm_timeseries::SymbolicDatabase;
use serde::{Deserialize, Serialize};

use crate::event::EventRegistry;
use crate::instance::EventInstance;
use crate::sequence::{SequenceDatabase, TemporalSequence};

/// Configuration of the D_SYB → D_SEQ conversion (Section IV-B2, Fig 3).
///
/// The symbolic database is cut into windows of `window` ticks; consecutive
/// windows overlap by `overlap` ticks (`t_ov`). `overlap = 0` is the plain
/// equal-length split (no redundancy, possible pattern loss at the cut
/// points); `overlap = t_max` guarantees that every pattern of duration at
/// most `t_max` survives in some window (Fig 3b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Window length `t` in ticks.
    pub window: i64,
    /// Overlap `t_ov ∈ [0, window)` between consecutive windows, in ticks.
    pub overlap: i64,
}

impl SplitConfig {
    /// Creates a split config.
    ///
    /// # Panics
    ///
    /// Panics unless `window > 0` and `0 ≤ overlap < window`.
    pub fn new(window: i64, overlap: i64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            (0..window).contains(&overlap),
            "overlap must be in [0, window)"
        );
        SplitConfig { window, overlap }
    }

    /// Distance between consecutive window starts.
    pub fn stride(&self) -> i64 {
        self.window - self.overlap
    }
}

/// Converts a symbolic database into a temporal sequence database —
/// the second half of the paper's Data Transformation phase.
///
/// For every window and every variable, runs of identical consecutive
/// symbols are merged into one event instance (Def 3.4), clipped to the
/// window boundaries. A sample at time `t` is considered to hold during
/// `[t, t + step)`.
///
/// Windows are aligned to whole sampling steps, so `window` and `overlap`
/// should be multiples of `db.step()` (they are rounded down to step
/// boundaries otherwise). Only full windows are emitted, matching the
/// paper's equal-length sequences.
///
/// # Examples
///
/// ```
/// use ftpm_timeseries::{Alphabet, SymbolicDatabase, SymbolicSeries};
/// use ftpm_events::{to_sequence_database, SplitConfig};
///
/// let mut db = SymbolicDatabase::new(0, 5, 8);
/// db.push(SymbolicSeries::from_labels(
///     "K", Alphabet::on_off(),
///     ["On", "On", "Off", "Off", "On", "On", "Off", "Off"]));
/// // Two windows of 20 ticks, no overlap.
/// let seq_db = to_sequence_database(&db, SplitConfig::new(20, 0));
/// assert_eq!(seq_db.len(), 2);
/// assert_eq!(seq_db.sequences()[0].len(), 2); // K=On [0,10), K=Off [10,20)
/// ```
pub fn to_sequence_database(db: &SymbolicDatabase, split: SplitConfig) -> SequenceDatabase {
    let step = db.step();
    let win_steps = (split.window / step).max(1) as usize;
    let stride_steps = (split.stride() / step).max(1) as usize;

    let mut registry = EventRegistry::new();
    let mut sequences = Vec::new();

    let mut first = 0usize;
    while first + win_steps <= db.n_steps() {
        let mut instances = Vec::new();
        for (var, series) in db.iter() {
            let symbols = &series.symbols()[first..first + win_steps];
            let mut run_start = 0usize;
            while run_start < symbols.len() {
                let sym = symbols[run_start];
                let mut run_end = run_start + 1;
                while run_end < symbols.len() && symbols[run_end] == sym {
                    run_end += 1;
                }
                let event = registry.intern(var, sym, || {
                    format!("{}={}", series.name(), series.alphabet().label(sym))
                });
                instances.push(EventInstance::new(
                    event,
                    db.time_at(first + run_start),
                    db.time_at(first + run_end),
                ));
                run_start = run_end;
            }
        }
        sequences.push(TemporalSequence::new(instances));
        first += stride_steps;
    }

    SequenceDatabase::new(registry, sequences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpm_timeseries::{Alphabet, SymbolicSeries};

    fn onoff_db(rows: &[(&str, &str)], step: i64) -> SymbolicDatabase {
        let n = rows[0].1.len();
        let mut db = SymbolicDatabase::new(0, step, n);
        for (name, bits) in rows {
            let labels: Vec<&str> = bits
                .chars()
                .map(|c| if c == '1' { "On" } else { "Off" })
                .collect();
            db.push(SymbolicSeries::from_labels(*name, Alphabet::on_off(), labels));
        }
        db
    }

    #[test]
    fn runs_are_merged_into_instances() {
        let db = onoff_db(&[("K", "11001")], 1);
        let seq_db = to_sequence_database(&db, SplitConfig::new(5, 0));
        assert_eq!(seq_db.len(), 1);
        let seq = &seq_db.sequences()[0];
        assert_eq!(seq.len(), 3);
        let reg = seq_db.registry();
        let descr: Vec<(String, i64, i64)> = seq
            .instances()
            .iter()
            .map(|i| {
                (
                    reg.label(i.event).to_owned(),
                    i.interval.start,
                    i.interval.end,
                )
            })
            .collect();
        assert_eq!(
            descr,
            vec![
                ("K=On".to_owned(), 0, 2),
                ("K=Off".to_owned(), 2, 4),
                ("K=On".to_owned(), 4, 5),
            ]
        );
    }

    #[test]
    fn no_overlap_split_partitions_time() {
        let db = onoff_db(&[("K", "11110000")], 5);
        let seq_db = to_sequence_database(&db, SplitConfig::new(20, 0));
        assert_eq!(seq_db.len(), 2);
        // First window: one On run [0,20); second: one Off run [20,40).
        assert_eq!(seq_db.sequences()[0].len(), 1);
        assert_eq!(seq_db.sequences()[0].instances()[0].interval.start, 0);
        assert_eq!(seq_db.sequences()[0].instances()[0].interval.end, 20);
        assert_eq!(seq_db.sequences()[1].instances()[0].interval.start, 20);
    }

    #[test]
    fn runs_are_clipped_at_window_boundaries() {
        // One long On run split across two windows.
        let db = onoff_db(&[("K", "1111")], 5);
        let seq_db = to_sequence_database(&db, SplitConfig::new(10, 0));
        assert_eq!(seq_db.len(), 2);
        assert_eq!(seq_db.sequences()[0].instances()[0].interval.end, 10);
        assert_eq!(seq_db.sequences()[1].instances()[0].interval.start, 10);
    }

    #[test]
    fn overlapping_windows_share_instances() {
        let db = onoff_db(&[("K", "10101010")], 1);
        let seq_db = to_sequence_database(&db, SplitConfig::new(4, 2));
        // Windows at steps 0,2,4 -> 3 windows of 4 steps.
        assert_eq!(seq_db.len(), 3);
        // Window 1 covers steps 2..6; its first instance starts at t=2.
        assert_eq!(seq_db.sequences()[1].instances()[0].interval.start, 2);
    }

    #[test]
    fn partial_trailing_window_is_dropped() {
        let db = onoff_db(&[("K", "111110")], 1);
        let seq_db = to_sequence_database(&db, SplitConfig::new(4, 0));
        assert_eq!(seq_db.len(), 1, "only one full 4-step window fits");
    }

    #[test]
    fn multiple_variables_interleave_chronologically() {
        let db = onoff_db(&[("K", "1100"), ("T", "0110")], 1);
        let seq_db = to_sequence_database(&db, SplitConfig::new(4, 0));
        let seq = &seq_db.sequences()[0];
        // K=On [0,2), T=Off [0,1), T=On [1,3), K=Off [2,4), T=Off [3,4)
        assert_eq!(seq.len(), 5);
        let starts: Vec<i64> = seq.instances().iter().map(|i| i.interval.start).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "overlap must be in")]
    fn overlap_ge_window_panics() {
        let _ = SplitConfig::new(10, 10);
    }
}
