use ftpm_timeseries::SymbolicDatabase;
use serde::{Deserialize, Serialize};

use crate::event::EventRegistry;
use crate::instance::{EventInstance, Interval};
use crate::sequence::{SequenceDatabase, TemporalSequence};

/// Configuration of the D_SYB → D_SEQ conversion (Section IV-B2, Fig 3).
///
/// The symbolic database is cut into windows of `window` ticks; consecutive
/// windows overlap by `overlap` ticks (`t_ov`). `overlap = 0` is the plain
/// equal-length split (no redundancy, possible pattern loss at the cut
/// points); `overlap = t_max` guarantees that every pattern of duration at
/// most `t_max` survives in some window (Fig 3b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Window length `t` in ticks.
    pub window: i64,
    /// Overlap `t_ov ∈ [0, window)` between consecutive windows, in ticks.
    pub overlap: i64,
}

impl SplitConfig {
    /// Creates a split config.
    ///
    /// # Panics
    ///
    /// Panics unless `window > 0` and `0 ≤ overlap < window`.
    pub fn new(window: i64, overlap: i64) -> Self {
        // lint: allow(panic, documented # Panics contract; try_new is the fallible path)
        SplitConfig::try_new(window, overlap).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`SplitConfig::new`] for values that come
    /// from user input: returns a message instead of panicking when
    /// `window <= 0` or `overlap ∉ [0, window)`.
    pub fn try_new(window: i64, overlap: i64) -> Result<Self, String> {
        if window <= 0 {
            return Err(format!("window must be positive, got {window}"));
        }
        if !(0..window).contains(&overlap) {
            return Err(format!(
                "overlap must be in [0, window), got overlap {overlap} with window {window}"
            ));
        }
        Ok(SplitConfig { window, overlap })
    }

    /// Distance between consecutive window starts.
    pub fn stride(&self) -> i64 {
        self.window - self.overlap
    }

    /// The config actually applied to a database sampled every `step`
    /// ticks: windows are aligned to whole sampling steps, so `window`
    /// and `overlap` are each rounded *down* to step boundaries (window
    /// to at least one step, overlap to at most `window − step` so the
    /// stride stays positive).
    ///
    /// Rounding the window and the stride independently — the historical
    /// behaviour — could silently *grow* the effective overlap beyond
    /// the requested one (e.g. `window = 20, overlap = 9, step = 10`
    /// yielded a 10-tick overlap). Rounding window and overlap down
    /// keeps `effective.overlap ≤ overlap` always. Use this to report
    /// the geometry a run really used.
    ///
    /// # Panics
    ///
    /// Panics unless `step > 0`.
    pub fn effective(&self, step: i64) -> SplitConfig {
        // lint: allow(panic, documented # Panics contract: step is validated at dataset load)
        assert!(step > 0, "step must be positive, got {step}");
        let win_steps = (self.window / step).max(1);
        let ov_steps = (self.overlap / step).min(win_steps - 1);
        SplitConfig {
            window: win_steps * step,
            overlap: ov_steps * step,
        }
    }
}

impl std::fmt::Display for SplitConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "window {} overlap {}", self.window, self.overlap)
    }
}

/// The geometry of one time-range shard of a sharded mining run: which
/// slice of the symbolic database the shard converts and mines, and which
/// of the resulting windows it *owns* for support counting.
///
/// Shard slices overlap their neighbours: each slice is padded by at
/// least `t_ov` ticks on both sides (the left pad rounded up to a whole
/// stride so the shard's windows stay on the global window grid). The
/// padding serves two purposes: windows near the shard cut exist complete
/// in at least one shard, and run extents truncated at a slice edge are
/// guaranteed longer than `t_ov` — so with `t_ov = t_max` and
/// [`crate::BoundaryPolicy::TrueExtent`] no truncated extent can ever
/// satisfy the `t_max` duration constraint, which is what makes
/// shard-by-time-range mining lossless (the PR 3 window lemma, one level
/// up). Windows inside the padding are *duplicated* across the two
/// adjacent shards; ownership ranges partition the global window index
/// space, so a merge that counts only owned windows counts every window
/// exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpan {
    /// Step range `[lo, hi)` of the symbolic slice this shard converts.
    /// `lo` is always a whole number of strides, so the slice's windows
    /// coincide with the global window grid.
    pub slice_steps: (usize, usize),
    /// Global window indices `[lo, hi)` this shard owns. Ownership ranges
    /// of consecutive shards tile `0..n_windows` without gaps or overlap.
    pub owned_windows: (usize, usize),
    /// Global index of the first window the shard's slice emits (its
    /// windows are `first_window, first_window + 1, …` in order).
    pub first_window: usize,
}

impl SplitConfig {
    /// Number of full windows this split emits over `n_steps` samples of
    /// `step` ticks (after [`SplitConfig::effective`] rounding).
    ///
    /// # Panics
    ///
    /// Panics unless `step > 0`.
    pub fn n_windows(&self, step: i64, n_steps: usize) -> usize {
        let eff = self.effective(step);
        let win = (eff.window / step) as usize;
        let stride = (eff.stride() / step) as usize;
        if n_steps < win {
            0
        } else {
            (n_steps - win) / stride + 1
        }
    }

    /// Cuts a database of `n_steps` samples into (at most) `shards`
    /// time-range shards whose slices overlap by at least `t_ov` ticks —
    /// the shard-level counterpart of the window overlap of Fig 3.
    ///
    /// The window index space is split into contiguous, near-equal owned
    /// ranges; each shard's slice covers its owned windows plus a pad of
    /// at least `max(t_ov, 1 step)` ticks on both sides (clamped at the
    /// database edges, where the global conversion has nothing more to
    /// see either). Asking for more shards than there are windows yields
    /// one shard per window.
    ///
    /// Returns an error when `step <= 0`, `t_ov < 0`, `shards == 0`, or
    /// no full window fits in `n_steps`.
    pub fn shard_spans(
        &self,
        step: i64,
        n_steps: usize,
        shards: usize,
        t_ov: i64,
    ) -> Result<Vec<ShardSpan>, String> {
        if step <= 0 {
            return Err(format!("step must be positive, got {step}"));
        }
        if t_ov < 0 {
            return Err(format!("shard overlap t_ov must be non-negative, got {t_ov}"));
        }
        if shards == 0 {
            return Err("need at least one shard".into());
        }
        let eff = self.effective(step);
        let win = (eff.window / step) as usize;
        let stride = (eff.stride() / step) as usize;
        if n_steps < win {
            return Err(format!(
                "no full window fits: window {} needs {win} steps, database has {n_steps}"
            , eff.window));
        }
        let n_windows = (n_steps - win) / stride + 1;
        let k = shards.min(n_windows);
        // Overlap in steps, rounded up; clamping to n_steps keeps the
        // arithmetic small even for "unconstrained" t_max-sized overlaps.
        let t_ov_steps =
            ((t_ov as u128).div_ceil(step as u128)).min(n_steps as u128) as usize;
        // The pads guarantee >= 1 step beyond every owned window (so the
        // slice reproduces the global clipped-side flags) and >= t_ov
        // ticks (so truncated extents exceed t_ov). The left pad rounds
        // up to whole strides to stay on the window grid.
        let pad_right = t_ov_steps.max(1);
        let pad_left = t_ov_steps.div_ceil(stride).max(1) * stride;
        let mut spans = Vec::with_capacity(k);
        for s in 0..k {
            let lo_w = s * n_windows / k;
            let hi_w = (s + 1) * n_windows / k;
            let owned_start_step = lo_w * stride;
            let owned_end_step = (hi_w - 1) * stride + win;
            let slice_lo = owned_start_step.saturating_sub(pad_left);
            let slice_hi = (owned_end_step + pad_right).min(n_steps);
            spans.push(ShardSpan {
                slice_steps: (slice_lo, slice_hi),
                owned_windows: (lo_w, hi_w),
                first_window: slice_lo / stride,
            });
        }
        Ok(spans)
    }
}

/// Converts a symbolic database into a temporal sequence database —
/// the second half of the paper's Data Transformation phase.
///
/// For every window and every variable, runs of identical consecutive
/// symbols are merged into one event instance (Def 3.4), clipped to the
/// window boundaries. A sample at time `t` is considered to hold during
/// `[t, t + step)`.
///
/// Every instance also carries the **true extent** of its run — the full
/// `[run start, run end)` interval in the underlying data, looking across
/// window boundaries (and across the overlap region) — plus flags saying
/// which side(s) the window clipped. The extent is what
/// [`crate::BoundaryPolicy::TrueExtent`] mines on; with the default
/// [`crate::BoundaryPolicy::Clip`] the clipped interval is used and the
/// output is unchanged from previous versions.
///
/// Windows are aligned to whole sampling steps: `window` and `overlap`
/// are rounded down to step boundaries as reported by
/// [`SplitConfig::effective`]. Only full windows are emitted, matching
/// the paper's equal-length sequences.
///
/// # Examples
///
/// ```
/// use ftpm_timeseries::{Alphabet, SymbolicDatabase, SymbolicSeries};
/// use ftpm_events::{to_sequence_database, SplitConfig};
///
/// let mut db = SymbolicDatabase::new(0, 5, 8);
/// db.push(SymbolicSeries::from_labels(
///     "K", Alphabet::on_off(),
///     ["On", "On", "Off", "Off", "On", "On", "Off", "Off"]));
/// // Two windows of 20 ticks, no overlap.
/// let seq_db = to_sequence_database(&db, SplitConfig::new(20, 0));
/// assert_eq!(seq_db.len(), 2);
/// assert_eq!(seq_db.sequences()[0].len(), 2); // K=On [0,10), K=Off [10,20)
/// ```
pub fn to_sequence_database(db: &SymbolicDatabase, split: SplitConfig) -> SequenceDatabase {
    let step = db.step();
    let eff = split.effective(step);
    let win_steps = (eff.window / step) as usize;
    let stride_steps = (eff.stride() / step) as usize;
    let n_steps = db.n_steps();

    // Per-series maximal runs over the whole database, computed once so
    // every window can report the true extent of each clipped run. Entry
    // `starts[r]` is the step where run `r` begins; run `r` ends where
    // run `r + 1` begins (or at `n_steps`).
    let run_starts: Vec<Vec<usize>> = db
        .iter()
        .map(|(_, series)| {
            let symbols = series.symbols();
            let mut starts = Vec::new();
            for i in 0..symbols.len() {
                if i == 0 || symbols[i] != symbols[i - 1] {
                    starts.push(i);
                }
            }
            starts
        })
        .collect();

    let mut registry = EventRegistry::new();
    let mut sequences = Vec::new();

    let mut first = 0usize;
    while first + win_steps <= n_steps {
        let window_end = first + win_steps;
        let mut instances = Vec::new();
        for ((var, series), starts) in db.iter().zip(&run_starts) {
            let symbols = series.symbols();
            // Index of the run containing step `first`.
            let mut ri = starts.partition_point(|&s| s <= first) - 1;
            while ri < starts.len() && starts[ri] < window_end {
                let run_start = starts[ri];
                let run_end = starts.get(ri + 1).copied().unwrap_or(n_steps);
                let sym = symbols[run_start];
                let event = registry.intern(var, sym, || {
                    format!("{}={}", series.name(), series.alphabet().label(sym))
                });
                instances.push(EventInstance::with_extent(
                    event,
                    Interval::new(
                        db.time_at(run_start.max(first)),
                        db.time_at(run_end.min(window_end)),
                    ),
                    Interval::new(db.time_at(run_start), db.time_at(run_end)),
                ));
                ri += 1;
            }
        }
        sequences.push(TemporalSequence::new(instances));
        first += stride_steps;
    }

    SequenceDatabase::new(registry, sequences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpm_timeseries::{Alphabet, SymbolicSeries};

    fn onoff_db(rows: &[(&str, &str)], step: i64) -> SymbolicDatabase {
        let n = rows[0].1.len();
        let mut db = SymbolicDatabase::new(0, step, n);
        for (name, bits) in rows {
            let labels: Vec<&str> = bits
                .chars()
                .map(|c| if c == '1' { "On" } else { "Off" })
                .collect();
            db.push(SymbolicSeries::from_labels(*name, Alphabet::on_off(), labels));
        }
        db
    }

    #[test]
    fn runs_are_merged_into_instances() {
        let db = onoff_db(&[("K", "11001")], 1);
        let seq_db = to_sequence_database(&db, SplitConfig::new(5, 0));
        assert_eq!(seq_db.len(), 1);
        let seq = &seq_db.sequences()[0];
        assert_eq!(seq.len(), 3);
        let reg = seq_db.registry();
        let descr: Vec<(String, i64, i64)> = seq
            .instances()
            .iter()
            .map(|i| {
                (
                    reg.label(i.event).to_owned(),
                    i.interval.start,
                    i.interval.end,
                )
            })
            .collect();
        assert_eq!(
            descr,
            vec![
                ("K=On".to_owned(), 0, 2),
                ("K=Off".to_owned(), 2, 4),
                ("K=On".to_owned(), 4, 5),
            ]
        );
        assert!(
            seq.instances().iter().all(|i| !i.is_clipped()),
            "single full window clips nothing"
        );
    }

    #[test]
    fn no_overlap_split_partitions_time() {
        let db = onoff_db(&[("K", "11110000")], 5);
        let seq_db = to_sequence_database(&db, SplitConfig::new(20, 0));
        assert_eq!(seq_db.len(), 2);
        // First window: one On run [0,20); second: one Off run [20,40).
        assert_eq!(seq_db.sequences()[0].len(), 1);
        assert_eq!(seq_db.sequences()[0].instances()[0].interval.start, 0);
        assert_eq!(seq_db.sequences()[0].instances()[0].interval.end, 20);
        assert_eq!(seq_db.sequences()[1].instances()[0].interval.start, 20);
    }

    #[test]
    fn runs_are_clipped_at_window_boundaries() {
        // One long On run split across two windows.
        let db = onoff_db(&[("K", "1111")], 5);
        let seq_db = to_sequence_database(&db, SplitConfig::new(10, 0));
        assert_eq!(seq_db.len(), 2);
        assert_eq!(seq_db.sequences()[0].instances()[0].interval.end, 10);
        assert_eq!(seq_db.sequences()[1].instances()[0].interval.start, 10);
    }

    #[test]
    fn clipped_instances_carry_the_true_extent() {
        // One 20-tick On run cut into two 10-tick windows: each half
        // keeps the full [0, 20) run as its extent.
        let db = onoff_db(&[("K", "1111")], 5);
        let seq_db = to_sequence_database(&db, SplitConfig::new(10, 0));
        let left = &seq_db.sequences()[0].instances()[0];
        assert_eq!(left.interval, Interval::new(0, 10));
        assert_eq!(left.extent, Interval::new(0, 20));
        assert!(!left.clipped_left && left.clipped_right);
        let right = &seq_db.sequences()[1].instances()[0];
        assert_eq!(right.interval, Interval::new(10, 20));
        assert_eq!(right.extent, Interval::new(0, 20));
        assert!(right.clipped_left && !right.clipped_right);
    }

    #[test]
    fn extent_reaches_across_the_overlap_region() {
        // Run [2, 8) in windows of 4 with overlap 2 (stride 2): window
        // [4, 8) sees [4, 8) clipped left; its extent is the full run,
        // which begins inside the *previous* window's exclusive region.
        let db = onoff_db(&[("K", "00111111")], 1);
        let seq_db = to_sequence_database(&db, SplitConfig::new(4, 2));
        assert_eq!(seq_db.len(), 3);
        let last = &seq_db.sequences()[2];
        assert_eq!(last.len(), 1);
        let on = &last.instances()[0];
        assert_eq!(on.interval, Interval::new(4, 8));
        assert_eq!(on.extent, Interval::new(2, 8));
        assert!(on.clipped_left && !on.clipped_right);
        // The middle window [2, 6) sees the same run clipped right only.
        let mid = seq_db.sequences()[1]
            .instances()
            .iter()
            .find(|i| i.interval == Interval::new(2, 6))
            .expect("On instance in window [2, 6)");
        assert_eq!(mid.extent, Interval::new(2, 8));
        assert!(!mid.clipped_left && mid.clipped_right);
    }

    #[test]
    fn overlapping_windows_share_instances() {
        let db = onoff_db(&[("K", "10101010")], 1);
        let seq_db = to_sequence_database(&db, SplitConfig::new(4, 2));
        // Windows at steps 0,2,4 -> 3 windows of 4 steps.
        assert_eq!(seq_db.len(), 3);
        // Window 1 covers steps 2..6; its first instance starts at t=2.
        assert_eq!(seq_db.sequences()[1].instances()[0].interval.start, 2);
    }

    #[test]
    fn partial_trailing_window_is_dropped() {
        let db = onoff_db(&[("K", "111110")], 1);
        let seq_db = to_sequence_database(&db, SplitConfig::new(4, 0));
        assert_eq!(seq_db.len(), 1, "only one full 4-step window fits");
    }

    #[test]
    fn multiple_variables_interleave_chronologically() {
        let db = onoff_db(&[("K", "1100"), ("T", "0110")], 1);
        let seq_db = to_sequence_database(&db, SplitConfig::new(4, 0));
        let seq = &seq_db.sequences()[0];
        // K=On [0,2), T=Off [0,1), T=On [1,3), K=Off [2,4), T=Off [3,4)
        assert_eq!(seq.len(), 5);
        let starts: Vec<i64> = seq.instances().iter().map(|i| i.interval.start).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "overlap must be in")]
    fn overlap_ge_window_panics() {
        let _ = SplitConfig::new(10, 10);
    }

    #[test]
    fn try_new_reports_instead_of_panicking() {
        assert!(SplitConfig::try_new(10, 0).is_ok());
        assert!(SplitConfig::try_new(0, 0)
            .expect_err("zero window")
            .contains("positive"));
        assert!(SplitConfig::try_new(10, 10)
            .expect_err("overlap == window")
            .contains("[0, window)"));
        assert!(SplitConfig::try_new(10, -1).is_err());
    }

    #[test]
    fn effective_rounds_down_consistently() {
        // Exact multiples pass through untouched.
        assert_eq!(
            SplitConfig::new(360, 60).effective(5),
            SplitConfig::new(360, 60)
        );
        // The historical bug: window 20 / overlap 9 at step 10 used to
        // produce an *effective* overlap of 10 > 9. Both values now
        // round down.
        assert_eq!(
            SplitConfig::new(20, 9).effective(10),
            SplitConfig::new(20, 0)
        );
        // window=360, step=7: window rounds to 357 (51 steps).
        assert_eq!(
            SplitConfig::new(360, 0).effective(7),
            SplitConfig::new(357, 0)
        );
        // Overlap is capped so the stride stays at least one step.
        let eff = SplitConfig::new(15, 12).effective(10);
        assert_eq!(eff, SplitConfig::new(10, 0));
        assert_eq!(eff.stride(), 10);
        // A window smaller than one step is promoted to one step.
        assert_eq!(SplitConfig::new(3, 0).effective(10).window, 10);
    }

    #[test]
    fn shard_spans_partition_ownership_and_stay_on_grid() {
        let split = SplitConfig::new(20, 0);
        // 40 steps of 5 ticks => 10 windows of 4 steps, stride 4.
        let spans = split.shard_spans(5, 40, 3, 15).expect("valid geometry");
        assert_eq!(spans.len(), 3);
        // Ownership tiles 0..10 exactly.
        let mut next = 0usize;
        for span in &spans {
            assert_eq!(span.owned_windows.0, next);
            next = span.owned_windows.1;
            // Slices start on the window grid.
            assert_eq!(span.slice_steps.0 % 4, 0);
            assert_eq!(span.first_window, span.slice_steps.0 / 4);
            // Every owned window lies fully inside the slice.
            let last_end = (span.owned_windows.1 - 1) * 4 + 4;
            assert!(span.slice_steps.0 <= span.owned_windows.0 * 4);
            assert!(last_end <= span.slice_steps.1);
        }
        assert_eq!(next, 10);
        // Interior shards are padded by at least t_ov = 15 ticks (3 steps,
        // rounded up to one stride = 4 steps on the left).
        assert_eq!(spans[1].slice_steps.0, spans[1].owned_windows.0 * 4 - 4);
        assert_eq!(
            spans[1].slice_steps.1,
            (spans[1].owned_windows.1 - 1) * 4 + 4 + 3
        );
        // Edge shards clamp at the database bounds.
        assert_eq!(spans[0].slice_steps.0, 0);
        assert_eq!(spans[2].slice_steps.1, 40);
    }

    #[test]
    fn shard_spans_clamp_shard_count_and_reject_bad_input() {
        let split = SplitConfig::new(20, 0);
        // Only 2 windows fit: asking for 8 shards yields 2.
        let spans = split.shard_spans(5, 8, 8, 0).expect("valid");
        assert_eq!(spans.len(), 2);
        assert!(split.shard_spans(5, 3, 2, 0).is_err(), "no full window");
        assert!(split.shard_spans(5, 40, 0, 0).is_err(), "zero shards");
        assert!(split.shard_spans(5, 40, 2, -1).is_err(), "negative t_ov");
        // A huge (unconstrained-t_max-sized) overlap degrades gracefully
        // to whole-database slices.
        let all = split.shard_spans(5, 40, 2, i64::MAX / 4).expect("valid");
        assert_eq!(all[0].slice_steps, (0, 40));
        assert_eq!(all[1].slice_steps, (0, 40));
        assert_eq!(split.n_windows(5, 40), 10);
        assert_eq!(split.n_windows(5, 3), 0);
    }

    #[test]
    fn non_multiple_overlap_no_longer_inflates_the_effective_overlap() {
        // 8 steps of 10 ticks; window 20 (2 steps), requested overlap 9.
        // The old rounding gave stride (20-9)/10 = 1 step => overlap 10;
        // now the overlap rounds down to 0 => stride 2, 4 windows.
        let db = onoff_db(&[("K", "10101010")], 10);
        let seq_db = to_sequence_database(&db, SplitConfig::new(20, 9));
        assert_eq!(seq_db.len(), 4);
        assert_eq!(seq_db.sequences()[1].instances()[0].interval.start, 20);
    }
}
