use serde::{Deserialize, Serialize};

use crate::event::EventId;
use crate::instance::{EventInstance, Interval};

/// The three temporal relations of the paper's simplified Allen model
/// (Defs 3.6–3.8, Table II). `ℜ = {Follow, Contain, Overlap}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TemporalRelation {
    /// `E1 → E2`: e2 starts after e1 ends (within the buffer `ε`).
    Follow,
    /// `E1 ≺ E2` (paper: `<`): e2 lies within e1 (within `ε` at the end).
    Contain,
    /// `E1 ⋒ E2` (paper: `G`): e1 and e2 overlap by at least `d_o` and e2
    /// outlives e1.
    Overlap,
}

impl TemporalRelation {
    /// All relations, in a fixed order used for dense indexing.
    pub const ALL: [TemporalRelation; 3] = [
        TemporalRelation::Follow,
        TemporalRelation::Contain,
        TemporalRelation::Overlap,
    ];

    /// Dense index 0..3.
    pub fn index(self) -> usize {
        match self {
            TemporalRelation::Follow => 0,
            TemporalRelation::Contain => 1,
            TemporalRelation::Overlap => 2,
        }
    }

    /// The paper's infix glyph for the relation.
    pub fn glyph(self) -> &'static str {
        match self {
            TemporalRelation::Follow => "->",
            TemporalRelation::Contain => "<",
            TemporalRelation::Overlap => "G",
        }
    }
}

impl std::fmt::Display for TemporalRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TemporalRelation::Follow => "Follow",
            TemporalRelation::Contain => "Contain",
            TemporalRelation::Overlap => "Overlap",
        };
        f.write_str(name)
    }
}

/// How the miner treats event instances whose runs were clipped at a
/// window boundary by the split (Section IV-B2).
///
/// Clipping a long run at a window cut fabricates one-or-two *short*
/// instances; with the end-based `t_max` duration constraint this
/// inflates support for short patterns and makes non-overlapping splits
/// non-comparable across window placements. The policy decides which
/// interval of an [`EventInstance`] the relation model and the duration
/// constraint reason about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundaryPolicy {
    /// Use the window-clipped interval — the historical behaviour and
    /// the default. Boundary artifacts are counted as real instances.
    #[default]
    Clip,
    /// Use the true run extent: relations, chronological order and the
    /// `t_max` constraint all apply to the run as it exists in the
    /// underlying data. With an overlapped split of `t_ov = t_max`, the
    /// per-window pattern sets match the unsplit database for every
    /// pattern of true duration ≤ `t_max` (the Fig 3 lemma, exactly).
    TrueExtent,
    /// Drop instances clipped on either side: they take part in neither
    /// single-event supports nor pattern occurrences. Conservative —
    /// never counts an artifact, at the cost of losing real occurrences
    /// near the cut.
    Discard,
}

impl BoundaryPolicy {
    /// The CLI spelling of the policy (`clip`, `true-extent`, `discard`).
    pub fn as_str(self) -> &'static str {
        match self {
            BoundaryPolicy::Clip => "clip",
            BoundaryPolicy::TrueExtent => "true-extent",
            BoundaryPolicy::Discard => "discard",
        }
    }

    /// Monomorphization seam: maps the runtime policy to its
    /// compile-time [`BoundaryKernel`] type and runs `visitor` under it.
    ///
    /// This is the *only* place a policy value is turned into a kernel
    /// type — miners call it once per run at their entry point, and
    /// every per-instance decision below that point compiles to the
    /// straight-line code of the chosen kernel instead of re-matching
    /// on the policy inside the hot verification loops.
    pub fn dispatch<V: BoundaryVisit>(self, visitor: V) -> V::Out {
        match self {
            BoundaryPolicy::Clip => visitor.visit::<ClipKernel>(),
            BoundaryPolicy::TrueExtent => visitor.visit::<TrueExtentKernel>(),
            BoundaryPolicy::Discard => visitor.visit::<DiscardKernel>(),
        }
    }
}

/// A computation generic over the boundary kernel, for use with
/// [`BoundaryPolicy::dispatch`]. (A plain closure cannot be generic over
/// a type parameter, so dispatch takes a visitor object instead.)
pub trait BoundaryVisit {
    /// Result of the computation.
    type Out;
    /// Runs the computation with `K` fixed at compile time.
    fn visit<K: BoundaryKernel>(self) -> Self::Out;
}

/// Compile-time form of one [`BoundaryPolicy`] variant: the two
/// per-instance decisions of the verification hot loops — which interval
/// an instance exposes and how instances are ordered — as associated
/// functions that monomorphize to branch-free straight-line code.
///
/// The zero-sized kernel types ([`ClipKernel`], [`TrueExtentKernel`],
/// [`DiscardKernel`]) mirror [`RelationConfig::effective_interval`] and
/// [`RelationConfig::effective_key`] exactly; a property test pins the
/// agreement.
pub trait BoundaryKernel: Copy + Default + Send + Sync + 'static {
    /// The policy this kernel compiles.
    const POLICY: BoundaryPolicy;

    /// [`RelationConfig::effective_interval`] for this policy.
    fn interval(inst: &EventInstance) -> Option<Interval>;

    /// [`RelationConfig::effective_key`] for this policy.
    fn key(inst: &EventInstance) -> (i64, i64, EventId);
}

/// [`BoundaryPolicy::Clip`] as a kernel: the window-clipped view.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClipKernel;

impl BoundaryKernel for ClipKernel {
    const POLICY: BoundaryPolicy = BoundaryPolicy::Clip;

    #[inline(always)]
    fn interval(inst: &EventInstance) -> Option<Interval> {
        Some(inst.interval)
    }

    #[inline(always)]
    fn key(inst: &EventInstance) -> (i64, i64, EventId) {
        inst.chrono_key()
    }
}

/// [`BoundaryPolicy::TrueExtent`] as a kernel: the full run extent.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrueExtentKernel;

impl BoundaryKernel for TrueExtentKernel {
    const POLICY: BoundaryPolicy = BoundaryPolicy::TrueExtent;

    #[inline(always)]
    fn interval(inst: &EventInstance) -> Option<Interval> {
        Some(inst.extent)
    }

    #[inline(always)]
    fn key(inst: &EventInstance) -> (i64, i64, EventId) {
        inst.extent_key()
    }
}

/// [`BoundaryPolicy::Discard`] as a kernel: clipped instances vanish.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardKernel;

impl BoundaryKernel for DiscardKernel {
    const POLICY: BoundaryPolicy = BoundaryPolicy::Discard;

    #[inline(always)]
    fn interval(inst: &EventInstance) -> Option<Interval> {
        (!inst.is_clipped()).then_some(inst.interval)
    }

    #[inline(always)]
    fn key(inst: &EventInstance) -> (i64, i64, EventId) {
        inst.chrono_key()
    }
}

impl std::fmt::Display for BoundaryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for BoundaryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "clip" => Ok(BoundaryPolicy::Clip),
            "true-extent" | "true_extent" => Ok(BoundaryPolicy::TrueExtent),
            "discard" => Ok(BoundaryPolicy::Discard),
            other => Err(format!(
                "unknown boundary policy {other:?} (use clip|true-extent|discard)"
            )),
        }
    }
}

/// Parameters of the relation model and the pattern-duration constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationConfig {
    /// Buffer `ε ≥ 0` added to interval endpoints as tolerated jitter
    /// (Defs 3.6–3.8). An overlap of at most `ε` still counts as Follow.
    pub epsilon: i64,
    /// Minimal overlapping duration `d_o` for the Overlap relation
    /// (Def 3.8). The paper requires `0 ≤ ε ≤ d_o`.
    pub min_overlap: i64,
    /// Maximal pattern duration `t_max` (Section III-C): the last instance
    /// of a pattern occurrence must end within `t_max` of the first
    /// instance's start.
    pub t_max: i64,
    /// Treatment of window-boundary-clipped instances. [`Clip`]
    /// (the default) preserves the historical numbers.
    ///
    /// [`Clip`]: BoundaryPolicy::Clip
    pub boundary: BoundaryPolicy,
}

impl Default for RelationConfig {
    /// `ε = 0`, `d_o = 1` tick, `t_max = i64::MAX / 4` (effectively
    /// unconstrained). With these defaults the three relations are both
    /// mutually exclusive and complete for instance pairs with distinct
    /// start times.
    fn default() -> Self {
        RelationConfig {
            epsilon: 0,
            min_overlap: 1,
            t_max: i64::MAX / 4,
            boundary: BoundaryPolicy::Clip,
        }
    }
}

impl RelationConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ε ≤ d_o` and `t_max > 0`.
    pub fn new(epsilon: i64, min_overlap: i64, t_max: i64) -> Self {
        // lint: allow(panic, documented # Panics contract; try_new is the fallible path)
        RelationConfig::try_new(epsilon, min_overlap, t_max).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`RelationConfig::new`] for parameters
    /// that come from user input: returns a message instead of panicking
    /// when `ε < 0`, `ε > d_o`, or `t_max ≤ 0`.
    pub fn try_new(epsilon: i64, min_overlap: i64, t_max: i64) -> Result<Self, String> {
        if epsilon < 0 {
            return Err(format!("epsilon must be non-negative, got {epsilon}"));
        }
        if min_overlap < epsilon {
            return Err(format!(
                "paper requires epsilon <= d_o (Def 3.8), got epsilon {epsilon} with d_o \
                 {min_overlap}"
            ));
        }
        if t_max <= 0 {
            return Err(format!("t_max must be positive, got {t_max}"));
        }
        Ok(RelationConfig {
            epsilon,
            min_overlap,
            t_max,
            boundary: BoundaryPolicy::Clip,
        })
    }

    /// Same config with a different `t_max`.
    pub fn with_t_max(self, t_max: i64) -> Self {
        RelationConfig { t_max, ..self }
    }

    /// Same config with a different boundary policy.
    pub fn with_boundary(self, boundary: BoundaryPolicy) -> Self {
        RelationConfig { boundary, ..self }
    }

    /// The interval of `inst` this config's boundary policy reasons
    /// about, or `None` when the policy discards the instance outright.
    ///
    /// [`Clip`] sees the window-clipped interval, [`TrueExtent`] the full
    /// run extent, and [`Discard`] refuses instances clipped on either
    /// side.
    ///
    /// [`Clip`]: BoundaryPolicy::Clip
    /// [`TrueExtent`]: BoundaryPolicy::TrueExtent
    /// [`Discard`]: BoundaryPolicy::Discard
    #[inline]
    pub fn effective_interval(&self, inst: &EventInstance) -> Option<Interval> {
        match self.boundary {
            BoundaryPolicy::Clip => Some(inst.interval),
            BoundaryPolicy::TrueExtent => Some(inst.extent),
            BoundaryPolicy::Discard => (!inst.is_clipped()).then_some(inst.interval),
        }
    }

    /// The chronological key matching [`effective_interval`]: miners must
    /// bind occurrences in the order of the intervals they relate, so
    /// under [`TrueExtent`] the key is the extent's.
    ///
    /// [`effective_interval`]: RelationConfig::effective_interval
    /// [`TrueExtent`]: BoundaryPolicy::TrueExtent
    #[inline]
    pub fn effective_key(&self, inst: &EventInstance) -> (i64, i64, EventId) {
        match self.boundary {
            BoundaryPolicy::TrueExtent => inst.extent_key(),
            BoundaryPolicy::Clip | BoundaryPolicy::Discard => inst.chrono_key(),
        }
    }

    /// Determines the relation between two instances whose chronological
    /// order is `first` then `second` (i.e. `first.chrono_key() <=
    /// second.chrono_key()`).
    ///
    /// Returns `None` when no relation applies — possible when start times
    /// coincide, or when intervals overlap by more than `ε` but less than
    /// `d_o` while `second` outlives `first`.
    ///
    /// The predicates are evaluated in the order Follow, Contain, Overlap,
    /// which makes them mutually exclusive even for `ε > 0` (the paper's
    /// stated intent in Section III-B).
    pub fn relate(&self, first: &Interval, second: &Interval) -> Option<TemporalRelation> {
        debug_assert!(
            (first.start, first.end) <= (second.start, second.end),
            "relate() requires chronological argument order"
        );
        // Def 3.6 (Follow): t_e1 ± ε ≤ t_s2 — the second instance begins
        // once the first has ended, tolerating up to ε of overlap.
        if second.start >= first.end - self.epsilon {
            return Some(TemporalRelation::Follow);
        }
        // Def 3.7 (Contain): t_s1 ≤ t_s2 ∧ t_e1 ± ε ≥ t_e2.
        if first.start <= second.start && second.end <= first.end + self.epsilon {
            return Some(TemporalRelation::Contain);
        }
        // Def 3.8 (Overlap): t_s1 < t_s2 ∧ t_e1 ± ε < t_e2 ∧
        // t_e1 − t_s2 ≥ d_o.
        if first.start < second.start
            && second.end > first.end + self.epsilon
            && first.end - second.start >= self.min_overlap
        {
            return Some(TemporalRelation::Overlap);
        }
        None
    }

    /// True iff a pattern occurrence whose chronologically first instance
    /// starts at `first_start` and whose last instance ends at `last_end`
    /// satisfies the maximal-duration constraint.
    pub fn within_t_max(&self, first_start: i64, last_end: i64) -> bool {
        last_end - first_start <= self.t_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn follow_basic() {
        let cfg = RelationConfig::default();
        assert_eq!(cfg.relate(&iv(0, 5), &iv(5, 8)), Some(TemporalRelation::Follow));
        assert_eq!(cfg.relate(&iv(0, 5), &iv(9, 12)), Some(TemporalRelation::Follow));
    }

    #[test]
    fn contain_basic() {
        let cfg = RelationConfig::default();
        assert_eq!(cfg.relate(&iv(0, 10), &iv(2, 8)), Some(TemporalRelation::Contain));
        // Shared right endpoint still contains.
        assert_eq!(cfg.relate(&iv(0, 10), &iv(2, 10)), Some(TemporalRelation::Contain));
        // Shared start: ts1 <= ts2 holds, so Contain applies.
        assert_eq!(cfg.relate(&iv(0, 10), &iv(0, 10)), Some(TemporalRelation::Contain));
    }

    #[test]
    fn overlap_basic() {
        let cfg = RelationConfig::default();
        assert_eq!(cfg.relate(&iv(0, 10), &iv(5, 15)), Some(TemporalRelation::Overlap));
    }

    #[test]
    fn overlap_requires_min_duration() {
        let cfg = RelationConfig::new(0, 3, 1000);
        // Overlap of 2 < d_o = 3: no relation at all.
        assert_eq!(cfg.relate(&iv(0, 10), &iv(8, 15)), None);
        // Overlap of exactly 3 qualifies.
        assert_eq!(cfg.relate(&iv(0, 10), &iv(7, 15)), Some(TemporalRelation::Overlap));
    }

    #[test]
    fn epsilon_turns_small_overlap_into_follow() {
        let cfg = RelationConfig::new(2, 2, 1000);
        // Overlap of 2 <= epsilon: tolerated, counted as Follow.
        assert_eq!(cfg.relate(&iv(0, 10), &iv(8, 15)), Some(TemporalRelation::Follow));
        // Overlap of 3 > epsilon and >= d_o: Overlap.
        assert_eq!(cfg.relate(&iv(0, 10), &iv(7, 15)), Some(TemporalRelation::Overlap));
    }

    #[test]
    fn epsilon_extends_contain_at_the_end() {
        let cfg = RelationConfig::new(2, 2, 1000);
        // e2 outlives e1 by 2 <= epsilon: still contained.
        assert_eq!(cfg.relate(&iv(0, 10), &iv(3, 12)), Some(TemporalRelation::Contain));
        // Outlives by 3 > epsilon: overlap (overlap duration 7 >= d_o).
        assert_eq!(cfg.relate(&iv(0, 10), &iv(3, 13)), Some(TemporalRelation::Overlap));
    }

    #[test]
    fn same_start_longer_second_has_no_relation() {
        // ts1 == ts2 but e2 ends later: none of the three relations applies
        // (Overlap needs strict ts1 < ts2, Contain needs te2 <= te1).
        let cfg = RelationConfig::default();
        assert_eq!(cfg.relate(&iv(0, 5), &iv(0, 9)), None);
    }

    #[test]
    fn t_max_constraint() {
        let cfg = RelationConfig::new(0, 1, 60);
        assert!(cfg.within_t_max(0, 60));
        assert!(!cfg.within_t_max(0, 61));
    }

    #[test]
    #[should_panic(expected = "epsilon <= d_o")]
    fn epsilon_greater_than_min_overlap_panics() {
        let _ = RelationConfig::new(5, 2, 100);
    }

    #[test]
    fn boundary_policy_parses_and_displays() {
        for (text, policy) in [
            ("clip", BoundaryPolicy::Clip),
            ("true-extent", BoundaryPolicy::TrueExtent),
            ("true_extent", BoundaryPolicy::TrueExtent),
            ("discard", BoundaryPolicy::Discard),
        ] {
            assert_eq!(text.parse::<BoundaryPolicy>(), Ok(policy));
        }
        assert_eq!(BoundaryPolicy::TrueExtent.to_string(), "true-extent");
        assert!("chop".parse::<BoundaryPolicy>().is_err());
        assert_eq!(BoundaryPolicy::default(), BoundaryPolicy::Clip);
    }

    #[test]
    fn effective_interval_follows_policy() {
        use crate::instance::EventInstance;
        let clipped = EventInstance::with_extent(
            EventId(0),
            Interval::new(10, 20),
            Interval::new(4, 26),
        );
        let clean = EventInstance::new(EventId(1), 12, 18);
        let base = RelationConfig::default();

        let clip = base.with_boundary(BoundaryPolicy::Clip);
        assert_eq!(clip.effective_interval(&clipped), Some(Interval::new(10, 20)));
        assert_eq!(clip.effective_key(&clipped), clipped.chrono_key());

        let ext = base.with_boundary(BoundaryPolicy::TrueExtent);
        assert_eq!(ext.effective_interval(&clipped), Some(Interval::new(4, 26)));
        assert_eq!(ext.effective_key(&clipped), clipped.extent_key());

        let discard = base.with_boundary(BoundaryPolicy::Discard);
        assert_eq!(discard.effective_interval(&clipped), None);
        assert_eq!(discard.effective_interval(&clean), Some(clean.interval));
    }

    #[test]
    fn dispatch_selects_matching_kernel() {
        struct PolicyOf;
        impl BoundaryVisit for PolicyOf {
            type Out = BoundaryPolicy;
            fn visit<K: BoundaryKernel>(self) -> BoundaryPolicy {
                K::POLICY
            }
        }
        for policy in [
            BoundaryPolicy::Clip,
            BoundaryPolicy::TrueExtent,
            BoundaryPolicy::Discard,
        ] {
            assert_eq!(policy.dispatch(PolicyOf), policy);
        }
    }

    proptest! {
        /// Each kernel agrees with the runtime-branching
        /// `effective_interval`/`effective_key` pair it compiles.
        #[test]
        fn prop_kernels_match_effective_fns(
            s in 0i64..500, d in 1i64..60,
            pad_l in 0i64..10, pad_r in 0i64..10,
        ) {
            let iv = Interval::new(s, s + d);
            let ext = Interval::new(s - pad_l, s + d + pad_r);
            let inst = EventInstance::with_extent(EventId(3), iv, ext);

            struct Check<'a>(&'a EventInstance);
            impl BoundaryVisit for Check<'_> {
                type Out = ();
                fn visit<K: BoundaryKernel>(self) {
                    let cfg = RelationConfig::default().with_boundary(K::POLICY);
                    assert_eq!(K::interval(self.0), cfg.effective_interval(self.0));
                    assert_eq!(K::key(self.0), cfg.effective_key(self.0));
                }
            }
            for policy in [
                BoundaryPolicy::Clip,
                BoundaryPolicy::TrueExtent,
                BoundaryPolicy::Discard,
            ] {
                policy.dispatch(Check(&inst));
            }
        }

        /// With the default config the relation is total for instance pairs
        /// with distinct start times — the "completeness" the paper claims
        /// for its simplified model.
        #[test]
        fn prop_complete_for_distinct_starts(
            s1 in 0i64..1000, d1 in 1i64..100,
            s2 in 0i64..1000, d2 in 1i64..100,
        ) {
            prop_assume!(s1 != s2);
            let (a, b) = if (s1, s1 + d1) <= (s2, s2 + d2) {
                (iv(s1, s1 + d1), iv(s2, s2 + d2))
            } else {
                (iv(s2, s2 + d2), iv(s1, s1 + d1))
            };
            let cfg = RelationConfig::default();
            prop_assert!(cfg.relate(&a, &b).is_some());
        }

        /// The three paper predicates, evaluated independently with ε = 0,
        /// never both hold for the same pair: mutual exclusivity.
        #[test]
        fn prop_mutually_exclusive_eps0(
            s1 in 0i64..500, d1 in 1i64..60,
            s2 in 0i64..500, d2 in 1i64..60,
            min_overlap in 1i64..10,
        ) {
            let (a, b) = if (s1, s1 + d1) <= (s2, s2 + d2) {
                (iv(s1, s1 + d1), iv(s2, s2 + d2))
            } else {
                (iv(s2, s2 + d2), iv(s1, s1 + d1))
            };
            let follow = b.start >= a.end;
            let contain = a.start <= b.start && b.end <= a.end && b.start < a.end;
            let overlap = a.start < b.start && b.end > a.end
                && a.end - b.start >= min_overlap;
            prop_assert!(u8::from(follow) + u8::from(contain) + u8::from(overlap) <= 1);
            // And relate() agrees with whichever predicate holds.
            let cfg = RelationConfig::new(0, min_overlap, i64::MAX / 4);
            let got = cfg.relate(&a, &b);
            if follow { prop_assert_eq!(got, Some(TemporalRelation::Follow)); }
            if contain { prop_assert_eq!(got, Some(TemporalRelation::Contain)); }
            if overlap { prop_assert_eq!(got, Some(TemporalRelation::Overlap)); }
        }

        /// relate() never returns Overlap with less than d_o of overlap.
        #[test]
        fn prop_overlap_duration_respected(
            s1 in 0i64..500, d1 in 1i64..60,
            s2 in 0i64..500, d2 in 1i64..60,
            eps in 0i64..5, extra in 0i64..5,
        ) {
            let min_overlap = eps + extra + 1;
            let (a, b) = if (s1, s1 + d1) <= (s2, s2 + d2) {
                (iv(s1, s1 + d1), iv(s2, s2 + d2))
            } else {
                (iv(s2, s2 + d2), iv(s1, s1 + d1))
            };
            let cfg = RelationConfig::new(eps, min_overlap, i64::MAX / 4);
            if cfg.relate(&a, &b) == Some(TemporalRelation::Overlap) {
                prop_assert!(a.overlap_duration(&b) >= min_overlap);
            }
        }
    }
}
