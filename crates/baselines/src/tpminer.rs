//! TPMiner (Chen, Peng & Lee, TKDE 2015): endpoint-representation
//! pattern growth.
//!
//! TPMiner converts interval sequences into endpoint sequences and grows
//! patterns prefix by prefix, projecting the database onto each prefix's
//! occurrences. Our implementation keeps that structure: a depth-first
//! growth where each step appends one chronologically-last event instance
//! to every occurrence of the prefix, grouped by the induced relation
//! column. What it lacks — deliberately, per the original algorithm — is
//! HTPGM's bitmap Apriori filter on event combinations, its
//! confidence-based pruning (Lemma 3), and its transitivity pruning
//! (Lemmas 4–7): support is the only growth criterion, and confidence is
//! applied to the final output.

use std::collections::{HashMap, HashSet};

use ftpm_core::{MinerConfig, MiningResult, Pattern};
use ftpm_events::{BoundaryKernel, BoundaryVisit, EventId, SequenceDatabase};

use crate::common::{assemble, event_supports, relation_column};

/// Occurrences of a prefix: `(sequence, bound instance indices)`.
type Projection = Vec<(u32, Vec<u32>)>;

/// The endpoint view TPMiner preprocesses sequences into: per sequence,
/// the instance indices of each event in endpoint (chronological) order.
struct EndpointIndex {
    per_seq: Vec<HashMap<EventId, Vec<u32>>>,
}

impl EndpointIndex {
    fn build<K: BoundaryKernel>(db: &SequenceDatabase) -> Self {
        let per_seq = db
            .sequences()
            .iter()
            .map(|seq| {
                let mut m: HashMap<EventId, Vec<u32>> = HashMap::new();
                for (i, inst) in seq.instances().iter().enumerate() {
                    // Instances the boundary policy discards never enter
                    // the endpoint view.
                    if K::interval(inst).is_none() {
                        continue;
                    }
                    m.entry(inst.event).or_default().push(i as u32);
                }
                m
            })
            .collect();
        EndpointIndex { per_seq }
    }

    fn instances_of(&self, seq: u32, event: EventId) -> &[u32] {
        self.per_seq[seq as usize]
            .get(&event)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Mines all frequent temporal patterns with TPMiner-style pattern
/// growth. Output is identical to [`ftpm_core::mine_exact`].
pub fn mine_tpminer(db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
    // Monomorphization seam: fix the boundary kernel once per run.
    struct Run<'a> {
        db: &'a SequenceDatabase,
        cfg: &'a MinerConfig,
    }
    impl BoundaryVisit for Run<'_> {
        type Out = MiningResult;
        fn visit<K: BoundaryKernel>(self) -> MiningResult {
            mine_tpminer_k::<K>(self.db, self.cfg)
        }
    }
    cfg.relation.boundary.dispatch(Run { db, cfg })
}

/// [`mine_tpminer`], monomorphized over the boundary kernel.
fn mine_tpminer_k<K: BoundaryKernel>(db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
    let sigma_abs = cfg.absolute_support(db.len());
    let supports = event_supports::<K>(db);

    // Per-sequence, per-event instance lists (the vertical endpoint view).
    let frequent: Vec<EventId> = {
        let mut v: Vec<EventId> = supports
            .iter()
            .filter(|(_, &s)| s >= sigma_abs)
            .map(|(&e, _)| e)
            .collect();
        v.sort_unstable();
        v
    };

    let endpoints = EndpointIndex::build::<K>(db);
    let mut counted: Vec<(Pattern, usize)> = Vec::new();
    for &e in &frequent {
        // Project the database onto the 1-event prefix <e>.
        let mut projection: Projection = Vec::new();
        for si in 0..db.len() as u32 {
            for &ii in endpoints.instances_of(si, e) {
                projection.push((si, vec![ii]));
            }
        }
        grow::<K>(
            db,
            &endpoints,
            cfg,
            sigma_abs,
            &frequent,
            &[e],
            &[],
            &projection,
            &mut counted,
        );
    }
    assemble(db, cfg, &supports, counted)
}

/// Extends the prefix `(events, relations)` with every frequent event, in
/// depth-first order.
#[allow(clippy::too_many_arguments)]
fn grow<K: BoundaryKernel>(
    db: &SequenceDatabase,
    endpoints: &EndpointIndex,
    cfg: &MinerConfig,
    sigma_abs: usize,
    frequent: &[EventId],
    events: &[EventId],
    relations: &[ftpm_events::TemporalRelation],
    projection: &Projection,
    counted: &mut Vec<(Pattern, usize)>,
) {
    if events.len() >= cfg.max_events {
        return;
    }
    for &ek in frequent {
        // Group candidate extensions by relation column.
        let mut groups: HashMap<Vec<ftpm_events::TemporalRelation>, (HashSet<u32>, Projection)> =
            HashMap::new();
        for (si, binding) in projection {
            let insts = db.sequences()[*si as usize].instances();
            let rel = &cfg.relation;
            // Projected and candidate instances passed the boundary
            // policy when they entered the endpoint view.
            let bound_iv = |b: u32| {
                K::interval(&insts[b as usize])
                    // lint: allow(panic, structural invariant: binding members passed the boundary policy on entry)
                    .expect("bound instances pass the boundary policy")
            };
            // lint: allow(panic, structural invariant: the binding is non-empty on this path)
            let last_key = K::key(&insts[*binding.last().expect("non-empty") as usize]);
            let first_start = bound_iv(binding[0]).start;
            let max_end = binding
                .iter()
                .map(|&b| bound_iv(b).end)
                .max()
                // lint: allow(panic, structural invariant: the binding is non-empty on this path)
                .expect("non-empty");
            for &xi in endpoints.instances_of(*si, ek) {
                let xi = xi as usize;
                let x = &insts[xi];
                // lint: allow(panic, structural invariant: endpoint-view members passed the boundary policy)
                let x_iv = K::interval(x).expect("in endpoint view");
                if K::key(x) <= last_key {
                    continue;
                }
                if !rel.within_t_max(first_start, max_end.max(x_iv.end)) {
                    continue;
                }
                let Some(rels) = relation_column::<K>(insts, binding, xi, cfg) else {
                    continue;
                };
                let entry = groups.entry(rels).or_default();
                entry.0.insert(*si);
                let mut nb = binding.clone();
                nb.push(xi as u32);
                entry.1.push((*si, nb));
            }
        }
        for (rels, (seqs, next_projection)) in groups {
            if seqs.len() < sigma_abs {
                continue; // support is the only growth pruning TPMiner has
            }
            let mut new_events = events.to_vec();
            new_events.push(ek);
            let mut new_relations = relations.to_vec();
            new_relations.extend_from_slice(&rels);
            counted.push((
                Pattern::new(new_events.clone(), new_relations.clone()),
                seqs.len(),
            ));
            grow::<K>(
                db,
                endpoints,
                cfg,
                sigma_abs,
                frequent,
                &new_events,
                &new_relations,
                &next_projection,
                counted,
            );
        }
    }
}
