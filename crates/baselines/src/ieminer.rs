//! IEMiner (Patel, Hsu & Lee, SIGMOD 2008): level-wise Apriori mining
//! over a hierarchical lossless representation of interval events.
//!
//! IEMiner is a classic candidate-generate-and-test algorithm: level `k`
//! candidates are produced by joining level `k−1` patterns with frequent
//! events (keeping only candidates whose new 2-event sub-patterns are all
//! frequent — the Apriori property), and every candidate is then counted
//! by **scanning the horizontal database** and matching it against each
//! sequence with a backtracking search. The repeated full-database scans
//! per level are what the paper's evaluation shows scaling poorly
//! compared to HTPGM's bitmap-indexed verification. Confidence is applied
//! to the final output only.

use std::collections::{HashMap, HashSet};

use ftpm_core::{MinerConfig, MiningResult, Pattern};
use ftpm_events::{
    BoundaryKernel, BoundaryVisit, EventId, SequenceDatabase, TemporalRelation,
};

use crate::common::{assemble, event_supports, sequence_supports};

/// Mines all frequent temporal patterns with IEMiner. Output is identical
/// to [`ftpm_core::mine_exact`].
pub fn mine_ieminer(db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
    // Monomorphization seam: fix the boundary kernel once per run.
    struct Run<'a> {
        db: &'a SequenceDatabase,
        cfg: &'a MinerConfig,
    }
    impl BoundaryVisit for Run<'_> {
        type Out = MiningResult;
        fn visit<K: BoundaryKernel>(self) -> MiningResult {
            mine_ieminer_k::<K>(self.db, self.cfg)
        }
    }
    cfg.relation.boundary.dispatch(Run { db, cfg })
}

/// [`mine_ieminer`], monomorphized over the boundary kernel.
fn mine_ieminer_k<K: BoundaryKernel>(db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
    let sigma_abs = cfg.absolute_support(db.len());
    let supports = event_supports::<K>(db);
    let mut frequent_events: Vec<EventId> = supports
        .iter()
        .filter(|(_, &s)| s >= sigma_abs)
        .map(|(&e, _)| e)
        .collect();
    frequent_events.sort_unstable();

    let mut counted: Vec<(Pattern, usize)> = Vec::new();

    // Level 2: all ordered event pairs x all three relations.
    let mut candidates: Vec<Pattern> = Vec::new();
    for &a in &frequent_events {
        for &b in &frequent_events {
            for r in TemporalRelation::ALL {
                candidates.push(Pattern::pair(a, r, b));
            }
        }
    }

    let mut current: Vec<(Pattern, usize)> =
        count_by_scanning::<K>(db, cfg, &candidates, sigma_abs);
    // Frequent triples, for the Apriori check during candidate join.
    let mut frequent_pairs: HashSet<(EventId, TemporalRelation, EventId)> = current
        .iter()
        .map(|(p, _)| (p.events()[0], p.relations()[0], p.events()[1]))
        .collect();

    let mut level = 2usize;
    while !current.is_empty() && level < cfg.max_events {
        counted.extend(current.iter().cloned());
        // Candidate generation for level k+1: extend each frequent
        // pattern with a frequent event and every relation column whose
        // triples are all frequent 2-event patterns (Apriori property).
        let mut next_candidates: Vec<Pattern> = Vec::new();
        for (p, _) in &current {
            for &ek in &frequent_events {
                let mut columns: Vec<Vec<TemporalRelation>> = vec![Vec::new()];
                for &ei in p.events() {
                    let mut grown = Vec::new();
                    for col in &columns {
                        for r in TemporalRelation::ALL {
                            if frequent_pairs.contains(&(ei, r, ek)) {
                                let mut c = col.clone();
                                c.push(r);
                                grown.push(c);
                            }
                        }
                    }
                    columns = grown;
                    if columns.is_empty() {
                        break;
                    }
                }
                for col in columns {
                    next_candidates.push(p.extend(ek, &col));
                }
            }
        }
        current = count_by_scanning::<K>(db, cfg, &next_candidates, sigma_abs);
        level += 1;
    }
    counted.extend(current);
    // L2 set no longer needed; kept alive until here for the joins.
    frequent_pairs.clear();

    assemble(db, cfg, &supports, counted)
}

/// The horizontal counting pass: for every candidate, scan every sequence
/// and test support with a backtracking match.
fn count_by_scanning<K: BoundaryKernel>(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    candidates: &[Pattern],
    sigma_abs: usize,
) -> Vec<(Pattern, usize)> {
    let mut counts: HashMap<&Pattern, usize> = HashMap::new();
    for candidate in candidates {
        let mut supp = 0usize;
        for seq in db.sequences() {
            if sequence_supports::<K>(seq, candidate, cfg) {
                supp += 1;
            }
        }
        if supp >= sigma_abs {
            counts.insert(candidate, supp);
        }
    }
    counts
        .into_iter()
        .map(|(p, s)| (p.clone(), s))
        .collect()
}
