#![forbid(unsafe_code)]
//! The three state-of-the-art baselines the paper compares against
//! (Section VI-A3). All three return exactly the same pattern set as
//! [`ftpm_core::mine_exact`] — asserted by this crate's equivalence tests
//! — but with the algorithmic structure of the original publications,
//! which is what makes them slower:
//!
//! * [`mine_hdfs`] — H-DFS (Papapetrou et al., KAIS 2009): vertical
//!   ID-lists merged pairwise, hybrid BFS (pairs) + DFS (extensions),
//!   full occurrence lists materialized at every step, no bitmap, no
//!   confidence or transitivity pruning;
//! * [`mine_ieminer`] — IEMiner (Patel et al., SIGMOD 2008): level-wise
//!   Apriori candidate generation followed by repeated horizontal
//!   database scans that match every candidate against every sequence;
//! * [`mine_tpminer`] — TPMiner (Chen et al., TKDE 2015): endpoint-style
//!   pattern growth over projected occurrence lists — the strongest
//!   baseline, structurally closest to HTPGM but without its bitmap
//!   Apriori filtering and transitivity pruning.
//!
//! The paper's observed runtime ordering
//! `A-HTPGM < E-HTPGM < TPMiner < IEMiner < H-DFS` emerges from these
//! structural differences, not from artificial slowdowns.
//!
//! All three honor [`ftpm_events::BoundaryPolicy`] (they historically
//! mined the clipped view regardless), so boundary-aware comparisons
//! against the HPG miners are meaningful under every policy — asserted
//! by the equivalence tests against [`ftpm_core::mine_reference`].

mod common;
mod hdfs;
mod ieminer;
mod tpminer;

pub use hdfs::mine_hdfs;
pub use ieminer::mine_ieminer;
pub use tpminer::mine_tpminer;
