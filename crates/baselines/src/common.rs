//! Shared plumbing for the baseline miners: event supports (counted by
//! database scan, not bitmaps), pattern matching against a sequence, and
//! result assembly.
//!
//! All of it is generic over a [`ftpm_events::BoundaryKernel`] — the same
//! monomorphization seam the HPG miners dispatch through — so the
//! baselines honor the configured [`ftpm_events::BoundaryPolicy`] exactly
//! like the HPG miners do (historically they silently mined the clipped
//! view whatever the policy said), with the policy choice compiled out of
//! their instance loops.

use std::collections::{HashMap, HashSet};

use ftpm_core::{FrequentPattern, MinerConfig, MiningResult, MiningStats, Pattern};
use ftpm_events::{
    BoundaryKernel, BoundaryPolicy, EventId, SequenceDatabase, TemporalRelation,
    TemporalSequence,
};

/// Event supports counted with one horizontal scan of the database.
/// Instances the boundary policy discards are invisible — they feed
/// neither supports nor confidence denominators, matching
/// `DatabaseIndex::build_with_policy`.
pub(crate) fn event_supports<K: BoundaryKernel>(
    db: &SequenceDatabase,
) -> HashMap<EventId, usize> {
    let mut supports: HashMap<EventId, usize> = HashMap::new();
    let mut seen: HashSet<EventId> = HashSet::new();
    for seq in db.sequences() {
        seen.clear();
        for inst in seq.instances() {
            if K::interval(inst).is_some() {
                seen.insert(inst.event);
            }
        }
        for &e in &seen {
            *supports.entry(e).or_default() += 1;
        }
    }
    supports
}

/// Confidence denominator: the largest support among the pattern's events
/// (Def 3.16).
pub(crate) fn max_event_support(
    pattern: &Pattern,
    supports: &HashMap<EventId, usize>,
) -> usize {
    pattern
        .events()
        .iter()
        .map(|e| supports.get(e).copied().unwrap_or(0))
        .max()
        // lint: allow(panic, structural invariant: patterns always hold at least one event)
        .expect("patterns have events")
}

/// Does `seq` support `pattern`? Backtracking search for a chronological
/// instance binding satisfying every triple and the duration constraint —
/// how IEMiner verifies candidates against the horizontal database.
///
/// "Chronological" means the boundary policy's effective key: under
/// `TrueExtent` the extent order can disagree with the clipped index
/// order the sequence is sorted by, so candidates are gated by key, not
/// by position.
pub(crate) fn sequence_supports<K: BoundaryKernel>(
    seq: &TemporalSequence,
    pattern: &Pattern,
    cfg: &MinerConfig,
) -> bool {
    let mut binding: Vec<usize> = Vec::with_capacity(pattern.len());
    backtrack_from::<K>(seq.instances(), pattern, cfg, &mut binding)
}

fn backtrack_from<K: BoundaryKernel>(
    insts: &[ftpm_events::EventInstance],
    pattern: &Pattern,
    cfg: &MinerConfig,
    binding: &mut Vec<usize>,
) -> bool {
    let rel = &cfg.relation;
    let pos = binding.len();
    if pos == pattern.len() {
        return true;
    }
    // Under Clip/Discard the effective key order equals the sequence's
    // index order, so the scan can skip everything up to the last bound
    // position; only TrueExtent (extent order can disagree with index
    // order) must rescan from the start and rely on the key gate alone.
    // `K::POLICY` is a constant, so the non-matching arm compiles out.
    let start = match K::POLICY {
        BoundaryPolicy::TrueExtent => 0,
        BoundaryPolicy::Clip | BoundaryPolicy::Discard => {
            binding.last().map_or(0, |&last| last + 1)
        }
    };
    let want = pattern.events()[pos];
    for (i, x) in insts.iter().enumerate().skip(start) {
        if x.event != want {
            continue;
        }
        let Some(x_iv) = K::interval(x) else {
            continue; // discarded by the boundary policy
        };
        if let Some(&last) = binding.last() {
            if K::key(x) <= K::key(&insts[last]) {
                continue;
            }
        }
        // Bound instances passed the policy when they were pushed.
        let bound_iv = |b: usize| {
            K::interval(&insts[b])
                // lint: allow(panic, structural invariant: binding members passed the boundary policy on entry)
                .expect("bound instances pass the boundary policy")
        };
        // Duration constraint: the whole occurrence fits in t_max.
        if !binding.is_empty() {
            let first_start = bound_iv(binding[0]).start;
            let max_end = binding
                .iter()
                .map(|&b| bound_iv(b).end)
                .max()
                // lint: allow(panic, structural invariant: the binding is non-empty on this path)
                .expect("non-empty")
                .max(x_iv.end);
            if !rel.within_t_max(first_start, max_end) {
                continue;
            }
        }
        // All relations to already-bound instances must match.
        let ok = binding.iter().enumerate().all(|(j, &b)| {
            rel.relate(&bound_iv(b), &x_iv) == Some(pattern.relation_between(j, pos))
        });
        if !ok {
            continue;
        }
        binding.push(i);
        if backtrack_from::<K>(insts, pattern, cfg, binding) {
            binding.pop();
            return true;
        }
        binding.pop();
    }
    false
}

/// Final assembly: apply σ and δ, compute measures, sort, and wrap in a
/// [`MiningResult`].
pub(crate) fn assemble(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    supports: &HashMap<EventId, usize>,
    counted: Vec<(Pattern, usize)>,
) -> MiningResult {
    let n = db.len();
    let sigma_abs = cfg.absolute_support(n);
    let mut patterns: Vec<FrequentPattern> = counted
        .into_iter()
        .filter(|(_, supp)| *supp >= sigma_abs)
        .filter_map(|(pattern, supp)| {
            let confidence = supp as f64 / max_event_support(&pattern, supports) as f64;
            if confidence + 1e-9 < cfg.delta {
                return None;
            }
            Some(FrequentPattern {
                pattern,
                support: supp,
                rel_support: supp as f64 / n.max(1) as f64,
                confidence,
                // Baselines count supporting sequences without keeping
                // bound occurrence tuples, so the per-pattern artifact
                // measure is not available (the policy itself is applied:
                // relations, ordering and t_max all use the effective
                // intervals).
                clipped_occurrences: 0,
            })
        })
        .collect();
    patterns.sort_by(|a, b| {
        (a.pattern.len(), a.pattern.events(), a.pattern.relations()).cmp(&(
            b.pattern.len(),
            b.pattern.events(),
            b.pattern.relations(),
        ))
    });
    let frequent_events = {
        let mut v: Vec<(EventId, usize)> = supports
            .iter()
            .filter(|(_, &s)| s >= sigma_abs)
            .map(|(&e, &s)| (e, s))
            .collect();
        v.sort_unstable();
        v
    };
    MiningResult {
        patterns,
        frequent_events,
        graph: Default::default(),
        stats: MiningStats::default(),
    }
}

/// The ordered relation column appended when a chronologically last
/// instance joins an existing binding; `None` if any pair has no relation.
/// All intervals go through the boundary policy; the caller guarantees
/// `x` and every bound instance pass it.
pub(crate) fn relation_column<K: BoundaryKernel>(
    insts: &[ftpm_events::EventInstance],
    binding: &[u32],
    x: usize,
    cfg: &MinerConfig,
) -> Option<Vec<TemporalRelation>> {
    let rel = &cfg.relation;
    let x_iv = K::interval(&insts[x])
        // lint: allow(panic, structural invariant: candidates passed the boundary policy on entry)
        .expect("candidate instances pass the boundary policy");
    let mut rels = Vec::with_capacity(binding.len());
    for &b in binding {
        let b_iv = K::interval(&insts[b as usize])
            // lint: allow(panic, structural invariant: binding members passed the boundary policy on entry)
            .expect("bound instances pass the boundary policy");
        rels.push(rel.relate(&b_iv, &x_iv)?);
    }
    Some(rels)
}
