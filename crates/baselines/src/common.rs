//! Shared plumbing for the baseline miners: event supports (counted by
//! database scan, not bitmaps), pattern matching against a sequence, and
//! result assembly.

use std::collections::HashMap;

use ftpm_core::{FrequentPattern, MinerConfig, MiningResult, MiningStats, Pattern};
use ftpm_events::{EventId, SequenceDatabase, TemporalRelation, TemporalSequence};

/// Event supports counted with one horizontal scan of the database.
pub(crate) fn event_supports(db: &SequenceDatabase) -> HashMap<EventId, usize> {
    let mut supports: HashMap<EventId, usize> = HashMap::new();
    for seq in db.sequences() {
        for e in seq.distinct_events() {
            *supports.entry(e).or_default() += 1;
        }
    }
    supports
}

/// Confidence denominator: the largest support among the pattern's events
/// (Def 3.16).
pub(crate) fn max_event_support(
    pattern: &Pattern,
    supports: &HashMap<EventId, usize>,
) -> usize {
    pattern
        .events()
        .iter()
        .map(|e| supports.get(e).copied().unwrap_or(0))
        .max()
        .expect("patterns have events")
}

/// Does `seq` support `pattern`? Backtracking search for a chronological
/// instance binding satisfying every triple and the duration constraint —
/// how IEMiner verifies candidates against the horizontal database.
pub(crate) fn sequence_supports(
    seq: &TemporalSequence,
    pattern: &Pattern,
    cfg: &MinerConfig,
) -> bool {
    let mut binding: Vec<usize> = Vec::with_capacity(pattern.len());
    backtrack_from(seq.instances(), pattern, cfg, &mut binding, 0)
}

fn backtrack_from(
    insts: &[ftpm_events::EventInstance],
    pattern: &Pattern,
    cfg: &MinerConfig,
    binding: &mut Vec<usize>,
    from: usize,
) -> bool {
    let pos = binding.len();
    if pos == pattern.len() {
        return true;
    }
    let want = pattern.events()[pos];
    for i in from..insts.len() {
        let x = &insts[i];
        if x.event != want {
            continue;
        }
        if let Some(&last) = binding.last() {
            if x.chrono_key() <= insts[last].chrono_key() {
                continue;
            }
        }
        // Duration constraint: the whole occurrence fits in t_max.
        if !binding.is_empty() {
            let first_start = insts[binding[0]].interval.start;
            let max_end = binding
                .iter()
                .map(|&b| insts[b].interval.end)
                .max()
                .expect("non-empty")
                .max(x.interval.end);
            if !cfg.relation.within_t_max(first_start, max_end) {
                continue;
            }
        }
        // All relations to already-bound instances must match.
        let ok = binding.iter().enumerate().all(|(j, &b)| {
            cfg.relation.relate(&insts[b].interval, &x.interval)
                == Some(pattern.relation_between(j, pos))
        });
        if !ok {
            continue;
        }
        binding.push(i);
        if backtrack_from(insts, pattern, cfg, binding, i + 1) {
            binding.pop();
            return true;
        }
        binding.pop();
    }
    false
}

/// Final assembly: apply σ and δ, compute measures, sort, and wrap in a
/// [`MiningResult`].
pub(crate) fn assemble(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    supports: &HashMap<EventId, usize>,
    counted: Vec<(Pattern, usize)>,
) -> MiningResult {
    let n = db.len();
    let sigma_abs = cfg.absolute_support(n);
    let mut patterns: Vec<FrequentPattern> = counted
        .into_iter()
        .filter(|(_, supp)| *supp >= sigma_abs)
        .filter_map(|(pattern, supp)| {
            let confidence = supp as f64 / max_event_support(&pattern, supports) as f64;
            if confidence + 1e-9 < cfg.delta {
                return None;
            }
            Some(FrequentPattern {
                pattern,
                support: supp,
                rel_support: supp as f64 / n.max(1) as f64,
                confidence,
                // Baselines count supporting sequences without binding
                // occurrence tuples, so no artifact measure is available
                // (they also always mine the clipped view).
                clipped_occurrences: 0,
            })
        })
        .collect();
    patterns.sort_by(|a, b| {
        (a.pattern.len(), a.pattern.events(), a.pattern.relations()).cmp(&(
            b.pattern.len(),
            b.pattern.events(),
            b.pattern.relations(),
        ))
    });
    let frequent_events = {
        let mut v: Vec<(EventId, usize)> = supports
            .iter()
            .filter(|(_, &s)| s >= sigma_abs)
            .map(|(&e, &s)| (e, s))
            .collect();
        v.sort_unstable();
        v
    };
    MiningResult {
        patterns,
        frequent_events,
        graph: Default::default(),
        stats: MiningStats::default(),
    }
}

/// The ordered relation column appended when a chronologically last
/// instance joins an existing binding; `None` if any pair has no relation.
pub(crate) fn relation_column(
    insts: &[ftpm_events::EventInstance],
    binding: &[u32],
    x: usize,
    cfg: &MinerConfig,
) -> Option<Vec<TemporalRelation>> {
    let xi = &insts[x];
    let mut rels = Vec::with_capacity(binding.len());
    for &b in binding {
        rels.push(cfg.relation.relate(&insts[b as usize].interval, &xi.interval)?);
    }
    Some(rels)
}
