//! H-DFS (Papapetrou, Kollios, Sclaroff & Gunopulos, KAIS 2009): hybrid
//! BFS/DFS mining of frequent arrangements of temporal intervals.
//!
//! H-DFS represents each event vertically as an **ID-list** — for every
//! sequence, the list of the event's instances — and produces
//! arrangements by *merging* ID-lists: a breadth-first pass joins every
//! pair of frequent events, then each frequent arrangement is extended
//! depth-first by merging its (fully materialized) occurrence list with
//! another event's ID-list. Every intermediate arrangement keeps its
//! complete occurrence list in memory, which is exactly why the paper
//! finds that H-DFS "does not scale well when the data size increases".
//! There is no bitmap prefilter, no confidence pruning and no
//! transitivity pruning; confidence is applied to the final output only.

use std::collections::{HashMap, HashSet};

use ftpm_core::{MinerConfig, MiningResult, Pattern};
use ftpm_events::{
    BoundaryKernel, BoundaryVisit, EventId, SequenceDatabase, TemporalRelation,
};

use crate::common::{assemble, event_supports, relation_column};

/// Per-group accumulator: supporting sequences + occurrence list.
type Accum = (HashSet<u32>, Vec<(u32, Vec<u32>)>);

/// One event's ID-list: per sequence, the indices of its instances.
struct IdList {
    event: EventId,
    /// `(sequence, instance indices)`, ascending by sequence.
    per_seq: Vec<(u32, Vec<u32>)>,
}

/// An arrangement (pattern) under construction with its materialized
/// occurrence list.
struct Arrangement {
    events: Vec<EventId>,
    relations: Vec<TemporalRelation>,
    /// `(sequence, bound instance indices)` — every occurrence.
    occurrences: Vec<(u32, Vec<u32>)>,
    support: usize,
}

/// Mines all frequent temporal patterns with H-DFS. Output is identical
/// to [`ftpm_core::mine_exact`].
pub fn mine_hdfs(db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
    // Monomorphization seam: fix the boundary kernel once per run.
    struct Run<'a> {
        db: &'a SequenceDatabase,
        cfg: &'a MinerConfig,
    }
    impl BoundaryVisit for Run<'_> {
        type Out = MiningResult;
        fn visit<K: BoundaryKernel>(self) -> MiningResult {
            mine_hdfs_k::<K>(self.db, self.cfg)
        }
    }
    cfg.relation.boundary.dispatch(Run { db, cfg })
}

/// [`mine_hdfs`], monomorphized over the boundary kernel.
fn mine_hdfs_k<K: BoundaryKernel>(db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
    let sigma_abs = cfg.absolute_support(db.len());
    let supports = event_supports::<K>(db);

    // Vertical transformation: build an ID-list per frequent event.
    let mut id_lists: Vec<IdList> = Vec::new();
    {
        let mut events: Vec<EventId> = supports
            .iter()
            .filter(|(_, &s)| s >= sigma_abs)
            .map(|(&e, _)| e)
            .collect();
        events.sort_unstable();
        for e in events {
            let mut per_seq = Vec::new();
            for (si, seq) in db.sequences().iter().enumerate() {
                // The boundary policy filters the vertical view up front:
                // instances it discards never enter an ID-list.
                let insts: Vec<u32> = seq
                    .instances_of(e)
                    .filter(|&i| K::interval(&seq.instances()[i]).is_some())
                    .map(|i| i as u32)
                    .collect();
                if !insts.is_empty() {
                    per_seq.push((si as u32, insts));
                }
            }
            id_lists.push(IdList { event: e, per_seq });
        }
    }

    let mut counted: Vec<(Pattern, usize)> = Vec::new();

    // BFS step: merge every ordered pair of ID-lists into 2-event
    // arrangements.
    let mut stack: Vec<Arrangement> = Vec::new();
    for a in &id_lists {
        for b in &id_lists {
            for arr in merge_pair::<K>(db, cfg, a, b, sigma_abs) {
                counted.push((
                    Pattern::new(arr.events.clone(), arr.relations.clone()),
                    arr.support,
                ));
                stack.push(arr);
            }
        }
    }

    // DFS step: extend each arrangement by merging with every ID-list.
    while let Some(arr) = stack.pop() {
        if arr.events.len() >= cfg.max_events {
            continue;
        }
        for idl in &id_lists {
            for ext in merge_extend::<K>(db, cfg, &arr, idl, sigma_abs) {
                counted.push((
                    Pattern::new(ext.events.clone(), ext.relations.clone()),
                    ext.support,
                ));
                stack.push(ext);
            }
        }
    }

    assemble(db, cfg, &supports, counted)
}

/// Merge-join two ID-lists over their common sequences, producing one
/// arrangement per frequent relation.
fn merge_pair<K: BoundaryKernel>(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    a: &IdList,
    b: &IdList,
    sigma_abs: usize,
) -> Vec<Arrangement> {
    let mut per_rel: HashMap<TemporalRelation, Accum> = HashMap::new();
    let (mut i, mut j) = (0, 0);
    while i < a.per_seq.len() && j < b.per_seq.len() {
        let (sa, ia) = &a.per_seq[i];
        let (sb, ib) = &b.per_seq[j];
        match sa.cmp(sb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let insts = db.sequences()[*sa as usize].instances();
                let rel = &cfg.relation;
                for &x in ia {
                    for &y in ib {
                        let (fx, fy) = (&insts[x as usize], &insts[y as usize]);
                        // ID-list members passed the boundary policy.
                        // lint: allow(panic, structural invariant: id-list members passed the boundary policy)
                        let fx_iv = K::interval(fx).expect("in id-list");
                        // lint: allow(panic, structural invariant: id-list members passed the boundary policy)
                        let fy_iv = K::interval(fy).expect("in id-list");
                        if K::key(fx) >= K::key(fy) {
                            continue; // the opposite order is the pair (b, a)
                        }
                        let max_end = fx_iv.end.max(fy_iv.end);
                        if !rel.within_t_max(fx_iv.start, max_end) {
                            continue;
                        }
                        if let Some(r) = rel.relate(&fx_iv, &fy_iv) {
                            let entry = per_rel.entry(r).or_default();
                            entry.0.insert(*sa);
                            entry.1.push((*sa, vec![x, y]));
                        }
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    per_rel
        .into_iter()
        .filter(|(_, (seqs, _))| seqs.len() >= sigma_abs)
        .map(|(r, (seqs, occurrences))| Arrangement {
            events: vec![a.event, b.event],
            relations: vec![r],
            support: seqs.len(),
            occurrences,
        })
        .collect()
}

/// Merge an arrangement's occurrence list with an event's ID-list,
/// producing one extended arrangement per frequent relation column.
fn merge_extend<K: BoundaryKernel>(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    arr: &Arrangement,
    idl: &IdList,
    sigma_abs: usize,
) -> Vec<Arrangement> {
    let mut per_col: HashMap<Vec<TemporalRelation>, Accum> = HashMap::new();
    // The ID-list is sorted by sequence; look it up per occurrence.
    let by_seq: HashMap<u32, &Vec<u32>> =
        idl.per_seq.iter().map(|(s, v)| (*s, v)).collect();
    for (si, binding) in &arr.occurrences {
        let Some(candidates) = by_seq.get(si) else {
            continue;
        };
        let insts = db.sequences()[*si as usize].instances();
        let rel = &cfg.relation;
        // Bound and candidate instances all passed the boundary policy.
        let bound_iv = |b: u32| {
            K::interval(&insts[b as usize])
                // lint: allow(panic, structural invariant: binding members passed the boundary policy on entry)
                .expect("bound instances pass the boundary policy")
        };
        // lint: allow(panic, structural invariant: the binding is non-empty on this path)
        let last_key = K::key(&insts[*binding.last().expect("non-empty") as usize]);
        let first_start = bound_iv(binding[0]).start;
        let max_end = binding
            .iter()
            .map(|&b| bound_iv(b).end)
            .max()
            // lint: allow(panic, structural invariant: the binding is non-empty on this path)
            .expect("non-empty");
        for &xi in *candidates {
            let x = &insts[xi as usize];
            // lint: allow(panic, structural invariant: id-list members passed the boundary policy)
            let x_iv = K::interval(x).expect("in id-list");
            if K::key(x) <= last_key {
                continue;
            }
            if !rel.within_t_max(first_start, max_end.max(x_iv.end)) {
                continue;
            }
            let Some(rels) = relation_column::<K>(insts, binding, xi as usize, cfg) else {
                continue;
            };
            let entry = per_col.entry(rels).or_default();
            entry.0.insert(*si);
            let mut nb = binding.clone();
            nb.push(xi);
            entry.1.push((*si, nb));
        }
    }
    per_col
        .into_iter()
        .filter(|(_, (seqs, _))| seqs.len() >= sigma_abs)
        .map(|(col, (seqs, occurrences))| {
            let mut events = arr.events.clone();
            events.push(idl.event);
            let mut relations = arr.relations.clone();
            relations.extend_from_slice(&col);
            Arrangement {
                events,
                relations,
                support: seqs.len(),
                occurrences,
            }
        })
        .collect()
}
