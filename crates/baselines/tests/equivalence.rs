//! Every baseline must produce exactly the same pattern set, supports and
//! confidences as E-HTPGM — the property that makes the paper's runtime
//! comparison meaningful ("both E-HTPGM and the baselines provide the
//! same exact solutions", Section VI-A3).

use std::collections::HashMap;

use ftpm_baselines::{mine_hdfs, mine_ieminer, mine_tpminer};
use ftpm_core::{mine_exact, MinerConfig, MiningResult, Pattern};
use ftpm_datagen::random_sequence_database;

fn as_map(result: &MiningResult) -> HashMap<Pattern, (usize, f64)> {
    result
        .patterns
        .iter()
        .map(|p| (p.pattern.clone(), (p.support, p.confidence)))
        .collect()
}

fn assert_equivalent(exact: &MiningResult, other: &MiningResult, who: &str) {
    let me = as_map(exact);
    let mo = as_map(other);
    for (pat, (supp, conf)) in &me {
        match mo.get(pat) {
            None => panic!("{who}: missing pattern {pat:?}"),
            Some((s, c)) => {
                assert_eq!(supp, s, "{who}: support mismatch on {pat:?}");
                assert!((conf - c).abs() < 1e-9, "{who}: confidence mismatch on {pat:?}");
            }
        }
    }
    assert_eq!(
        me.len(),
        mo.len(),
        "{who}: found {} patterns, exact found {}",
        mo.len(),
        me.len()
    );
}

#[test]
fn baselines_match_exact_on_random_databases() {
    for seed in 0..12u64 {
        let db = random_sequence_database(seed, 6, 3, 2, 40);
        for &(sigma, delta) in &[(0.3, 0.3), (0.5, 0.6)] {
            let cfg = MinerConfig::new(sigma, delta).with_max_events(4);
            let exact = mine_exact(&db, &cfg);
            assert_equivalent(&exact, &mine_tpminer(&db, &cfg), "tpminer");
            assert_equivalent(&exact, &mine_hdfs(&db, &cfg), "hdfs");
            assert_equivalent(&exact, &mine_ieminer(&db, &cfg), "ieminer");
        }
    }
}

#[test]
fn baselines_match_exact_on_structured_data() {
    let data = ftpm_datagen::dataport_like(0.01);
    let cfg = MinerConfig::new(0.4, 0.4).with_max_events(3);
    let exact = mine_exact(&data.seq, &cfg);
    assert!(!exact.is_empty(), "structured data should yield patterns");
    assert_equivalent(&exact, &mine_tpminer(&data.seq, &cfg), "tpminer");
    assert_equivalent(&exact, &mine_hdfs(&data.seq, &cfg), "hdfs");
    assert_equivalent(&exact, &mine_ieminer(&data.seq, &cfg), "ieminer");
}

#[test]
fn baselines_match_exact_with_buffered_relations() {
    use ftpm_events::RelationConfig;
    let relation = RelationConfig::new(2, 3, 30);
    for seed in 50..56u64 {
        let db = random_sequence_database(seed, 5, 3, 2, 40);
        let cfg = MinerConfig::new(0.3, 0.3)
            .with_relation(relation)
            .with_max_events(3);
        let exact = mine_exact(&db, &cfg);
        assert_equivalent(&exact, &mine_tpminer(&db, &cfg), "tpminer");
        assert_equivalent(&exact, &mine_hdfs(&db, &cfg), "hdfs");
        assert_equivalent(&exact, &mine_ieminer(&db, &cfg), "ieminer");
    }
}

#[test]
fn empty_database_yields_no_patterns() {
    let db = random_sequence_database(1, 0, 2, 2, 20);
    let cfg = MinerConfig::new(0.5, 0.5).with_max_events(3);
    assert!(mine_tpminer(&db, &cfg).is_empty());
    assert!(mine_hdfs(&db, &cfg).is_empty());
    assert!(mine_ieminer(&db, &cfg).is_empty());
}
