//! Every baseline must produce exactly the same pattern set, supports and
//! confidences as E-HTPGM — the property that makes the paper's runtime
//! comparison meaningful ("both E-HTPGM and the baselines provide the
//! same exact solutions", Section VI-A3).

use std::collections::HashMap;

use ftpm_baselines::{mine_hdfs, mine_ieminer, mine_tpminer};
use ftpm_core::{mine_exact, MinerConfig, MiningResult, Pattern};
use ftpm_datagen::random_sequence_database;

fn as_map(result: &MiningResult) -> HashMap<Pattern, (usize, f64)> {
    result
        .patterns
        .iter()
        .map(|p| (p.pattern.clone(), (p.support, p.confidence)))
        .collect()
}

fn assert_equivalent(exact: &MiningResult, other: &MiningResult, who: &str) {
    let me = as_map(exact);
    let mo = as_map(other);
    for (pat, (supp, conf)) in &me {
        match mo.get(pat) {
            None => panic!("{who}: missing pattern {pat:?}"),
            Some((s, c)) => {
                assert_eq!(supp, s, "{who}: support mismatch on {pat:?}");
                assert!((conf - c).abs() < 1e-9, "{who}: confidence mismatch on {pat:?}");
            }
        }
    }
    assert_eq!(
        me.len(),
        mo.len(),
        "{who}: found {} patterns, exact found {}",
        mo.len(),
        me.len()
    );
}

#[test]
fn baselines_match_exact_on_random_databases() {
    for seed in 0..12u64 {
        let db = random_sequence_database(seed, 6, 3, 2, 40);
        for &(sigma, delta) in &[(0.3, 0.3), (0.5, 0.6)] {
            let cfg = MinerConfig::new(sigma, delta).with_max_events(4);
            let exact = mine_exact(&db, &cfg);
            assert_equivalent(&exact, &mine_tpminer(&db, &cfg), "tpminer");
            assert_equivalent(&exact, &mine_hdfs(&db, &cfg), "hdfs");
            assert_equivalent(&exact, &mine_ieminer(&db, &cfg), "ieminer");
        }
    }
}

#[test]
fn baselines_match_exact_on_structured_data() {
    let data = ftpm_datagen::dataport_like(0.01);
    let cfg = MinerConfig::new(0.4, 0.4).with_max_events(3);
    let exact = mine_exact(&data.seq, &cfg);
    assert!(!exact.is_empty(), "structured data should yield patterns");
    assert_equivalent(&exact, &mine_tpminer(&data.seq, &cfg), "tpminer");
    assert_equivalent(&exact, &mine_hdfs(&data.seq, &cfg), "hdfs");
    assert_equivalent(&exact, &mine_ieminer(&data.seq, &cfg), "ieminer");
}

#[test]
fn baselines_match_exact_with_buffered_relations() {
    use ftpm_events::RelationConfig;
    let relation = RelationConfig::new(2, 3, 30);
    for seed in 50..56u64 {
        let db = random_sequence_database(seed, 5, 3, 2, 40);
        let cfg = MinerConfig::new(0.3, 0.3)
            .with_relation(relation)
            .with_max_events(3);
        let exact = mine_exact(&db, &cfg);
        assert_equivalent(&exact, &mine_tpminer(&db, &cfg), "tpminer");
        assert_equivalent(&exact, &mine_hdfs(&db, &cfg), "hdfs");
        assert_equivalent(&exact, &mine_ieminer(&db, &cfg), "ieminer");
    }
}

#[test]
fn empty_database_yields_no_patterns() {
    let db = random_sequence_database(1, 0, 2, 2, 20);
    let cfg = MinerConfig::new(0.5, 0.5).with_max_events(3);
    assert!(mine_tpminer(&db, &cfg).is_empty());
    assert!(mine_hdfs(&db, &cfg).is_empty());
    assert!(mine_ieminer(&db, &cfg).is_empty());
}

/// The baselines must honor the boundary policy — historically they
/// silently mined the clipped view whatever `RelationConfig.boundary`
/// said. Cross-validate every policy on a database whose runs really
/// cross window boundaries, against the brute-force reference oracle.
#[test]
fn baselines_honor_boundary_policies() {
    use ftpm_core::mine_reference;
    use ftpm_events::{BoundaryPolicy, RelationConfig};

    // An overlapped split of a small energy demo: plenty of clipped
    // instances, and TrueExtent genuinely differs from Clip.
    let data = ftpm_datagen::dataport_like(0.01).project_variables(4);
    let clipped_total: usize = data
        .seq
        .sequences()
        .iter()
        .flat_map(|s| s.instances())
        .filter(|i| i.is_clipped())
        .count();
    assert!(clipped_total > 0, "need boundary-clipped instances");

    let mut distinct_sets = 0usize;
    let mut previous: Option<usize> = None;
    for policy in [
        BoundaryPolicy::Clip,
        BoundaryPolicy::TrueExtent,
        BoundaryPolicy::Discard,
    ] {
        let cfg = MinerConfig::new(0.4, 0.4)
            .with_max_events(3)
            .with_relation(RelationConfig::new(0, 1, 360).with_boundary(policy));
        let reference = mine_reference(&data.seq, &cfg);
        let who = |name: &str| format!("{name}[{policy}]");
        assert_equivalent(&reference, &mine_tpminer(&data.seq, &cfg), &who("tpminer"));
        assert_equivalent(&reference, &mine_hdfs(&data.seq, &cfg), &who("hdfs"));
        assert_equivalent(&reference, &mine_ieminer(&data.seq, &cfg), &who("ieminer"));
        // The exact miner agrees too, closing the loop.
        assert_equivalent(&reference, &mine_exact(&data.seq, &cfg), &who("exact"));
        if previous != Some(reference.len()) {
            distinct_sets += 1;
        }
        previous = Some(reference.len());
    }
    assert!(
        distinct_sets >= 2,
        "policies should actually change the mined set on clipped data"
    );
}
