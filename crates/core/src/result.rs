use std::collections::HashSet;

use ftpm_events::{EventId, EventRegistry};
use serde::{Deserialize, Serialize};

use crate::hpg::HierarchicalPatternGraph;
use crate::pattern::Pattern;

/// A mined frequent temporal pattern together with its measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequentPattern {
    /// The pattern itself.
    pub pattern: Pattern,
    /// Absolute support `supp(P)` (Def 3.14): number of supporting
    /// sequences.
    pub support: usize,
    /// Relative support `supp(P)/|D_SEQ|` (Eq. 4).
    pub rel_support: f64,
    /// Confidence (Def 3.16): `supp(P) / max_k supp(E_k)`.
    pub confidence: f64,
    /// How many of the pattern's bound occurrences include at least one
    /// instance clipped at a window boundary — occurrences that may be
    /// boundary artifacts under [`ftpm_events::BoundaryPolicy::Clip`]
    /// (always 0 under `Discard`; under `TrueExtent` the count is real
    /// occurrences that happen to touch a cut). Reported by the HPG
    /// miners; 0 for producers that do not bind occurrences (the
    /// baseline miners).
    pub clipped_occurrences: usize,
}

/// Counters describing one mining run — used by the ablation experiments
/// (Figs 6–7) to show *why* a pruning configuration is faster.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MiningStats {
    /// Nodes whose instances were actually verified, per level (index 0 is
    /// level 2).
    pub nodes_verified: Vec<usize>,
    /// Nodes that ended up with at least one frequent pattern, per level.
    pub nodes_kept: Vec<usize>,
    /// Frequent patterns found, per level.
    pub patterns_found: Vec<usize>,
    /// Instance pairs / extension candidates examined.
    pub instance_checks: u64,
    /// Candidate event combinations discarded by Apriori pruning
    /// (Lemmas 2–3) before instance verification.
    pub apriori_pruned: u64,
    /// Extension candidates discarded by the transitivity / L2 lookup
    /// (Lemmas 4–7).
    pub transitivity_pruned: u64,
    /// Instances of the mined database whose run was clipped at a window
    /// boundary by the split (either side).
    pub clipped_instances: u64,
    /// Clipped instances dropped outright because the run used
    /// [`ftpm_events::BoundaryPolicy::Discard`] (0 under the other
    /// policies).
    pub discarded_instances: u64,
}

/// The output of a mining run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MiningResult {
    /// All frequent temporal patterns (`|P| ≥ 2` events), in discovery
    /// order (level by level).
    pub patterns: Vec<FrequentPattern>,
    /// The frequent single events of L1 and their supports.
    pub frequent_events: Vec<(EventId, usize)>,
    /// Summary of the Hierarchical Pattern Graph that was built.
    pub graph: HierarchicalPatternGraph,
    /// Run counters.
    pub stats: MiningStats,
}

impl MiningResult {
    /// The set of pattern identities, for accuracy comparisons between
    /// miners (Table IX: accuracy of A-HTPGM = fraction of E-HTPGM's
    /// patterns that A-HTPGM also finds). Borrows the patterns in place —
    /// building the set clones nothing.
    pub fn pattern_keys(&self) -> HashSet<&Pattern> {
        self.patterns.iter().map(|p| &p.pattern).collect()
    }

    /// Number of frequent patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True iff no pattern was found.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Fraction of `other`'s patterns that this result also contains —
    /// `accuracy(self vs other)` in the Table IX sense. Returns 1.0 when
    /// `other` is empty.
    pub fn accuracy_against(&self, other: &MiningResult) -> f64 {
        if other.patterns.is_empty() {
            return 1.0;
        }
        let mine = self.pattern_keys();
        let found = other
            .patterns
            .iter()
            .filter(|p| mine.contains(&p.pattern))
            .count();
        found as f64 / other.patterns.len() as f64
    }

    /// Renders all patterns as human-readable lines.
    pub fn render(&self, registry: &EventRegistry) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for fp in &self.patterns {
            // lint: allow(write_discard, fmt::Write to String is infallible)
            let _ = writeln!(
                out,
                "{}  [supp={} ({:.0}%), conf={:.0}%]",
                fp.pattern.display(registry),
                fp.support,
                fp.rel_support * 100.0,
                fp.confidence * 100.0,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpm_events::TemporalRelation;

    fn fp(e1: u32, e2: u32, support: usize) -> FrequentPattern {
        FrequentPattern {
            pattern: Pattern::pair(EventId(e1), TemporalRelation::Follow, EventId(e2)),
            support,
            rel_support: support as f64 / 4.0,
            confidence: 0.8,
            clipped_occurrences: 0,
        }
    }

    fn result(patterns: Vec<FrequentPattern>) -> MiningResult {
        MiningResult {
            patterns,
            frequent_events: vec![],
            graph: HierarchicalPatternGraph::default(),
            stats: MiningStats::default(),
        }
    }

    #[test]
    fn accuracy_full_and_partial() {
        let exact = result(vec![fp(0, 1, 3), fp(1, 2, 3), fp(2, 3, 3), fp(3, 4, 3)]);
        let approx = result(vec![fp(0, 1, 3), fp(2, 3, 3)]);
        assert_eq!(approx.accuracy_against(&exact), 0.5);
        assert_eq!(exact.accuracy_against(&exact), 1.0);
    }

    #[test]
    fn accuracy_against_empty_is_one() {
        let empty = result(vec![]);
        let some = result(vec![fp(0, 1, 2)]);
        assert_eq!(some.accuracy_against(&empty), 1.0);
        assert_eq!(empty.accuracy_against(&some), 0.0);
    }
}
