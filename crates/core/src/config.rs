use ftpm_events::RelationConfig;
use serde::{Deserialize, Serialize};

/// Which pruning techniques of E-HTPGM are active — the knobs behind the
/// paper's Fig 6/7 ablation ((NoPrune)/(Apriori)/(Trans)/(All)-E-HTPGM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruningConfig {
    /// Apriori-based pruning (Lemmas 2–3): discard candidate event
    /// combinations whose joint-bitmap support or confidence upper bound
    /// already misses `σ`/`δ`, before any instance-level verification.
    pub apriori: bool,
    /// Transitivity-based pruning (Lemmas 4–7): restrict the single events
    /// used to grow level `k` to those participating in a frequent pattern
    /// at level `k−1` (Lemma 5), and stop extending an occurrence as soon
    /// as one of its new triples is not a frequent 2-event pattern
    /// (Lemmas 4, 6, 7).
    pub transitivity: bool,
}

impl PruningConfig {
    /// No pruning at all — `(NoPrune)-E-HTPGM`. Level-wise candidate
    /// generation itself is kept (the search would otherwise be unbounded)
    /// but every candidate is verified on instances.
    pub const NO_PRUNE: PruningConfig = PruningConfig {
        apriori: false,
        transitivity: false,
    };
    /// Apriori pruning only — `(Apriori)-E-HTPGM`.
    pub const APRIORI: PruningConfig = PruningConfig {
        apriori: true,
        transitivity: false,
    };
    /// Transitivity pruning only — `(Trans)-E-HTPGM`.
    pub const TRANSITIVITY: PruningConfig = PruningConfig {
        apriori: false,
        transitivity: true,
    };
    /// Both groups — `(All)-E-HTPGM`, the default.
    pub const ALL: PruningConfig = PruningConfig {
        apriori: true,
        transitivity: true,
    };
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig::ALL
    }
}

/// Mining parameters: the FTPMfTS problem is to find every pattern `P`
/// with `supp(P) ≥ σ ∧ conf(P) ≥ δ` (Section III-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinerConfig {
    /// Relative support threshold `σ ∈ (0, 1]`.
    pub sigma: f64,
    /// Confidence threshold `δ ∈ (0, 1]`.
    pub delta: f64,
    /// Relation model parameters (`ε`, `d_o`, `t_max`).
    pub relation: RelationConfig,
    /// Upper bound on pattern length (number of events). The miner stops
    /// on its own once a level yields no frequent patterns; this cap is a
    /// safety valve for pathological inputs. `usize::MAX` by default.
    pub max_events: usize,
    /// Pruning ablation switches.
    pub pruning: PruningConfig,
}

impl MinerConfig {
    /// Creates a config with default relation model and all prunings on.
    ///
    /// # Panics
    ///
    /// Panics unless `σ, δ ∈ (0, 1]`.
    pub fn new(sigma: f64, delta: f64) -> Self {
        // lint: allow(panic, documented # Panics contract: Def 3.15/3.16 threshold domains)
        assert!(sigma > 0.0 && sigma <= 1.0, "sigma must be in (0, 1]");
        // lint: allow(panic, documented # Panics contract: Def 3.15/3.16 threshold domains)
        assert!(delta > 0.0 && delta <= 1.0, "delta must be in (0, 1]");
        MinerConfig {
            sigma,
            delta,
            relation: RelationConfig::default(),
            max_events: usize::MAX,
            pruning: PruningConfig::default(),
        }
    }

    /// Replaces the relation model.
    pub fn with_relation(mut self, relation: RelationConfig) -> Self {
        self.relation = relation;
        self
    }

    /// Caps the pattern length.
    ///
    /// # Panics
    ///
    /// Panics unless `max_events >= 2` (patterns have at least two events).
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        // lint: allow(panic, documented # Panics contract: pattern length floor)
        assert!(max_events >= 2, "patterns have at least two events");
        self.max_events = max_events;
        self
    }

    /// Replaces the pruning switches.
    pub fn with_pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// Absolute support threshold for a database of `n` sequences:
    /// `⌈σ·n⌉`, at least 1.
    pub fn absolute_support(&self, n_sequences: usize) -> usize {
        ((self.sigma * n_sequences as f64).ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_support_rounds_up() {
        let cfg = MinerConfig::new(0.5, 0.5);
        assert_eq!(cfg.absolute_support(5), 3);
        assert_eq!(cfg.absolute_support(4), 2);
        assert_eq!(cfg.absolute_support(0), 1);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn zero_sigma_rejected() {
        let _ = MinerConfig::new(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "at least two events")]
    fn max_events_one_rejected() {
        let _ = MinerConfig::new(0.5, 0.5).with_max_events(1);
    }

    #[test]
    fn pruning_presets() {
        let all = PruningConfig::ALL;
        let none = PruningConfig::NO_PRUNE;
        assert!(all.apriori && all.transitivity);
        assert!(!none.apriori && !none.transitivity);
        assert_eq!(PruningConfig::default(), all);
    }
}
