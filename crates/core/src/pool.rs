//! Hash-consed pattern pool: the Hierarchical Pattern Graph spine as a
//! struct-of-arrays arena.
//!
//! Every layer above the candidate engine used to key on the full
//! [`Pattern`] — two heap `Vec`s per value — so the merge accumulator,
//! the exchange coordinator's proposal/survivor maps and the result
//! surfaces cloned and re-hashed entire event/relation vectors millions
//! of times per run. [`PatternPool`] interns each pattern exactly once
//! and hands out a dense [`PatternId`] (a `u32`): equality is integer
//! equality, hashing is integer hashing, and a pattern on the wire or in
//! a map costs four bytes.
//!
//! The encoding exploits the documented layout invariant of
//! [`Pattern`]: extending a (k−1)-pattern appends exactly one event and
//! one relation column of k−1 entries (the relations of the new event to
//! every earlier one). A level-k entry therefore stores only its *delta*
//! against the parent entry:
//!
//! ```text
//!   parents:    [NONE, NONE, 0,    2,    ...]   parent entry (NONE = level-1 root)
//!   lasts:      [A,    B,    B,    C,    ...]   the appended event
//!   depths:     [1,    1,    2,    3,    ...]   event count of the full pattern
//!   rel_starts: [0,    0,    0,    1,    3 ...] delta column offsets into `rels`
//!   rels:       [ →,   →, o, ...]               flat relation columns (k−1 per entry)
//! ```
//!
//! Following the `parents` chain from any id back to its root replays
//! the pattern's growth history — the pool *is* the HPG spine, and
//! `parent(id)` answers "immediate prefix" in O(1) where the
//! postprocessor used to allocate a fresh prefix `Pattern` per lookup.
//!
//! Interning is hash-consed with an FNV-1a open-addressing table (ids
//! plus one, zero = empty, power-of-two capacity): interning the same
//! `(parent, last, delta)` twice yields the same id, so dedup across
//! shards is a table probe, not a deep comparison. Level-1 roots are
//! pre-interned in registry order by [`PatternPool::with_roots`], making
//! `root(e) == PatternId(e.0)` — the property the exchange executor
//! leans on when it forms [`DeltaKey`]s from raw event ids.
//!
//! [`PoolView`] layers a shard-local delta pool over a shared read-only
//! base (the jyafn `SymbolsView` idiom): a shard can intern new entries
//! without coordinator round-trips, and the coordinator later absorbs
//! the delta, translating shard-local ids to master ids in one pass.
//! That translation is the seam the ROADMAP's distributed-shard item
//! will put on the wire.

use ftpm_events::{EventId, TemporalRelation};

use crate::pattern::Pattern;

/// Dense identity of an interned pattern. Equality, ordering and hashing
/// are plain `u32` operations; resolution back to events/relations goes
/// through the [`PatternPool`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId(pub u32);

impl PatternId {
    /// Sentinel for "no pattern": the parent of a level-1 root, or a
    /// work item that has not been assigned a pool identity yet.
    pub const NONE: PatternId = PatternId(u32::MAX);

    /// True when this id is the [`PatternId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

/// Canonical identity of a *candidate* pattern before it is interned:
/// the parent's pool id, the appended event, and the delta relation
/// column packed two bits per entry (see [`pack_relation`]). Sixteen
/// bytes, `Copy`, and injective for patterns grown from interned parents
/// — the exchange executor keys its cross-shard proposal maps on this
/// instead of cloning whole patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeltaKey {
    /// Pool id of the (k−1)-event parent pattern.
    pub parent: PatternId,
    /// The appended k-th event.
    pub last: EventId,
    /// The k−1 new relations, packed via [`pack_relation`].
    pub code: u64,
}

/// Packs a relation column into 2 bits per entry (values 1..=3 so the
/// packing is injective for a fixed length). Shared by the candidate
/// engine's grouping keys and the pool's [`DeltaKey`]s.
#[inline]
pub(crate) fn pack_relation(code: u64, r: TemporalRelation) -> u64 {
    (code << 2) | (r.index() as u64 + 1)
}

/// Reverses [`pack_relation`] for a column of `len` relations.
pub(crate) fn decode_column(mut code: u64, len: usize) -> Vec<TemporalRelation> {
    let mut rels = vec![TemporalRelation::Follow; len];
    for slot in rels.iter_mut().rev() {
        *slot = TemporalRelation::ALL[(code & 3) as usize - 1];
        code >>= 2;
    }
    rels
}

/// FNV-1a, the workspace's hash for small fixed-width keys: no
/// per-process seeding (ids must be stable within a run across threads
/// reading the same pool) and no allocation.
pub(crate) struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(FNV_OFFSET)
    }
}

impl std::hash::Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// `HashMap`/`HashSet` with FNV hashing — the right table for the
/// executor's `DeltaKey`- and `PatternId`-keyed maps, where SipHash's
/// DoS resistance buys nothing and its latency is measurable.
pub(crate) type FnvBuild = std::hash::BuildHasherDefault<FnvHasher>;
pub(crate) type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuild>;

/// FNV-1a over an entry's identity triple. Roots hash as
/// `(NONE, event, empty delta)`.
#[inline]
fn hash_entry(parent: PatternId, last: EventId, delta: &[TemporalRelation]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |v: u32| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(parent.0);
    mix(last.0);
    for &r in delta {
        h ^= r.index() as u64 + 1;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash-consed, struct-of-arrays pattern arena (see the module docs for
/// the layout). All columns are indexed by `PatternId.0`; the open
/// addressing table maps entry hashes back to ids so interning an
/// already-known pattern allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct PatternPool {
    /// Parent entry per id; [`PatternId::NONE`] marks a level-1 root.
    parents: Vec<PatternId>,
    /// The appended (last) event per id.
    lasts: Vec<EventId>,
    /// Event count of the full pattern per id.
    depths: Vec<u32>,
    /// Offsets into `rels`: entry `i`'s delta column is
    /// `rels[rel_starts[i] as usize..rel_starts[i + 1] as usize]`.
    rel_starts: Vec<u32>,
    /// Flat delta relation columns, concatenated in intern order.
    rels: Vec<TemporalRelation>,
    /// Stored entry hashes, so growing `table` never re-reads columns.
    hashes: Vec<u64>,
    /// Open-addressing table of `id + 1` (0 = empty); capacity is a
    /// power of two, grown at 7/8 load.
    table: Vec<u32>,
    /// How many leading entries are pre-interned level-1 roots.
    n_roots: u32,
}

impl PatternPool {
    /// An empty pool with `n_events` pre-interned level-1 roots, one per
    /// registry event in id order — so `root(EventId(e)) == PatternId(e)`
    /// and raw event ids double as root pattern ids.
    pub fn with_roots(n_events: usize) -> PatternPool {
        let mut pool = PatternPool {
            rel_starts: vec![0],
            ..PatternPool::default()
        };
        for e in 0..n_events {
            pool.intern_raw(PatternId::NONE, EventId(e as u32), &[]);
        }
        pool.n_roots = n_events as u32;
        pool
    }

    /// Number of interned entries (roots included).
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True when the pool holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Number of pre-interned level-1 roots.
    pub fn n_roots(&self) -> usize {
        self.n_roots as usize
    }

    /// The root id of a registry event.
    ///
    /// # Panics
    ///
    /// Panics if `event` was not covered by [`PatternPool::with_roots`].
    #[inline]
    pub fn root(&self, event: EventId) -> PatternId {
        // lint: allow(panic, documented # Panics contract: event outside the root range)
        assert!(event.0 < self.n_roots, "event {} has no root in this pool", event.0);
        PatternId(event.0)
    }

    /// Parent (immediate prefix) of `id`, or [`PatternId::NONE`] for a
    /// level-1 root.
    #[inline]
    pub fn parent(&self, id: PatternId) -> PatternId {
        self.parents[id.0 as usize]
    }

    /// The appended (last) event of `id`.
    #[inline]
    pub fn last_event(&self, id: PatternId) -> EventId {
        self.lasts[id.0 as usize]
    }

    /// Event count of the full pattern behind `id`.
    #[inline]
    pub fn event_count(&self, id: PatternId) -> usize {
        self.depths[id.0 as usize] as usize
    }

    /// The delta relation column of `id` (empty for roots): the
    /// relations of the last event to each earlier event, in event
    /// order.
    #[inline]
    pub fn delta_rels(&self, id: PatternId) -> &[TemporalRelation] {
        let i = id.0 as usize;
        &self.rels[self.rel_starts[i] as usize..self.rel_starts[i + 1] as usize]
    }

    /// The pattern's events, yielded last-to-first by walking the parent
    /// chain — no allocation, order-insensitive consumers (support
    /// maxima, label lookups) iterate this directly.
    pub fn events_rev(&self, id: PatternId) -> EventsRev<'_> {
        EventsRev { pool: self, at: id }
    }

    /// Looks up `(parent, last, delta)` without interning.
    pub fn lookup_child(
        &self,
        parent: PatternId,
        last: EventId,
        delta: &[TemporalRelation],
    ) -> Option<PatternId> {
        if self.table.is_empty() {
            return None;
        }
        let hash = hash_entry(parent, last, delta);
        let mask = self.table.len() - 1;
        let mut at = hash as usize & mask;
        loop {
            let slot = self.table[at];
            if slot == 0 {
                return None;
            }
            let id = slot - 1;
            if self.hashes[id as usize] == hash && self.entry_matches(id, parent, last, delta) {
                return Some(PatternId(id));
            }
            at = (at + 1) & mask;
        }
    }

    /// Interns the child of `parent` obtained by appending `last` with
    /// relation column `delta` (one relation per event of `parent`, in
    /// event order). Returns the existing id when the entry is already
    /// pooled — the hash-consing guarantee.
    pub fn intern_child(
        &mut self,
        parent: PatternId,
        last: EventId,
        delta: &[TemporalRelation],
    ) -> PatternId {
        debug_assert_eq!(
            delta.len(),
            self.event_count(parent),
            "delta column length must equal the parent's event count"
        );
        self.intern_raw(parent, last, delta)
    }

    /// [`PatternPool::intern_child`] with the delta column packed two
    /// bits per relation (see [`pack_relation`]) — the form candidates
    /// already carry as their grouping key, so the exchange gate interns
    /// survivors without touching a relation slice.
    pub fn intern_packed(&mut self, key: DeltaKey) -> PatternId {
        let len = self.event_count(key.parent);
        let mut buf = [TemporalRelation::Follow; 32];
        let mut code = key.code;
        for slot in buf[..len].iter_mut().rev() {
            *slot = TemporalRelation::ALL[(code & 3) as usize - 1];
            code >>= 2;
        }
        self.intern_raw(key.parent, key.last, &buf[..len])
    }

    /// Interns a fully materialized pattern, level by level, returning
    /// the id of the complete pattern. Bit-identical round-trip:
    /// `resolve(intern(&p)) == p`.
    ///
    /// # Panics
    ///
    /// Panics if an event of `pattern` has no pre-interned root.
    pub fn intern(&mut self, pattern: &Pattern) -> PatternId {
        let events = pattern.events();
        let relations = pattern.relations();
        let mut id = self.root(events[0]);
        for k in 2..=events.len() {
            let lo = (k - 1) * (k - 2) / 2;
            let hi = k * (k - 1) / 2;
            id = self.intern_raw(id, events[k - 1], &relations[lo..hi]);
        }
        id
    }

    /// Interns `pattern` with every event translated through `map`
    /// (index = foreign event id, value = this pool's event id) — the
    /// shard-merge seam: a shard's emission interns straight into the
    /// master pool under the master registry's ids, no intermediate
    /// `Pattern` allocation.
    ///
    /// # Panics
    ///
    /// Panics if `map` does not cover an event of `pattern`, or a mapped
    /// event has no root.
    pub fn intern_mapped(&mut self, pattern: &Pattern, map: &[EventId]) -> PatternId {
        let events = pattern.events();
        let relations = pattern.relations();
        let mut id = self.root(map[events[0].0 as usize]);
        for k in 2..=events.len() {
            let lo = (k - 1) * (k - 2) / 2;
            let hi = k * (k - 1) / 2;
            id = self.intern_raw(id, map[events[k - 1].0 as usize], &relations[lo..hi]);
        }
        id
    }

    /// Materializes the pattern behind `id`. Allocation is
    /// output-proportional — callers resolve lazily, at emission time.
    pub fn resolve(&self, id: PatternId) -> Pattern {
        let k = self.event_count(id);
        let mut events = vec![EventId(0); k];
        let mut relations = Vec::with_capacity(k * (k - 1) / 2);
        let mut at = id;
        let mut slot = k;
        // Collect the chain root-first by filling events backwards...
        let mut chain = Vec::with_capacity(k);
        while !at.is_none() {
            slot -= 1;
            events[slot] = self.last_event(at);
            chain.push(at);
            at = self.parent(at);
        }
        // ...then append delta columns root-first: exactly the flat
        // `Pattern` layout (relations grouped by later event).
        for &link in chain.iter().rev() {
            relations.extend_from_slice(self.delta_rels(link));
        }
        Pattern::new(events, relations)
    }

    /// True when entry `id` is exactly `(parent, last, delta)`.
    #[inline]
    fn entry_matches(
        &self,
        id: u32,
        parent: PatternId,
        last: EventId,
        delta: &[TemporalRelation],
    ) -> bool {
        let i = id as usize;
        self.parents[i] == parent
            && self.lasts[i] == last
            && &self.rels[self.rel_starts[i] as usize..self.rel_starts[i + 1] as usize] == delta
    }

    /// The hash-consing core for in-pool parents: probe, return the
    /// existing id on a hit, append a new entry otherwise.
    fn intern_raw(
        &mut self,
        parent: PatternId,
        last: EventId,
        delta: &[TemporalRelation],
    ) -> PatternId {
        let depth = if parent.is_none() {
            1
        } else {
            self.depths[parent.0 as usize] + 1
        };
        self.intern_with_depth(parent, last, delta, depth)
    }

    /// [`PatternPool::intern_raw`] with the child's event count supplied
    /// by the caller — the form [`PoolView`] needs, where a delta
    /// entry's parent may live in the base layer rather than this pool.
    fn intern_with_depth(
        &mut self,
        parent: PatternId,
        last: EventId,
        delta: &[TemporalRelation],
        depth: u32,
    ) -> PatternId {
        self.reserve_table(self.len() + 1);
        let hash = hash_entry(parent, last, delta);
        let mask = self.table.len() - 1;
        let mut at = hash as usize & mask;
        loop {
            let slot = self.table[at];
            if slot == 0 {
                let id = self.push_entry(parent, last, delta, depth);
                self.table[at] = id.0 + 1;
                return id;
            }
            let id = slot - 1;
            if self.hashes[id as usize] == hash && self.entry_matches(id, parent, last, delta) {
                return PatternId(id);
            }
            at = (at + 1) & mask;
        }
    }

    /// Appends a new entry's columns; the caller owns table insertion.
    fn push_entry(
        &mut self,
        parent: PatternId,
        last: EventId,
        delta: &[TemporalRelation],
        depth: u32,
    ) -> PatternId {
        let id = self.parents.len() as u32;
        self.parents.push(parent);
        self.lasts.push(last);
        self.depths.push(depth);
        self.rels.extend_from_slice(delta);
        self.rel_starts.push(self.rels.len() as u32);
        self.hashes.push(hash_entry(parent, last, delta));
        PatternId(id)
    }

    /// Grows the probe table so `entries` fit under 7/8 load, rehashing
    /// from the stored per-entry hashes (columns are never re-read).
    fn reserve_table(&mut self, entries: usize) {
        if self.rel_starts.is_empty() {
            self.rel_starts.push(0);
        }
        let needed = entries + entries / 7 + 1;
        if self.table.len() >= needed {
            return;
        }
        let cap = needed.next_power_of_two().max(16);
        let mask = cap - 1;
        let mut table = vec![0u32; cap];
        for (id, &hash) in self.hashes.iter().enumerate() {
            let mut at = hash as usize & mask;
            while table[at] != 0 {
                at = (at + 1) & mask;
            }
            table[at] = id as u32 + 1;
        }
        self.table = table;
    }
}

/// Last-to-first event walk over a parent chain — see
/// [`PatternPool::events_rev`].
pub struct EventsRev<'a> {
    pool: &'a PatternPool,
    at: PatternId,
}

impl Iterator for EventsRev<'_> {
    type Item = EventId;

    #[inline]
    fn next(&mut self) -> Option<EventId> {
        if self.at.is_none() {
            return None;
        }
        let e = self.pool.last_event(self.at);
        self.at = self.pool.parent(self.at);
        Some(e)
    }
}

/// A shard-local pattern pool layered over a shared read-only base — the
/// `SymbolsView` base-plus-delta idiom. Ids below `base.len()` are base
/// ids; ids at or above it index the view's private delta pool. A shard
/// interns freely without coordinator round-trips; the coordinator later
/// [`PoolView::absorb`]s the delta, translating every shard-local id to
/// a master id in one ordered pass (each delta entry's parent is either
/// a base id, unchanged, or an earlier delta entry, already translated).
pub struct PoolView<'a> {
    base: &'a PatternPool,
    delta: PatternPool,
}

impl<'a> PoolView<'a> {
    /// A view over `base` with an empty delta.
    pub fn new(base: &'a PatternPool) -> PoolView<'a> {
        PoolView {
            base,
            delta: PatternPool::default(),
        }
    }

    /// Entries visible through the view (base plus delta).
    pub fn len(&self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// True when both layers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries interned locally, not yet in the base.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// The base root id of a registry event (roots always live in the
    /// base layer).
    pub fn root(&self, event: EventId) -> PatternId {
        self.base.root(event)
    }

    /// Interns a child through the view: a base hit returns the base id
    /// untouched; anything new lands in the shard-local delta.
    pub fn intern_child(
        &mut self,
        parent: PatternId,
        last: EventId,
        delta: &[TemporalRelation],
    ) -> PatternId {
        // Entries whose parent already escaped to the delta layer can
        // never be base entries (the base never references the delta).
        if (parent.0 as usize) < self.base.len() || parent.is_none() {
            if let Some(hit) = self.base.lookup_child(parent, last, delta) {
                return hit;
            }
        }
        let depth = if parent.is_none() {
            1
        } else {
            self.event_count(parent) as u32 + 1
        };
        let local = self.delta.intern_with_depth(parent, last, delta, depth);
        PatternId(local.0 + self.base.len() as u32)
    }

    /// Interns a fully materialized pattern through the view.
    pub fn intern(&mut self, pattern: &Pattern) -> PatternId {
        let events = pattern.events();
        let relations = pattern.relations();
        let mut id = self.base.root(events[0]);
        for k in 2..=events.len() {
            let lo = (k - 1) * (k - 2) / 2;
            let hi = k * (k - 1) / 2;
            id = self.intern_child(id, events[k - 1], &relations[lo..hi]);
        }
        id
    }

    /// Parent of a view id, across layers.
    pub fn parent(&self, id: PatternId) -> PatternId {
        match self.local(id) {
            None => self.base.parent(id),
            Some(local) => self.delta.parent(local),
        }
    }

    /// Event count of a view id, across layers.
    pub fn event_count(&self, id: PatternId) -> usize {
        match self.local(id) {
            None => self.base.event_count(id),
            Some(local) => self.delta.depths[local.0 as usize] as usize,
        }
    }

    /// Materializes the pattern behind a view id, dispatching each chain
    /// link to the layer that owns it.
    pub fn resolve(&self, id: PatternId) -> Pattern {
        let k = self.event_count(id);
        let mut events = vec![EventId(0); k];
        let mut chain = Vec::with_capacity(k);
        let mut at = id;
        let mut slot = k;
        while !at.is_none() {
            slot -= 1;
            match self.local(at) {
                None => {
                    events[slot] = self.base.last_event(at);
                    chain.push((false, at));
                    at = self.base.parent(at);
                }
                Some(local) => {
                    events[slot] = self.delta.last_event(local);
                    chain.push((true, local));
                    at = self.delta.parent(local);
                }
            }
        }
        let mut relations = Vec::with_capacity(k * (k - 1) / 2);
        for &(in_delta, link) in chain.iter().rev() {
            let layer = if in_delta { &self.delta } else { self.base };
            relations.extend_from_slice(layer.delta_rels(link));
        }
        Pattern::new(events, relations)
    }

    /// Folds the delta layer into `base`, consuming the view. Returns
    /// the translation table: `translate[local]` is the master id of the
    /// view id `base.len() + local`. Base ids are their own translation.
    ///
    /// `base` must be the same pool the view was created over (enforced
    /// structurally: delta parents below the recorded base length are
    /// used as-is).
    pub fn absorb(self, base: &mut PatternPool) -> Vec<PatternId> {
        let base_len = self.base.len();
        debug_assert_eq!(
            base.len(),
            base_len,
            "absorb target must be the view's base pool"
        );
        let mut translate = Vec::with_capacity(self.delta.len());
        for local in 0..self.delta.len() {
            let id = PatternId(local as u32);
            let parent = self.delta.parent(id);
            let master_parent = if parent.is_none() || (parent.0 as usize) < base_len {
                parent
            } else {
                translate[parent.0 as usize - base_len]
            };
            let master = base.intern_raw(
                master_parent,
                self.delta.last_event(id),
                self.delta.delta_rels(id),
            );
            translate.push(master);
        }
        translate
    }

    /// Splits a view id into its delta-local index, if it is one.
    #[inline]
    fn local(&self, id: PatternId) -> Option<PatternId> {
        let base_len = self.base.len() as u32;
        (!id.is_none() && id.0 >= base_len).then(|| PatternId(id.0 - base_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TemporalRelation::{Contain, Follow, Overlap};

    fn pat(events: &[u32], rels: &[TemporalRelation]) -> Pattern {
        Pattern::new(
            events.iter().map(|&e| EventId(e)).collect(),
            rels.to_vec(),
        )
    }

    #[test]
    fn roots_are_event_ids() {
        let pool = PatternPool::with_roots(5);
        assert_eq!(pool.len(), 5);
        for e in 0..5u32 {
            let id = pool.root(EventId(e));
            assert_eq!(id, PatternId(e));
            assert_eq!(pool.event_count(id), 1);
            assert_eq!(pool.last_event(id), EventId(e));
            assert!(pool.parent(id).is_none());
            assert!(pool.delta_rels(id).is_empty());
        }
    }

    #[test]
    fn intern_resolve_round_trip() {
        let mut pool = PatternPool::with_roots(4);
        let p = pat(
            &[0, 2, 1, 3],
            &[Follow, Overlap, Contain, Follow, Follow, Overlap],
        );
        let id = pool.intern(&p);
        assert_eq!(pool.resolve(id), p);
        assert_eq!(pool.event_count(id), 4);
        assert_eq!(pool.last_event(id), EventId(3));
        assert_eq!(pool.delta_rels(id), &[Follow, Follow, Overlap]);
        // The parent chain is the prefix chain.
        let prefix = pool.parent(id);
        assert_eq!(pool.resolve(prefix), pat(&[0, 2, 1], &[Follow, Overlap, Contain]));
    }

    #[test]
    fn hash_consing_dedups() {
        let mut pool = PatternPool::with_roots(3);
        let p = pat(&[0, 1, 2], &[Follow, Overlap, Contain]);
        let a = pool.intern(&p);
        let len_after_first = pool.len();
        let b = pool.intern(&p);
        assert_eq!(a, b);
        assert_eq!(pool.len(), len_after_first, "re-interning allocates nothing");
        // Sharing a prefix shares the prefix entries.
        let q = pat(&[0, 1, 2], &[Follow, Overlap, Overlap]);
        let c = pool.intern(&q);
        assert_ne!(a, c);
        assert_eq!(pool.parent(a), pool.parent(c));
    }

    #[test]
    fn parent_delta_chain_equals_flat_construction() {
        let mut pool = PatternPool::with_roots(3);
        let flat = pat(&[0, 1, 2], &[Follow, Overlap, Contain]);
        let by_chain = {
            let l2 = pool.intern_child(pool.root(EventId(0)), EventId(1), &[Follow]);
            pool.intern_child(l2, EventId(2), &[Overlap, Contain])
        };
        assert_eq!(pool.intern(&flat), by_chain);
        assert_eq!(pool.resolve(by_chain), flat);
    }

    #[test]
    fn packed_intern_matches_slice_intern() {
        let mut pool = PatternPool::with_roots(3);
        let l2 = pool.intern_child(pool.root(EventId(1)), EventId(2), &[Overlap]);
        let mut code = 0u64;
        for r in [Contain, Follow] {
            code = pack_relation(code, r);
        }
        let packed = pool.intern_packed(DeltaKey {
            parent: l2,
            last: EventId(0),
            code,
        });
        let sliced = pool.intern_child(l2, EventId(0), &[Contain, Follow]);
        assert_eq!(packed, sliced);
        assert_eq!(decode_column(code, 2), vec![Contain, Follow]);
    }

    #[test]
    fn intern_mapped_translates_events() {
        let mut pool = PatternPool::with_roots(4);
        // Foreign ids 0,1 map to master 3,2.
        let map = [EventId(3), EventId(2)];
        let foreign = pat(&[0, 1], &[Follow]);
        let id = pool.intern_mapped(&foreign, &map);
        assert_eq!(pool.resolve(id), pat(&[3, 2], &[Follow]));
    }

    #[test]
    fn table_growth_keeps_ids_stable() {
        let mut pool = PatternPool::with_roots(2);
        let mut ids = Vec::new();
        // Enough distinct chains to force several table growths.
        for i in 0..200u32 {
            let r = TemporalRelation::ALL[(i % 3) as usize];
            let mut id = pool.root(EventId(i % 2));
            let other = EventId((i + 1) % 2);
            id = pool.intern_child(id, other, &[r]);
            for _ in 0..(i % 5) {
                let d = vec![r; pool.event_count(id)];
                id = pool.intern_child(id, other, &d);
            }
            ids.push((id, pool.resolve(id)));
        }
        for (id, p) in ids {
            assert_eq!(pool.intern(&p), id, "ids survive growth and re-intern");
            assert_eq!(pool.resolve(id), p);
        }
    }

    #[test]
    fn events_rev_walks_the_chain() {
        let mut pool = PatternPool::with_roots(3);
        let p = pat(&[2, 0, 1], &[Follow, Overlap, Contain]);
        let id = pool.intern(&p);
        let rev: Vec<u32> = pool.events_rev(id).map(|e| e.0).collect();
        assert_eq!(rev, vec![1, 0, 2]);
    }

    #[test]
    fn view_layers_base_and_delta() {
        let mut base = PatternPool::with_roots(3);
        let shared = base.intern(&pat(&[0, 1], &[Follow]));
        let mut view = PoolView::new(&base);
        // A base hit stays a base id; nothing lands in the delta.
        assert_eq!(view.intern(&pat(&[0, 1], &[Follow])), shared);
        assert_eq!(view.delta_len(), 0);
        // New entries get ids past the base range.
        let novel = pat(&[0, 1, 2], &[Follow, Overlap, Contain]);
        let local = view.intern(&novel);
        assert!(local.0 as usize >= base.len());
        assert_eq!(view.resolve(local), novel);
        assert_eq!(view.parent(local), shared);
        assert_eq!(view.event_count(local), 3);
    }

    #[test]
    fn absorb_translates_local_ids_to_master() {
        let mut base = PatternPool::with_roots(3);
        base.intern(&pat(&[0, 1], &[Follow]));
        let base_snapshot = base.clone();
        let mut view = PoolView::new(&base_snapshot);
        let novel = pat(&[0, 1, 2], &[Follow, Overlap, Contain]);
        let deeper = pat(
            &[0, 1, 2, 0],
            &[Follow, Overlap, Contain, Follow, Follow, Follow],
        );
        let local_novel = view.intern(&novel);
        let local_deeper = view.intern(&deeper);
        let translate = view.absorb(&mut base);
        let master_novel = translate[local_novel.0 as usize - base_snapshot.len()];
        let master_deeper = translate[local_deeper.0 as usize - base_snapshot.len()];
        assert_eq!(base.resolve(master_novel), novel);
        assert_eq!(base.resolve(master_deeper), deeper);
        // Absorbing is idempotent with direct interning.
        assert_eq!(base.intern(&novel), master_novel);
        assert_eq!(base.intern(&deeper), master_deeper);
    }
}
