//! A brute-force reference miner: enumerates every chronological instance
//! tuple of every sequence and counts pattern supports directly.
//!
//! Exponential in sequence length — usable only on small databases. It
//! exists as (a) the correctness oracle that E-HTPGM and all baselines are
//! cross-validated against, and (b) the "ground truth including
//! uncorrelated series" needed to study the patterns A-HTPGM prunes
//! (Fig 8).

use std::collections::HashMap;

use ftpm_bitmap::Bitmap;
use ftpm_events::{
    BoundaryKernel, BoundaryVisit, SequenceDatabase, TemporalRelation,
};

use crate::candidates::CorrelationFilter;
use crate::config::MinerConfig;
use crate::hpg::HierarchicalPatternGraph;
use crate::index::DatabaseIndex;
use crate::pattern::Pattern;
use crate::result::{FrequentPattern, MiningResult, MiningStats};

/// Mines all frequent temporal patterns by exhaustive enumeration.
///
/// Produces exactly the same pattern set, supports and confidences as
/// [`crate::mine_exact`] (asserted by the cross-validation tests), many
/// orders of magnitude slower. Cap the pattern length with
/// [`MinerConfig::with_max_events`] on all but trivial inputs.
pub fn mine_reference(db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
    mine_reference_filtered(db, cfg, None)
}

/// [`mine_reference`] under a [`CorrelationFilter`] — the brute-force
/// counterpart of A-HTPGM, so the approximate miners have an oracle too.
///
/// The filter is honored at the same two gates as everywhere else:
/// tuples never start from (L1) or extend with (L2) an event outside the
/// correlated set, and every event pair inside a tuple must share a
/// correlation-graph edge. With transitivity pruning on (the default —
/// the regime every cross-validation suite runs in), this is exactly the
/// pattern set the HPG miners produce under the same filter, because
/// their level-≥3 growth admits a pair only through an edge-gated L2
/// node.
pub fn mine_reference_filtered(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    corr: Option<&CorrelationFilter<'_>>,
) -> MiningResult {
    // Monomorphization seam: fix the boundary kernel once per run (the
    // same dispatch point discipline as `exact::mine_internal`).
    struct Run<'a, 'c> {
        db: &'a SequenceDatabase,
        cfg: &'a MinerConfig,
        corr: Option<&'a CorrelationFilter<'c>>,
    }
    impl BoundaryVisit for Run<'_, '_> {
        type Out = MiningResult;
        fn visit<K: BoundaryKernel>(self) -> MiningResult {
            mine_reference_k::<K>(self.db, self.cfg, self.corr)
        }
    }
    cfg.relation.boundary.dispatch(Run { db, cfg, corr })
}

/// [`mine_reference`], monomorphized over the boundary kernel.
fn mine_reference_k<K: BoundaryKernel>(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    corr: Option<&CorrelationFilter<'_>>,
) -> MiningResult {
    let n_seqs = db.len();
    let sigma_abs = cfg.absolute_support(n_seqs);
    let index = DatabaseIndex::build_with_policy(db, cfg.relation.boundary);

    let mut support: HashMap<Pattern, PatternAccum> = HashMap::new();

    for (seq_id, seq) in db.sequences().iter().enumerate() {
        let insts = seq.instances();
        // DFS over chronologically increasing tuples. Every prefix of a
        // valid occurrence is valid (all pairwise relations hold, and the
        // monotone t_max constraint only tightens as the tuple grows), so
        // pruning invalid prefixes is complete.
        let mut tuple: Vec<usize> = Vec::new();
        let mut rels: Vec<TemporalRelation> = Vec::new();
        for start in 0..insts.len() {
            if K::interval(&insts[start]).is_none() {
                continue; // discarded by the boundary policy
            }
            if corr.is_some_and(|c| !c.allows_event(insts[start].event)) {
                continue; // outside the correlated set X_C
            }
            tuple.push(start);
            dfs::<K>(
                db,
                cfg,
                seq_id,
                insts.len(),
                &mut tuple,
                &mut rels,
                &mut support,
                corr,
            );
            tuple.pop();
        }
    }

    let mut patterns: Vec<FrequentPattern> = support
        .into_iter()
        .filter_map(|(pattern, accum)| {
            let supp = accum.bitmap.count_ones();
            if supp < sigma_abs {
                return None;
            }
            let max_evt_supp = pattern
                .events()
                .iter()
                .map(|&e| index.support(e))
                .max()
                // lint: allow(panic, structural invariant: patterns always hold at least one event)
                .expect("patterns have events");
            let confidence = supp as f64 / max_evt_supp as f64;
            if confidence + 1e-9 < cfg.delta {
                return None;
            }
            Some(FrequentPattern {
                pattern,
                support: supp,
                rel_support: supp as f64 / n_seqs.max(1) as f64,
                confidence,
                clipped_occurrences: accum.clipped_occurrences,
            })
        })
        .collect();
    // Deterministic order: by length, then by events/relations.
    patterns.sort_by(|a, b| {
        (a.pattern.len(), a.pattern.events(), a.pattern.relations()).cmp(&(
            b.pattern.len(),
            b.pattern.events(),
            b.pattern.relations(),
        ))
    });

    let frequent_events = db
        .registry()
        .ids()
        .filter(|&e| corr.is_none_or(|c| c.allows_event(e)))
        .filter(|&e| index.support(e) >= sigma_abs)
        .map(|e| (e, index.support(e)))
        .collect();

    MiningResult {
        patterns,
        frequent_events,
        graph: HierarchicalPatternGraph::default(),
        stats: MiningStats::default(),
    }
}

/// Per-pattern accumulator: supporting-sequence bitmap plus the count of
/// occurrences touching a boundary-clipped instance.
struct PatternAccum {
    bitmap: Bitmap,
    clipped_occurrences: usize,
}

#[allow(clippy::too_many_arguments)]
fn dfs<K: BoundaryKernel>(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    seq_id: usize,
    n_insts: usize,
    tuple: &mut Vec<usize>,
    rels: &mut Vec<TemporalRelation>,
    support: &mut HashMap<Pattern, PatternAccum>,
    corr: Option<&CorrelationFilter<'_>>,
) {
    let insts = db.sequences()[seq_id].instances();
    let rel = &cfg.relation;
    if tuple.len() >= 2 {
        let pattern = Pattern::new(
            tuple.iter().map(|&i| insts[i].event).collect(),
            rels.clone(),
        );
        let accum = support.entry(pattern).or_insert_with(|| PatternAccum {
            bitmap: Bitmap::new(db.len()),
            clipped_occurrences: 0,
        });
        accum.bitmap.set(seq_id);
        if tuple.iter().any(|&i| insts[i].is_clipped()) {
            accum.clipped_occurrences += 1;
        }
    }
    if tuple.len() >= cfg.max_events.min(12) {
        // Hard cap of 12 events keeps accidental misuse from exploding.
        return;
    }
    // Tuple members passed the boundary policy when they were pushed.
    let bound_iv = |i: usize| {
        K::interval(&insts[i])
            // lint: allow(panic, structural invariant: binding members passed the boundary policy on entry)
            .expect("bound instances pass the boundary policy")
    };
    let first_start = bound_iv(tuple[0]).start;
    let tuple_max_end = tuple
        .iter()
        .map(|&i| bound_iv(i).end)
        .max()
        // lint: allow(panic, structural invariant: the binding is non-empty on this path)
        .expect("non-empty");
    // lint: allow(panic, structural invariant: the binding is non-empty on this path)
    let last_key = K::key(&insts[*tuple.last().expect("non-empty")]);

    for (next, x) in insts.iter().enumerate().take(n_insts) {
        let Some(x_iv) = K::interval(x) else {
            continue;
        };
        if K::key(x) <= last_key {
            continue;
        }
        if corr.is_some_and(|c| {
            !c.allows_event(x.event)
                || tuple.iter().any(|&ti| !c.allows_pair(insts[ti].event, x.event))
        }) {
            continue; // pruned by the correlation graph (L1 / L2 gates)
        }
        if !rel.within_t_max(first_start, tuple_max_end.max(x_iv.end)) {
            continue;
        }
        let mut new_rels = Vec::with_capacity(tuple.len());
        let mut ok = true;
        for &ti in tuple.iter() {
            match rel.relate(&bound_iv(ti), &x_iv) {
                Some(r) => new_rels.push(r),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let depth = rels.len();
        rels.extend_from_slice(&new_rels);
        tuple.push(next);
        dfs::<K>(db, cfg, seq_id, n_insts, tuple, rels, support, corr);
        tuple.pop();
        rels.truncate(depth);
    }
}
