//! Struct-of-arrays occurrence store.
//!
//! Each work node used to bind its pattern occurrences as
//! `Vec<(u32, Vec<u32>)>` — one heap allocation *per occurrence* on the
//! hottest allocation path of the miner (candidate growth). The arena
//! replaces that with two flat columns shared by all patterns of a node:
//!
//! * `seqs[i]` — the sequence id of occurrence `i`;
//! * `insts[i*width .. (i+1)*width]` — the bound instance indices of
//!   occurrence `i`, in chronological order (`width` = the node's event
//!   count).
//!
//! A pattern holds an [`OccRange`] of occurrence indices instead of its
//! own vector, so growing a level appends to the flat columns, dropping
//! a pattern is free, and the exchange executor's drop-losers step
//! ([`OccArena::compact`]) is a range shift + truncation instead of a
//! per-pattern reallocation.

/// Half-open range of occurrence indices into an [`OccArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OccRange {
    pub(crate) start: u32,
    pub(crate) end: u32,
}

impl OccRange {
    /// Number of occurrences in the range.
    #[inline]
    pub(crate) fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// The occurrence indices as a `usize` iterator.
    #[inline]
    pub(crate) fn iter(self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// Flat occurrence columns of one work node; see the module docs.
#[derive(Debug, Clone)]
pub(crate) struct OccArena {
    /// Instance indices per occurrence.
    width: usize,
    seqs: Vec<u32>,
    insts: Vec<u32>,
}

impl OccArena {
    /// An empty arena for occurrences of `width` bound instances.
    pub(crate) fn new(width: usize) -> Self {
        OccArena {
            width,
            seqs: Vec::new(),
            insts: Vec::new(),
        }
    }

    /// The bound-instance count per occurrence.
    #[inline]
    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Number of occurrences stored.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Current end watermark as a range start for the next append run.
    #[inline]
    pub(crate) fn mark(&self) -> u32 {
        self.len() as u32
    }

    /// The range from `mark` to the current end.
    #[inline]
    pub(crate) fn since(&self, mark: u32) -> OccRange {
        OccRange {
            start: mark,
            end: self.mark(),
        }
    }

    /// Sequence id of occurrence `i`.
    #[inline]
    pub(crate) fn seq(&self, i: usize) -> u32 {
        self.seqs[i]
    }

    /// Bound instance indices of occurrence `i`, chronological order.
    #[inline]
    pub(crate) fn tuple(&self, i: usize) -> &[u32] {
        &self.insts[i * self.width..(i + 1) * self.width]
    }

    /// Appends one occurrence.
    #[inline]
    pub(crate) fn push(&mut self, seq: u32, tuple: &[u32]) {
        debug_assert_eq!(tuple.len(), self.width());
        self.seqs.push(seq);
        self.insts.extend_from_slice(tuple);
    }

    /// Appends `prefix` extended by `last` as one occurrence — the
    /// growth step, without materializing the extended tuple.
    #[inline]
    pub(crate) fn push_extend(&mut self, seq: u32, prefix: &[u32], last: u32) {
        debug_assert_eq!(prefix.len() + 1, self.width());
        self.seqs.push(seq);
        self.insts.extend_from_slice(prefix);
        self.insts.push(last);
    }

    /// Splices `range` of `other` (same width) onto the end of `self`,
    /// returning the spliced range.
    pub(crate) fn append_from(&mut self, other: &OccArena, range: OccRange) -> OccRange {
        debug_assert_eq!(self.width, other.width);
        let start = self.mark();
        self.seqs
            .extend_from_slice(&other.seqs[range.iter()]);
        self.insts.extend_from_slice(
            &other.insts[range.start as usize * self.width..range.end as usize * self.width],
        );
        self.since(start)
    }

    /// Drop-losers step: keeps only the occurrences of `kept` (ascending,
    /// disjoint ranges), shifting them down in place and truncating the
    /// columns at the new watermark. Each range in `kept` is rewritten to
    /// its post-compaction position. No allocation, no per-pattern copy —
    /// just one sweep over the flat columns.
    pub(crate) fn compact(&mut self, kept: &mut [OccRange]) {
        let mut write = 0usize;
        for range in kept.iter_mut() {
            let (start, len) = (range.start as usize, range.len());
            debug_assert!(write <= start, "kept ranges must be ascending and disjoint");
            if write != start {
                self.seqs.copy_within(start..start + len, write);
                self.insts.copy_within(
                    start * self.width..(start + len) * self.width,
                    write * self.width,
                );
            }
            *range = OccRange {
                start: write as u32,
                end: (write + len) as u32,
            };
            write += len;
        }
        self.seqs.truncate(write);
        self.insts.truncate(write * self.width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut a = OccArena::new(2);
        a.push(4, &[1, 2]);
        a.push_extend(7, &[3], 9);
        assert_eq!(a.len(), 2);
        assert_eq!(a.width(), 2);
        assert_eq!(a.seq(0), 4);
        assert_eq!(a.tuple(0), &[1, 2]);
        assert_eq!(a.seq(1), 7);
        assert_eq!(a.tuple(1), &[3, 9]);
        assert_eq!(a.since(0), OccRange { start: 0, end: 2 });
    }

    #[test]
    fn append_from_splices_ranges() {
        let mut src = OccArena::new(3);
        for i in 0..4u32 {
            src.push(i, &[i, i + 1, i + 2]);
        }
        let mut dst = OccArena::new(3);
        dst.push(99, &[0, 0, 0]);
        let got = dst.append_from(&src, OccRange { start: 1, end: 3 });
        assert_eq!(got, OccRange { start: 1, end: 3 });
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.seq(1), 1);
        assert_eq!(dst.tuple(2), &[2, 3, 4]);
    }

    #[test]
    fn compact_shifts_kept_ranges_down() {
        let mut a = OccArena::new(1);
        for i in 0..10u32 {
            a.push(i, &[i * 10]);
        }
        // Keep [2,4) and [7,10); drop the rest.
        let mut kept = [
            OccRange { start: 2, end: 4 },
            OccRange { start: 7, end: 10 },
        ];
        a.compact(&mut kept);
        assert_eq!(kept[0], OccRange { start: 0, end: 2 });
        assert_eq!(kept[1], OccRange { start: 2, end: 5 });
        assert_eq!(a.len(), 5);
        let seqs: Vec<u32> = (0..a.len()).map(|i| a.seq(i)).collect();
        assert_eq!(seqs, vec![2, 3, 7, 8, 9]);
        let insts: Vec<u32> = (0..a.len()).map(|i| a.tuple(i)[0]).collect();
        assert_eq!(insts, vec![20, 30, 70, 80, 90]);
    }

    #[test]
    fn compact_all_and_none() {
        let mut a = OccArena::new(2);
        for i in 0..3u32 {
            a.push(i, &[i, i]);
        }
        let mut all = [OccRange { start: 0, end: 3 }];
        a.compact(&mut all);
        assert_eq!(a.len(), 3);
        let mut none: [OccRange; 0] = [];
        a.compact(&mut none);
        assert_eq!(a.len(), 0);
    }
}
