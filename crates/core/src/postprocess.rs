//! Post-processing of mining results: redundancy elimination (closed and
//! maximal patterns) and interestingness ranking.
//!
//! Frequent-pattern output is heavily redundant — every prefix of a
//! frequent pattern is itself frequent (Lemma 2/6), so a single long
//! pattern implies a chain of shorter ones. The classical remedies from
//! itemset mining carry over along HTPGM's growth structure, where
//! `P'` is a sub-pattern of `P` when it is a *prefix* (same leading
//! events, same relations among them — [`Pattern::has_prefix`]):
//!
//! * a pattern is **closed** if no frequent one-event extension has the
//!   same support — dropping non-closed patterns loses no support
//!   information;
//! * a pattern is **maximal** if no frequent extension exists at all —
//!   the most aggressive lossless-in-structure summary.

use std::collections::HashMap;

use crate::pool::{FnvHashMap, PatternId, PatternPool};
use crate::result::{FrequentPattern, MiningResult};

/// Computes, for every pattern (by its index in `result.patterns`), the
/// best (maximum) support among its direct frequent extensions, if any.
///
/// Runs over a hash-consed [`PatternPool`]: every pattern interns once,
/// and a pattern's immediate prefix is then just its pooled parent id —
/// no prefix `Pattern` is materialized and no whole-pattern key is
/// hashed per lookup.
fn extension_support(result: &MiningResult) -> Vec<Option<usize>> {
    let n_roots = result
        .patterns
        .iter()
        .flat_map(|p| p.pattern.events())
        .map(|e| e.0 + 1)
        .max()
        .unwrap_or(0);
    let mut pool = PatternPool::with_roots(n_roots as usize);
    let ids: Vec<PatternId> = result
        .patterns
        .iter()
        .map(|p| pool.intern(&p.pattern))
        .collect();
    let index_of: FnvHashMap<PatternId, usize> =
        ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut best: Vec<Option<usize>> = vec![None; result.patterns.len()];
    // Every pattern of length >= 3 contributes to its immediate prefix's
    // best extension support — one O(n) pass over parent ids.
    for (fp, &id) in result.patterns.iter().zip(&ids) {
        if fp.pattern.len() < 3 {
            continue;
        }
        if let Some(&at) = index_of.get(&pool.parent(id)) {
            let entry = best[at].get_or_insert(0);
            *entry = (*entry).max(fp.support);
        }
    }
    best
}

/// The closed patterns of a mining result: patterns with no frequent
/// prefix-extension of equal support.
///
/// # Examples
///
/// ```
/// use ftpm_core::{closed_patterns, mine_exact, MinerConfig};
/// use ftpm_datagen::random_sequence_database;
///
/// let db = random_sequence_database(7, 6, 3, 2, 40);
/// let result = mine_exact(&db, &MinerConfig::new(0.3, 0.3).with_max_events(3));
/// let closed = closed_patterns(&result);
/// assert!(closed.len() <= result.patterns.len());
/// ```
pub fn closed_patterns(result: &MiningResult) -> Vec<&FrequentPattern> {
    let best = extension_support(result);
    result
        .patterns
        .iter()
        .zip(&best)
        .filter(|(fp, ext)| match ext {
            Some(ext) => *ext < fp.support,
            None => true,
        })
        .map(|(fp, _)| fp)
        .collect()
}

/// The maximal patterns of a mining result: patterns with no frequent
/// prefix-extension at all.
pub fn maximal_patterns(result: &MiningResult) -> Vec<&FrequentPattern> {
    let best = extension_support(result);
    result
        .patterns
        .iter()
        .zip(&best)
        .filter(|(_, ext)| ext.is_none())
        .map(|(fp, _)| fp)
        .collect()
}

/// Lift of a pattern against the independence baseline of its events:
/// `rel_supp(P) / Π_i rel_supp(E_i)`. A lift well above 1 means the
/// events co-occur (in this temporal arrangement) far more often than
/// independent events would — the natural interestingness score for the
/// habit-style patterns of the paper's Table VI.
///
/// Returns `None` if some event's support is unknown (not in
/// `result.frequent_events`) or zero.
pub fn pattern_lift(result: &MiningResult, fp: &FrequentPattern) -> Option<f64> {
    let n = result
        .frequent_events
        .iter()
        .map(|&(_, s)| s)
        .max()
        .unwrap_or(0);
    if n == 0 {
        return None;
    }
    let supports: HashMap<_, _> = result.frequent_events.iter().copied().collect();
    // Recover |D_SEQ| from any pattern's support / rel_support ratio.
    let n_seqs = if fp.rel_support > 0.0 {
        (fp.support as f64 / fp.rel_support).round()
    } else {
        return None;
    };
    let mut baseline = 1.0;
    for e in fp.pattern.events() {
        let s = *supports.get(e)? as f64 / n_seqs;
        if s == 0.0 {
            return None;
        }
        baseline *= s;
    }
    Some(fp.rel_support / baseline)
}

/// Sort key for ranking mined patterns at the presentation layer — what
/// `ftpm mine --sort` selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSort {
    /// Descending by absolute support, ties broken by confidence.
    Support,
    /// Descending by confidence, ties broken by support.
    Confidence,
}

impl std::str::FromStr for PatternSort {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "support" => Ok(PatternSort::Support),
            "confidence" => Ok(PatternSort::Confidence),
            other => Err(format!(
                "unknown sort key {other:?} (expected support|confidence)"
            )),
        }
    }
}

/// References to the patterns of `result`, optionally sorted by `sort`
/// and truncated to the `top` best — makes 920k-pattern runs usable from
/// a terminal. With `sort == None` discovery order is kept.
///
/// The sort key is a *total* order: support/confidence ties break by the
/// pattern itself (events, then relations — the pattern's label order
/// for one registry). Discovery order under `--threads` is
/// nondeterministic, so without the full tie-break the same `--top N`
/// command could print different pattern sets run to run whenever the
/// cut fell inside a tie group.
pub fn rank_patterns(
    result: &MiningResult,
    sort: Option<PatternSort>,
    top: Option<usize>,
) -> Vec<&FrequentPattern> {
    let mut refs: Vec<&FrequentPattern> = result.patterns.iter().collect();
    match sort {
        Some(PatternSort::Support) => refs.sort_by(|a, b| {
            b.support
                .cmp(&a.support)
                .then(b.confidence.total_cmp(&a.confidence))
                .then_with(|| a.pattern.cmp(&b.pattern))
        }),
        Some(PatternSort::Confidence) => refs.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(b.support.cmp(&a.support))
                .then_with(|| a.pattern.cmp(&b.pattern))
        }),
        None => {}
    }
    if let Some(n) = top {
        refs.truncate(n);
    }
    refs
}

/// The `k` most interesting patterns by lift (ties broken by support,
/// confidence, then the pattern itself, so the selection is a total
/// order and stable across nondeterministic discovery orders).
pub fn top_k_by_lift(result: &MiningResult, k: usize) -> Vec<(&FrequentPattern, f64)> {
    let mut scored: Vec<(&FrequentPattern, f64)> = result
        .patterns
        .iter()
        .filter_map(|fp| pattern_lift(result, fp).map(|l| (fp, l)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then(b.0.support.cmp(&a.0.support))
            .then(b.0.confidence.total_cmp(&a.0.confidence))
            .then_with(|| a.0.pattern.cmp(&b.0.pattern))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mine_exact, MinerConfig};
    use ftpm_events::{EventInstance, EventRegistry, SequenceDatabase, TemporalSequence};
    use ftpm_timeseries::{SymbolId, VariableId};

    /// Three sequences where A->B always extends to A->B->C in two of
    /// them: A->B (supp 3) is closed; A->B->C (supp 2) is closed and
    /// maximal; A->B is not maximal.
    fn chain_db() -> SequenceDatabase {
        let mut reg = EventRegistry::new();
        let a = reg.intern(VariableId(0), SymbolId(1), || "A".into());
        let b = reg.intern(VariableId(1), SymbolId(1), || "B".into());
        let c = reg.intern(VariableId(2), SymbolId(1), || "C".into());
        let full = |off: i64| {
            TemporalSequence::new(vec![
                EventInstance::new(a, off, off + 2),
                EventInstance::new(b, off + 3, off + 5),
                EventInstance::new(c, off + 6, off + 8),
            ])
        };
        let partial = TemporalSequence::new(vec![
            EventInstance::new(a, 0, 2),
            EventInstance::new(b, 3, 5),
        ]);
        SequenceDatabase::new(reg, vec![full(0), full(0), partial])
    }

    #[test]
    fn closed_and_maximal_on_chain() {
        let db = chain_db();
        let result = mine_exact(&db, &MinerConfig::new(0.5, 0.1).with_max_events(3));
        let closed = closed_patterns(&result);
        let maximal = maximal_patterns(&result);
        // A->B has supp 3, its extension A->B->C supp 2: closed, not maximal.
        let ab = result
            .patterns
            .iter()
            .find(|p| p.pattern.len() == 2 && p.support == 3)
            .expect("A->B found");
        assert!(closed.iter().any(|p| p.pattern == ab.pattern));
        assert!(!maximal.iter().any(|p| p.pattern == ab.pattern));
        // Every maximal pattern is closed.
        for m in &maximal {
            assert!(closed.iter().any(|c| c.pattern == m.pattern));
        }
        // The 3-event pattern is maximal.
        assert!(maximal.iter().any(|p| p.pattern.len() == 3));
    }

    #[test]
    fn non_closed_prefix_is_dropped() {
        // If the extension has the SAME support everywhere, the prefix is
        // not closed.
        let mut reg = EventRegistry::new();
        let a = reg.intern(VariableId(0), SymbolId(1), || "A".into());
        let b = reg.intern(VariableId(1), SymbolId(1), || "B".into());
        let c = reg.intern(VariableId(2), SymbolId(1), || "C".into());
        let seq = || {
            TemporalSequence::new(vec![
                EventInstance::new(a, 0, 2),
                EventInstance::new(b, 3, 5),
                EventInstance::new(c, 6, 8),
            ])
        };
        let db = SequenceDatabase::new(reg, vec![seq(), seq()]);
        let result = mine_exact(&db, &MinerConfig::new(0.5, 0.1).with_max_events(3));
        let closed = closed_patterns(&result);
        let ab = result
            .patterns
            .iter()
            .find(|p| {
                p.pattern.events() == [a, b]
            })
            .expect("A->B mined");
        assert!(
            !closed.iter().any(|p| p.pattern == ab.pattern),
            "A->B always extends to A->B->C with equal support: not closed"
        );
    }

    #[test]
    fn lift_exceeds_one_for_dependent_events() {
        let db = chain_db();
        let result = mine_exact(&db, &MinerConfig::new(0.5, 0.1).with_max_events(2));
        let ab = result
            .patterns
            .iter()
            .find(|p| p.pattern.len() == 2 && p.support == 3)
            .unwrap();
        let lift = pattern_lift(&result, ab).unwrap();
        assert!(lift >= 1.0, "perfectly co-occurring events: lift {lift} >= 1");
    }

    #[test]
    fn rank_patterns_sorts_and_truncates() {
        let db = chain_db();
        let result = mine_exact(&db, &MinerConfig::new(0.5, 0.1).with_max_events(3));
        assert!(result.len() >= 2);
        let by_supp = rank_patterns(&result, Some(PatternSort::Support), None);
        for w in by_supp.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
        let by_conf = rank_patterns(&result, Some(PatternSort::Confidence), Some(2));
        assert_eq!(by_conf.len(), 2);
        assert!(by_conf[0].confidence >= by_conf[1].confidence);
        // No sort: discovery order preserved.
        let plain = rank_patterns(&result, None, None);
        for (a, b) in plain.iter().zip(&result.patterns) {
            assert!(std::ptr::eq(*a, b));
        }
        assert_eq!("support".parse::<PatternSort>(), Ok(PatternSort::Support));
        assert!("lift".parse::<PatternSort>().is_err());
    }

    #[test]
    fn top_k_truncates_and_sorts() {
        let data = ftpm_datagen::dataport_like(0.01);
        let result = mine_exact(&data.seq, &MinerConfig::new(0.4, 0.4).with_max_events(3));
        let top = top_k_by_lift(&result, 5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
