#![forbid(unsafe_code)]
//! HTPGM — Hierarchical Temporal Pattern Graph Mining.
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`MinerConfig`] / [`PruningConfig`] — thresholds `σ`, `δ`, the
//!   relation model, and the pruning ablation switches of Section VI-C2;
//! * [`Pattern`] — temporal patterns (Def 3.11): `k` events plus a
//!   relation for every event pair;
//! * [`mine_exact`] (E-HTPGM, Section IV, Alg. 1) — level-wise mining on
//!   the Hierarchical Pattern Graph with bitmap support counting,
//!   Apriori pruning (Lemmas 2–3) and transitivity pruning (Lemmas 4–7);
//! * [`mine_approximate`] (A-HTPGM, Section V, Alg. 2) — prunes
//!   uncorrelated time series via the mutual-information correlation
//!   graph before running HTPGM. The graph is a [`CorrelationFilter`]
//!   handed to the shared miners, so A-HTPGM composes with every
//!   execution axis: parallel ([`mine_approximate_parallel`]), streaming
//!   ([`mine_approximate_with_sink`],
//!   [`mine_approximate_graph_with_sink`]), sharded support-complete
//!   ([`ShardPlan::mine_approximate_into`]) and sharded
//!   candidate-exchange ([`mine_approximate_sharded_exchange`],
//!   [`ShardPlan::mine_approximate_exchange_into`]) — each yielding the
//!   identical pattern set;
//! * [`mine_reference`] — a brute-force miner used as a correctness
//!   oracle in tests and to study the patterns A-HTPGM prunes (Fig 8);
//! * [`PatternSink`] and friends ([`CollectSink`], [`CountingSink`],
//!   [`CsvSink`], [`JsonlSink`]) — streaming output: [`mine_exact_with_sink`]
//!   and [`mine_exact_parallel_with_sink`] emit each finished pattern-graph
//!   node into a sink instead of materializing a result `Vec`;
//! * [`ShardPlanner`] / [`mine_sharded`] / [`ShardMerge`] —
//!   shard-by-time-range mining: K overlapping time-range slices mined
//!   independently and merged losslessly through a streaming,
//!   occurrence-deduplicating sink (`t_ov = t_max`, the Fig 3 lemma one
//!   level up);
//! * [`mine_sharded_exchange`] / [`ShardPlan::mine_exchange_into`] — the
//!   two-phase candidate-exchange executor: shards run concurrently and
//!   propose level-`k` candidates with owned supports, a coordinator
//!   applies the *global* σ/δ apriori gate between levels, so per-shard
//!   pruning is restored without giving up exactness ([`ShardReport`]
//!   exposes per-shard candidate and timing observability).
//!
//! # Quickstart
//!
//! ```
//! use ftpm_timeseries::{SymbolicDatabase, TimeSeries, ThresholdSymbolizer};
//! use ftpm_events::{to_sequence_database, SplitConfig};
//! use ftpm_core::{mine_exact, MinerConfig};
//!
//! // Two appliances sampled every 5 ticks.
//! let kitchen = TimeSeries::new("K", 0, 5, vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
//! let toaster = TimeSeries::new("T", 0, 5, vec![0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
//! let mut syb = SymbolicDatabase::new(0, 5, 8);
//! let symbolizer = ThresholdSymbolizer::new(0.5);
//! syb.add_time_series(&kitchen, &symbolizer);
//! syb.add_time_series(&toaster, &symbolizer);
//!
//! let seq_db = to_sequence_database(&syb, SplitConfig::new(20, 0));
//! let result = mine_exact(&seq_db, &MinerConfig::new(0.5, 0.5));
//! assert!(!result.patterns.is_empty());
//! ```

mod approx;
mod candidates;
mod config;
mod exact;
mod executor;
mod hpg;
mod index;
mod merge;
mod occ;
mod parallel;
mod pattern;
mod pool;
mod postprocess;
mod reference;
mod result;
mod schedule;
mod shard;
mod sink;

pub use approx::{
    correlation_filter, event_indicator_database, mine_approximate, mine_approximate_event_level,
    mine_approximate_graph_with_sink, mine_approximate_parallel,
    mine_approximate_parallel_with_sink, mine_approximate_with_density,
    mine_approximate_with_sink, ApproxOutcome,
};
pub use candidates::CorrelationFilter;
pub use config::{MinerConfig, PruningConfig};
pub use exact::{mine_exact, mine_exact_with_sink};
pub use parallel::{mine_exact_parallel, mine_exact_parallel_with_sink};
pub use postprocess::{
    closed_patterns, maximal_patterns, pattern_lift, rank_patterns, top_k_by_lift, PatternSort,
};
pub use hpg::{HierarchicalPatternGraph, Level, Node};
pub use index::DatabaseIndex;
pub use merge::{MergeSink, ShardMerge};
pub use pattern::Pattern;
pub use pool::{DeltaKey, EventsRev, PatternId, PatternPool, PoolView};
pub use reference::{mine_reference, mine_reference_filtered};
pub use result::{FrequentPattern, MiningResult, MiningStats};
pub use schedule::{ExploreStats, Explorer, Schedule};
pub use executor::ShardReport;
pub use shard::{
    mine_approximate_sharded_exchange, mine_sharded, mine_sharded_exchange, Shard, ShardPlan,
    ShardPlanner, ShardedMining,
};
pub use sink::{CollectSink, CountingSink, CsvSink, JsonlSink, PatternSink};
