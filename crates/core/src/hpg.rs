use ftpm_events::EventId;
use serde::{Deserialize, Serialize};

/// One node of the Hierarchical Pattern Graph: a frequent event
/// combination and the frequent patterns mined from it (Section IV-C,
/// Fig 4).
///
/// This is the post-mining summary; the working state (bitmaps, event
/// instance bindings) lives inside the miner and is released level by
/// level, exactly like the paper's description of constructing HPG
/// gradually.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The event combination, in chronological role order.
    pub events: Vec<EventId>,
    /// Joint support of the combination (popcount of the ANDed bitmaps).
    pub support: usize,
    /// Indices into [`crate::MiningResult::patterns`] of the frequent
    /// patterns mined from this node. Nodes that are frequent but carry no
    /// frequent pattern (the paper's "brown" nodes) are removed during
    /// mining and never reach the summary.
    pub pattern_indices: Vec<usize>,
}

/// One level `L_k` of the Hierarchical Pattern Graph (`k ≥ 2`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Level {
    /// The surviving (pattern-bearing) nodes of this level.
    pub nodes: Vec<Node>,
}

/// Summary of the Hierarchical Pattern Graph built by a mining run.
/// `levels[0]` is `L_2` (2-event combinations); `L_1` is reported as
/// [`crate::MiningResult::frequent_events`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalPatternGraph {
    /// Levels `L_2, L_3, …` in order.
    pub levels: Vec<Level>,
}

impl HierarchicalPatternGraph {
    /// The deepest level with at least one node, as an event count
    /// (e.g. 3 if 3-event patterns were found); 1 if only single events
    /// were frequent.
    pub fn max_pattern_len(&self) -> usize {
        (0..self.levels.len())
            .rev()
            .find(|&i| !self.levels[i].nodes.is_empty())
            .map(|i| i + 2)
            .unwrap_or(1)
    }

    /// Total number of surviving nodes across all levels.
    pub fn n_nodes(&self) -> usize {
        self.levels.iter().map(|l| l.nodes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pattern_len_skips_empty_tail() {
        let g = HierarchicalPatternGraph {
            levels: vec![
                Level {
                    nodes: vec![Node {
                        events: vec![EventId(0), EventId(1)],
                        support: 3,
                        pattern_indices: vec![0],
                    }],
                },
                Level::default(),
            ],
        };
        assert_eq!(g.max_pattern_len(), 2);
        assert_eq!(g.n_nodes(), 1);
    }

    #[test]
    fn empty_graph_len_one() {
        assert_eq!(HierarchicalPatternGraph::default().max_pattern_len(), 1);
    }
}
