//! A-HTPGM: approximate mining using mutual information
//! (paper Section V, Algorithm 2).
//!
//! The approximate miner first builds the correlation graph `G_C` of the
//! symbolic database: an edge connects two series iff their normalized
//! mutual information is at least `μ` in both directions (Def 5.5). Only
//! series inside the correlated set `X_C` produce single events at L1,
//! and only event pairs whose series are connected in `G_C` are verified
//! at L2. Theorem 1 guarantees that every frequent event pair from
//! correlated series has confidence at least `LB(σ, σ_m, n_x, μ)` in
//! `D_SEQ`, so what A-HTPGM prunes is exactly the low-confidence tail
//! (empirically: Fig 8).
//!
//! Since the one-plan refactor, A-HTPGM is not a separate code path but
//! a [`CorrelationFilter`] handed to the shared miners: this module is
//! the *only* place filters are constructed (lint rule R6), and every
//! execution axis — sequential/parallel via
//! [`mine_approximate_graph_with_sink`], sharded support-complete and
//! candidate-exchange via [`crate::ShardPlan::mine_approximate_into`] /
//! [`crate::ShardPlan::mine_approximate_exchange_into`] — consumes the
//! identical gates, so every composition yields the same pattern set as
//! plain [`mine_approximate`].

use ftpm_events::{EventRegistry, SequenceDatabase};
use ftpm_mi::CorrelationGraph;
use ftpm_timeseries::{SymbolicDatabase, VariableId};

use crate::candidates::CorrelationFilter;
use crate::config::MinerConfig;
use crate::parallel::mine_parallel_internal;
use crate::result::{MiningResult, MiningStats};
use crate::sink::{CollectSink, PatternSink};

/// Output of an approximate mining run: what the run produced (a
/// [`MiningResult`] for collecting entry points, bare [`MiningStats`]
/// for sink-driven ones) plus the correlation structures, so callers can
/// inspect what was pruned.
#[derive(Debug)]
pub struct ApproxOutcome<T = MiningResult> {
    /// What the run produced on the correlated subset.
    pub result: T,
    /// The MI threshold actually used.
    pub mu: f64,
    /// The correlation graph (Def 5.5).
    pub graph: CorrelationGraph,
    /// The correlated set `X_C` — variables with at least one edge.
    pub correlated: Vec<VariableId>,
}

/// Wraps a run's output with the correlation structures it was gated by.
fn outcome<T>(result: T, graph: CorrelationGraph) -> ApproxOutcome<T> {
    let mu = graph.mu();
    let correlated = graph.correlated_variables();
    ApproxOutcome {
        result,
        mu,
        graph,
        correlated,
    }
}

/// Builds the variable-level A-HTPGM filter: L1 admits events whose
/// series is in `X_C`, L2 admits pairs whose series share a `G_C` edge.
///
/// The single construction site for every variable-level approximate
/// path (R6): the sequential/parallel miners get it from the entry
/// points below, the exchange coordinator borrows one built here so
/// shards never invent their own edge gate, and external callers (the
/// reference oracle via [`crate::mine_reference_filtered`], tests) call
/// this rather than assembling gates of their own. `registry` must come
/// from the conversion of the database `graph` was built on (the shard
/// planner's master registry qualifies — shard databases are remapped
/// onto it before mining).
pub fn correlation_filter<'a>(
    graph: &'a CorrelationGraph,
    registry: &'a EventRegistry,
) -> CorrelationFilter<'a> {
    let mut in_xc = vec![false; graph.n_vertices()];
    for var in graph.correlated_variables() {
        in_xc[var.0 as usize] = true;
    }
    let allowed: Vec<bool> = registry
        .ids()
        .map(|e| in_xc[registry.variable(e).0 as usize])
        .collect();
    CorrelationFilter::new(
        allowed,
        Box::new(move |ei, ej| graph.has_edge(registry.variable(ei), registry.variable(ej))),
    )
}

/// Mines `seq_db` approximately with an explicit MI threshold `μ`
/// (Alg. 2). `syb` must be the symbolic database `seq_db` was converted
/// from — A-HTPGM computes NMI on `D_SYB`, not on `D_SEQ`.
///
/// The result is always a subset of [`crate::mine_exact`]'s patterns; the
/// accuracy/runtime trade-off is controlled by `μ` (Table IX, Fig 9).
pub fn mine_approximate(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
    mu: f64,
    cfg: &MinerConfig,
) -> ApproxOutcome {
    mine_collect(seq_db, CorrelationGraph::build(syb, mu), cfg, 1)
}

/// Mines approximately with `μ` chosen so the correlation graph keeps the
/// given fraction of the complete graph's edges (Def 5.6) — how the paper
/// parameterizes A-HTPGM in the evaluation ("A-HTPGM (80%)" keeps 80% of
/// edges).
pub fn mine_approximate_with_density(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
    density: f64,
    cfg: &MinerConfig,
) -> ApproxOutcome {
    mine_collect(seq_db, CorrelationGraph::build_with_density(syb, density), cfg, 1)
}

/// Multi-threaded [`mine_approximate`]: the same pattern set, supports
/// and confidences, mined by `threads` workers.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn mine_approximate_parallel(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
    mu: f64,
    cfg: &MinerConfig,
    threads: usize,
) -> ApproxOutcome {
    mine_collect(seq_db, CorrelationGraph::build(syb, mu), cfg, threads)
}

/// Sink-driven [`mine_approximate`]: emits each finished node into
/// `sink` instead of materializing a [`MiningResult`] — the approximate
/// counterpart of [`crate::mine_exact_with_sink`]. The outcome wraps the
/// run statistics.
pub fn mine_approximate_with_sink(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
    mu: f64,
    cfg: &MinerConfig,
    sink: &mut (dyn PatternSink + Send),
) -> ApproxOutcome<MiningStats> {
    let graph = CorrelationGraph::build(syb, mu);
    let stats = mine_approximate_graph_with_sink(seq_db, &graph, cfg, 1, sink);
    outcome(stats, graph)
}

/// Sink-driven, multi-threaded [`mine_approximate`] — the approximate
/// counterpart of [`crate::mine_exact_parallel_with_sink`].
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn mine_approximate_parallel_with_sink(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
    mu: f64,
    cfg: &MinerConfig,
    threads: usize,
    sink: &mut (dyn PatternSink + Send),
) -> ApproxOutcome<MiningStats> {
    let graph = CorrelationGraph::build(syb, mu);
    let stats = mine_approximate_graph_with_sink(seq_db, &graph, cfg, threads, sink);
    outcome(stats, graph)
}

/// The unsharded A-HTPGM primitive every entry point above reduces to:
/// mines `seq_db` under a caller-built correlation graph, emitting into
/// `sink` with `threads` workers (1 = the sequential miner). Build the
/// graph once — [`CorrelationGraph::build`] for a μ threshold,
/// [`CorrelationGraph::build_with_density`] for the density
/// parameterization — and reuse it across runs or pass it on to the
/// sharded variants; that is the "one plan" contract.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn mine_approximate_graph_with_sink(
    seq_db: &SequenceDatabase,
    graph: &CorrelationGraph,
    cfg: &MinerConfig,
    threads: usize,
    sink: &mut (dyn PatternSink + Send),
) -> MiningStats {
    let filter = correlation_filter(graph, seq_db.registry());
    mine_parallel_internal(seq_db, cfg, threads, Some(&filter), None, sink, None)
}

/// Collecting driver behind the non-sink entry points.
fn mine_collect(
    seq_db: &SequenceDatabase,
    graph: CorrelationGraph,
    cfg: &MinerConfig,
    threads: usize,
) -> ApproxOutcome {
    let mut sink = CollectSink::new();
    let stats = mine_approximate_graph_with_sink(seq_db, &graph, cfg, threads, &mut sink);
    outcome(sink.into_result(stats), graph)
}

/// Builds a symbolic database of per-event indicator series: one binary
/// series per distinct event of `seq_db`, with `On` at every step where
/// the event's variable carries the event's symbol.
///
/// This lifts the correlation analysis from variables to events, enabling
/// [`mine_approximate_event_level`]. In the returned database, variable
/// `i` corresponds to `EventId(i)` of `seq_db`'s registry.
pub fn event_indicator_database(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
) -> SymbolicDatabase {
    use ftpm_timeseries::{Alphabet, SymbolId, SymbolicSeries};
    let registry = seq_db.registry();
    let mut indicators = SymbolicDatabase::new(syb.start(), syb.step(), syb.n_steps());
    for event in registry.ids() {
        let var = registry.variable(event);
        let sym = registry.symbol(event);
        let series = syb.series(var);
        let symbols: Vec<SymbolId> = series
            .symbols()
            .iter()
            .map(|&s| SymbolId(u16::from(s == sym)))
            .collect();
        indicators.push(SymbolicSeries::new(
            registry.label(event),
            Alphabet::on_off(),
            symbols,
        ));
    }
    indicators
}

/// Event-level A-HTPGM — the extension the paper names as future work
/// (Section VII: "extend HTPGM to perform pruning at the event level").
///
/// Instead of one correlation-graph vertex per *series*, this builds one
/// vertex per *event* (via [`event_indicator_database`]) and requires an
/// edge between the two events of every L2 candidate pair. Finer-grained
/// than variable-level pruning: a variable pair can be correlated through
/// one symbol (say, both `Off`) while another symbol pair of the same
/// variables is independent — event-level pruning can drop the latter
/// without dropping the former.
///
/// Like variable-level A-HTPGM, the result is always a subset of
/// [`crate::mine_exact`].
pub fn mine_approximate_event_level(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
    mu: f64,
    cfg: &MinerConfig,
) -> ApproxOutcome {
    let indicators = event_indicator_database(syb, seq_db);
    let graph = CorrelationGraph::build(&indicators, mu);
    let result = {
        // Event-level variant of `correlation_filter`: the indicator
        // database has one vertex per event, so the mapping is the
        // identity instead of the registry's variable projection.
        let mut allowed = vec![false; seq_db.registry().len()];
        for var in graph.correlated_variables() {
            allowed[var.0 as usize] = true;
        }
        let filter = CorrelationFilter::new(
            allowed,
            Box::new(|ei, ej| graph.has_edge(VariableId(ei.0), VariableId(ej.0))),
        );
        let mut sink = CollectSink::new();
        let stats = mine_parallel_internal(seq_db, cfg, 1, Some(&filter), None, &mut sink, None);
        sink.into_result(stats)
    };
    outcome(result, graph)
}
