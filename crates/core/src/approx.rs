//! A-HTPGM: approximate mining using mutual information
//! (paper Section V, Algorithm 2).
//!
//! The approximate miner first builds the correlation graph `G_C` of the
//! symbolic database: an edge connects two series iff their normalized
//! mutual information is at least `μ` in both directions (Def 5.5). Only
//! series inside the correlated set `X_C` produce single events at L1,
//! and only event pairs whose series are connected in `G_C` are verified
//! at L2. Theorem 1 guarantees that every frequent event pair from
//! correlated series has confidence at least `LB(σ, σ_m, n_x, μ)` in
//! `D_SEQ`, so what A-HTPGM prunes is exactly the low-confidence tail
//! (empirically: Fig 8).

use ftpm_events::SequenceDatabase;
use ftpm_mi::CorrelationGraph;
use ftpm_timeseries::{SymbolicDatabase, VariableId};

use crate::config::MinerConfig;
use crate::exact::{mine_internal, CorrelationFilter};
use crate::result::MiningResult;
use crate::sink::CollectSink;

/// Output of an approximate mining run: the mining result plus the
/// correlation structures, so callers can inspect what was pruned.
#[derive(Debug)]
pub struct ApproxOutcome {
    /// The frequent temporal patterns found on the correlated subset.
    pub result: MiningResult,
    /// The MI threshold actually used.
    pub mu: f64,
    /// The correlation graph (Def 5.5).
    pub graph: CorrelationGraph,
    /// The correlated set `X_C` — variables with at least one edge.
    pub correlated: Vec<VariableId>,
}

/// Mines `seq_db` approximately with an explicit MI threshold `μ`
/// (Alg. 2). `syb` must be the symbolic database `seq_db` was converted
/// from — A-HTPGM computes NMI on `D_SYB`, not on `D_SEQ`.
///
/// The result is always a subset of [`crate::mine_exact`]'s patterns; the
/// accuracy/runtime trade-off is controlled by `μ` (Table IX, Fig 9).
pub fn mine_approximate(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
    mu: f64,
    cfg: &MinerConfig,
) -> ApproxOutcome {
    mine_with_graph(syb, seq_db, CorrelationGraph::build(syb, mu), cfg)
}

fn mine_with_graph(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
    graph: CorrelationGraph,
    cfg: &MinerConfig,
) -> ApproxOutcome {
    let mu = graph.mu();
    let correlated = graph.correlated_variables();
    let in_xc: Vec<bool> = {
        let mut v = vec![false; syb.n_variables()];
        for var in &correlated {
            v[var.0 as usize] = true;
        }
        v
    };

    let registry = seq_db.registry();
    let allowed: Vec<bool> = registry
        .ids()
        .map(|e| in_xc[registry.variable(e).0 as usize])
        .collect();
    let result = {
        let filter = CorrelationFilter {
            allowed,
            edge: Box::new(|ei, ej| {
                graph.has_edge(registry.variable(ei), registry.variable(ej))
            }),
        };
        let mut sink = CollectSink::new();
        let stats = mine_internal(seq_db, cfg, Some(&filter), None, &mut sink);
        sink.into_result(stats)
    };
    ApproxOutcome {
        result,
        mu,
        graph,
        correlated,
    }
}

/// Mines approximately with `μ` chosen so the correlation graph keeps the
/// given fraction of the complete graph's edges (Def 5.6) — how the paper
/// parameterizes A-HTPGM in the evaluation ("A-HTPGM (80%)" keeps 80% of
/// edges).
pub fn mine_approximate_with_density(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
    density: f64,
    cfg: &MinerConfig,
) -> ApproxOutcome {
    mine_with_graph(
        syb,
        seq_db,
        CorrelationGraph::build_with_density(syb, density),
        cfg,
    )
}

/// Builds a symbolic database of per-event indicator series: one binary
/// series per distinct event of `seq_db`, with `On` at every step where
/// the event's variable carries the event's symbol.
///
/// This lifts the correlation analysis from variables to events, enabling
/// [`mine_approximate_event_level`]. In the returned database, variable
/// `i` corresponds to `EventId(i)` of `seq_db`'s registry.
pub fn event_indicator_database(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
) -> SymbolicDatabase {
    use ftpm_timeseries::{Alphabet, SymbolId, SymbolicSeries};
    let registry = seq_db.registry();
    let mut indicators = SymbolicDatabase::new(syb.start(), syb.step(), syb.n_steps());
    for event in registry.ids() {
        let var = registry.variable(event);
        let sym = registry.symbol(event);
        let series = syb.series(var);
        let symbols: Vec<SymbolId> = series
            .symbols()
            .iter()
            .map(|&s| SymbolId(u16::from(s == sym)))
            .collect();
        indicators.push(SymbolicSeries::new(
            registry.label(event),
            Alphabet::on_off(),
            symbols,
        ));
    }
    indicators
}

/// Event-level A-HTPGM — the extension the paper names as future work
/// (Section VII: "extend HTPGM to perform pruning at the event level").
///
/// Instead of one correlation-graph vertex per *series*, this builds one
/// vertex per *event* (via [`event_indicator_database`]) and requires an
/// edge between the two events of every L2 candidate pair. Finer-grained
/// than variable-level pruning: a variable pair can be correlated through
/// one symbol (say, both `Off`) while another symbol pair of the same
/// variables is independent — event-level pruning can drop the latter
/// without dropping the former.
///
/// Like variable-level A-HTPGM, the result is always a subset of
/// [`crate::mine_exact`].
pub fn mine_approximate_event_level(
    syb: &SymbolicDatabase,
    seq_db: &SequenceDatabase,
    mu: f64,
    cfg: &MinerConfig,
) -> ApproxOutcome {
    let indicators = event_indicator_database(syb, seq_db);
    let graph = CorrelationGraph::build(&indicators, mu);
    let correlated = graph.correlated_variables();
    let allowed: Vec<bool> = {
        let mut v = vec![false; seq_db.registry().len()];
        for var in &correlated {
            v[var.0 as usize] = true;
        }
        v
    };
    let result = {
        let filter = CorrelationFilter {
            allowed,
            edge: Box::new(|ei, ej| {
                graph.has_edge(VariableId(ei.0), VariableId(ej.0))
            }),
        };
        let mut sink = CollectSink::new();
        let stats = mine_internal(seq_db, cfg, Some(&filter), None, &mut sink);
        sink.into_result(stats)
    };
    ApproxOutcome {
        result,
        mu,
        graph,
        correlated,
    }
}
