//! Two-phase candidate-exchange shard executor.
//!
//! The support-complete sharded path (see [`crate::shard`]) buys an exact
//! merge by giving up per-shard pruning: each shard mines with local
//! `σ_abs = 1` because a globally frequent pattern may sit below
//! threshold in every single shard. This module restores real pruning
//! with the classic scatter/gather split: shards and a coordinator walk
//! the Hierarchical Pattern Graph *in lockstep, one level at a time*.
//!
//! Each round `k`:
//!
//! 1. **Propose** — every shard enumerates its level-`k` candidates
//!    (support-complete locally, grown only from the previous round's
//!    survivors) and reports each with its **owned** support and owned
//!    clipped-occurrence count: "what do you see, and how often?".
//! 2. **Gate** — the coordinator sums owned supports across shards
//!    (window ownership partitions the window space, so the sums are the
//!    exact global statistics) and applies the *global* σ/δ Apriori gate.
//!    A pattern that cannot reach the global thresholds dies here — in
//!    every shard at once — before level `k + 1` is ever enumerated.
//!    This is sound for the same reason single-machine Apriori is: an
//!    occurrence of a `(k+1)`-pattern contains an occurrence of its
//!    `k`-prefix in the same window, so `supp(prefix) ≥ supp(P)` and
//!    `conf(prefix) ≥ conf(P)` hold on the *summed* statistics.
//! 3. **Retain/expand** — shards drop the losers' occurrence bindings
//!    and grow only the survivors into round `k + 1`.
//!
//! The surviving candidates accumulate into a [`crate::ShardMerge`],
//! which keeps the final confidence/stats pass and the deterministic
//! sorted emission — the merged output is bit-identical to the
//! support-complete path and to the unsharded [`crate::mine_exact`].
//!
//! Shards run their propose/expand stages concurrently on the scoped
//! worker machinery of [`crate::parallel`]; the thread budget is split
//! between shard-level concurrency and intra-shard workers (L2 pair
//! chunks, level-`k` node growth), so `--threads` composes with
//! `--shards`. The propose/recount calls on `ShardWorker` are the seam
//! a cross-machine deployment would turn into RPC messages: the
//! coordinator only ever sees `(candidate key, owned support, owned
//! clipped)` triples and broadcasts survivor sets.
//!
//! The exchange wire is *id-keyed*: a candidate is identified by its
//! [`DeltaKey`] — `(parent pattern id, appended event, packed delta
//! relation column)` — never by a cloned [`crate::Pattern`]. The
//! coordinator's [`crate::ShardMerge`] owns the hash-consed
//! [`crate::PatternPool`]; parents are prior-round survivors whose pool
//! ids the coordinator broadcast back in its verdict, so proposing,
//! summing, gating and retaining are all 16-byte-key map operations with
//! zero pattern allocation. Patterns materialize exactly once: in the
//! merge's final sorted emission.

use std::marker::PhantomData;
use std::time::{Duration, Instant};

use ftpm_events::{BoundaryKernel, BoundaryPolicy, BoundaryVisit, EventId};

use crate::candidates::{CorrelationFilter, L2Engine, PairRelations, WorkNode, WorkPattern, CONF_EPS};
use crate::config::MinerConfig;
use crate::exact::{grow_candidates, MAX_EVENTS_HARD_CAP};
use crate::index::DatabaseIndex;
use crate::merge::{merge_stats, ShardMerge};
use crate::occ::OccRange;
use crate::parallel::{par_for_each, par_map};
use crate::pool::{decode_column, DeltaKey, FnvHashMap, PatternId};
use crate::result::MiningStats;
use crate::shard::{Shard, ShardPlan};
use crate::sink::PatternSink;

/// How a shard behaved during one sharded mining run — the per-shard
/// observability the CLI and the `repro_exchange` gate report.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard position in the plan, `0..K`.
    pub shard: usize,
    /// Windows this shard owns (its share of the global `|D_SEQ|`).
    pub windows_owned: usize,
    /// Candidate patterns the shard generated across all levels. Under
    /// candidate exchange this counts only patterns grown from globally
    /// surviving parents; under the support-complete path it counts every
    /// pattern with owned support ≥ 1.
    pub candidates_proposed: usize,
    /// Proposed candidates killed by the global σ/δ gate (0 for the
    /// support-complete path, which defers all filtering to the merge).
    pub candidates_pruned: usize,
    /// Wall time the shard spent in its mining stages.
    pub wall: Duration,
}

/// Owned statistics of one proposed candidate: `(support, clipped)`.
type OwnedStats = (usize, usize);

/// The survivor verdict the coordinator broadcasts after each gate:
/// every surviving candidate key mapped to its master pool id (the
/// parent id of next round's extensions).
type Verdict = FnvHashMap<DeltaKey, PatternId>;

/// A work pattern's canonical exchange identity, read off the fields the
/// miner already tracks (prefix id, appended event, packed delta column).
fn delta_key(wp: &WorkPattern) -> DeltaKey {
    let events = wp.pattern.events();
    DeltaKey {
        parent: wp.parent_id,
        last: events[events.len() - 1],
        code: wp.code,
    }
}

/// Per-shard worker of the exchange executor: holds the shard's masked
/// index and the current level's occurrence bindings, and answers the
/// two protocol questions — [`propose`](ShardWorker::propose_l2) ("what
/// do you see?") and [`recount`](ShardWorker::recount) ("how often do
/// you see these?") — as independent calls.
pub(crate) struct ShardWorker<'a, K: BoundaryKernel> {
    shard: &'a Shard,
    /// Support-complete local config: global relation model and pruning
    /// switches, but `σ`/`δ` ≈ 0 — only the coordinator may threshold.
    local_cfg: MinerConfig,
    boundary: BoundaryPolicy,
    /// Intra-shard worker threads for the propose stages.
    threads: usize,
    /// Masked to the shard's owned windows (built by [`ShardWorker::l1`]
    /// in the first concurrent round): overlap-pad windows are invisible
    /// to mining — they exist only for the conversion's run extents — so
    /// every enumerated occurrence is an owned occurrence and local
    /// supports *are* owned supports.
    index: Option<DatabaseIndex>,
    /// Whether any owned instance is boundary-clipped (and visible under
    /// the active policy) — gates the per-occurrence clip scan.
    has_clipped: bool,
    /// Owned single-event supports reported by [`ShardWorker::l1`].
    l1_supports: Vec<usize>,
    /// Owned `(clipped, discarded)` instance counts from the L1 scan.
    l1_boundary: (u64, u64),
    /// Current level's nodes with occurrence bindings (survivors only,
    /// once the coordinator's verdict is in).
    level: Vec<WorkNode>,
    /// The A-HTPGM gate, built once globally by the coordinator (from
    /// the *global* correlation graph over the master registry — never
    /// per shard): L2 proposals skip MI-pruned pairs outright, so a
    /// pruned pair costs no verification in any shard.
    corr: Option<&'a CorrelationFilter<'a>>,
    /// The last propose round's candidates with owned statistics, keyed
    /// by [`DeltaKey`] — parents carry the master pool ids the
    /// coordinator assigned last round (shard databases speak the master
    /// registry, so level-2 parents are master root ids), which makes the
    /// key canonical across shards without any pattern cloning.
    proposals: FnvHashMap<DeltaKey, OwnedStats>,
    stats: MiningStats,
    proposed_total: usize,
    pruned_total: usize,
    wall: Duration,
    /// The monomorphized boundary kernel (fixed at dispatch).
    kernel: PhantomData<K>,
}

impl<'a, K: BoundaryKernel> ShardWorker<'a, K> {
    fn new(
        shard: &'a Shard,
        cfg: &MinerConfig,
        threads: usize,
        corr: Option<&'a CorrelationFilter<'a>>,
    ) -> Self {
        ShardWorker {
            shard,
            local_cfg: MinerConfig {
                sigma: f64::MIN_POSITIVE,
                delta: f64::MIN_POSITIVE,
                ..*cfg
            },
            boundary: cfg.relation.boundary,
            threads,
            corr,
            index: None,
            has_clipped: false,
            l1_supports: Vec::new(),
            l1_boundary: (0, 0),
            level: Vec::new(),
            proposals: FnvHashMap::default(),
            stats: MiningStats::default(),
            proposed_total: 0,
            pruned_total: 0,
            wall: Duration::ZERO,
            kernel: PhantomData,
        }
    }

    /// Builds the masked index and records the shard's owned single-event
    /// supports plus owned boundary counts — the L1 half of the exchange,
    /// and the merge's confidence denominators.
    fn l1(&mut self) {
        let index =
            DatabaseIndex::build_masked(&self.shard.db, self.boundary, Some(&self.shard.owned));
        let mut clipped = 0u64;
        for (si, seq) in self.shard.db.sequences().iter().enumerate() {
            if !self.shard.owned[si] {
                continue;
            }
            clipped += seq.instances().iter().filter(|i| i.is_clipped()).count() as u64;
        }
        let discarded = if self.boundary == BoundaryPolicy::Discard {
            clipped
        } else {
            0
        };
        // Under Discard the index hides clipped instances, so occurrence
        // tuples can never contain one and the clip scan is pointless.
        self.has_clipped = clipped > 0 && self.boundary != BoundaryPolicy::Discard;
        self.l1_supports = (0..self.shard.db.registry().len())
            .map(|e| index.support(EventId(e as u32)))
            .collect();
        self.l1_boundary = (clipped, discarded);
        self.index = Some(index);
    }

    /// Propose round for level 2: enumerates candidate pairs over the
    /// globally frequent events, support-complete locally, and records
    /// each resulting pattern with its owned statistics.
    fn propose_l2(&mut self, freq: &[EventId]) {
        // lint: allow(panic, structural invariant: the executor always runs l1 before later rounds)
        let index = self.index.as_ref().expect("l1 ran first");
        // Only locally present events can contribute an occurrence.
        let local: Vec<EventId> = freq
            .iter()
            .copied()
            .filter(|&e| index.support(e) > 0)
            .collect();
        // The G_C edge gate applies *at propose time*: an MI-pruned pair
        // is never enumerated, so no shard ever verifies it — strictly
        // fewer proposals than filtering the exchange output post hoc.
        let corr = self.corr;
        let pairs: Vec<(EventId, EventId)> = local
            .iter()
            .flat_map(|&ei| local.iter().map(move |&ej| (ei, ej)))
            .filter(|&(ei, ej)| corr.is_none_or(|c| c.allows_pair(ei, ej)))
            .collect();
        let engine = L2Engine::<K> {
            db: &self.shard.db,
            index,
            cfg: &self.local_cfg,
            sigma_abs: 1,
            kernel: PhantomData,
        };
        // Chunked by index range over the shared pair list (no per-chunk
        // copies) so the scoped workers amortize their bookkeeping.
        let starts: Vec<usize> = (0..pairs.len()).step_by(32).collect();
        let pairs = &pairs;
        let outputs = par_map(starts, self.threads, |start| {
            let mut stats = MiningStats::default();
            stats.nodes_verified.push(0);
            let mut nodes = Vec::new();
            for &(ei, ej) in &pairs[start..(start + 32).min(pairs.len())] {
                if let Some(node) = engine.try_pair(ei, ej, &mut stats) {
                    nodes.push(node);
                }
            }
            (nodes, stats)
        });
        self.stats.nodes_verified.push(0);
        self.stats.nodes_kept.push(0);
        self.stats.patterns_found.push(0);
        self.level.clear();
        for (nodes, stats) in outputs {
            merge_stats(&mut self.stats, stats);
            self.level.extend(nodes);
        }
        self.stats.nodes_kept[0] += self.level.len();
        self.stats.patterns_found[0] +=
            self.level.iter().map(|n| n.patterns.len()).sum::<usize>();
        self.collect_proposals();
    }

    /// Propose round for level `k ≥ 3`: grows the retained survivors by
    /// one chronologically-last event each, support-complete locally.
    fn propose_next(&mut self, freq: &[EventId], pair_relations: &PairRelations, k: usize) {
        let nodes = std::mem::take(&mut self.level);
        let db = &self.shard.db;
        // lint: allow(panic, structural invariant: the executor always runs l1 before later rounds)
        let index = self.index.as_ref().expect("l1 ran first");
        let cfg = &self.local_cfg;
        let outputs = par_map(nodes, self.threads, |node| {
            let mut stats = MiningStats::default();
            while stats.nodes_verified.len() < k - 1 {
                stats.nodes_verified.push(0);
                stats.nodes_kept.push(0);
                stats.patterns_found.push(0);
            }
            // The exact same extension loop as the unsharded miner —
            // local σ_abs = 1 gates only empty joints, and the Lemma 5
            // table is the *global* one the coordinator broadcast.
            let children = grow_candidates::<K>(
                db,
                index,
                cfg,
                &mut stats,
                &node,
                freq,
                pair_relations,
                1,
                k,
            );
            (children, stats)
        });
        for (children, stats) in outputs {
            merge_stats(&mut self.stats, stats);
            self.level.extend(children);
        }
        self.collect_proposals();
    }

    /// Records the current level's patterns as this round's proposals,
    /// with owned support (the masked index makes every occurrence an
    /// owned occurrence, so the pattern's support *is* its owned support)
    /// and owned clipped-occurrence count.
    fn collect_proposals(&mut self) {
        self.proposals.clear();
        for node in &self.level {
            for wp in &node.patterns {
                let clipped = if self.has_clipped {
                    let seqs = self.shard.db.sequences();
                    wp.occurrences
                        .iter()
                        .filter(|&oi| {
                            let insts = seqs[node.occs.seq(oi) as usize].instances();
                            node.occs
                                .tuple(oi)
                                .iter()
                                .any(|&ti| insts[ti as usize].is_clipped())
                        })
                        .count()
                } else {
                    0
                };
                self.proposals.insert(delta_key(wp), (wp.support, clipped));
            }
        }
        self.proposed_total += self.proposals.len();
    }

    /// Answers "how often do you see these?" for an arbitrary candidate
    /// set at the last proposed level: owned `(support, clipped)` per
    /// candidate, `(0, 0)` for candidates this shard has no owned
    /// occurrence of. Local propose rounds are support-complete, so a
    /// candidate absent from the proposals genuinely has owned support 0
    /// — this is the recount half of the exchange wire protocol.
    pub(crate) fn recount(&self, candidates: &[DeltaKey]) -> Vec<OwnedStats> {
        candidates
            .iter()
            .map(|key| self.proposals.get(key).copied().unwrap_or((0, 0)))
            .collect()
    }

    /// Applies the coordinator's verdict: drops every pattern (and every
    /// emptied node) the global gate killed, releasing their occurrence
    /// bindings before the next round, and stamps each survivor with the
    /// master pool id the coordinator assigned it — next round's
    /// extensions inherit it as their [`DeltaKey`] parent.
    fn retain(&mut self, verdict: &Verdict) {
        let before: usize = self.level.iter().map(|n| n.patterns.len()).sum();
        for node in &mut self.level {
            node.patterns.retain_mut(|wp| match verdict.get(&delta_key(wp)) {
                Some(&id) => {
                    wp.id = id;
                    true
                }
                None => false,
            });
            // Drop the losers' occurrence bindings: patterns hold
            // ascending disjoint arena ranges, so releasing them is one
            // compaction sweep over the node's flat columns.
            let mut kept: Vec<OccRange> =
                node.patterns.iter().map(|wp| wp.occurrences).collect();
            node.occs.compact(&mut kept);
            for (wp, range) in node.patterns.iter_mut().zip(kept) {
                wp.occurrences = range;
            }
        }
        self.level.retain(|n| !n.patterns.is_empty());
        let after: usize = self.level.iter().map(|n| n.patterns.len()).sum();
        self.pruned_total += before - after;
    }
}

/// Runs one stage on every worker, shards concurrent up to `outer`
/// threads, accumulating per-shard wall time. With `sched` set, shard
/// claims go through the seeded sequencer (see [`crate::schedule`]).
fn run_round<'a, K: BoundaryKernel, F>(
    workers: &mut [ShardWorker<'a, K>],
    outer: usize,
    sched: Option<&crate::schedule::SimCtl>,
    f: F,
) where
    F: Fn(&mut ShardWorker<'a, K>) + Sync,
{
    par_for_each(workers, outer, sched, |_, worker| {
        let started = Instant::now();
        f(worker);
        worker.wall += started.elapsed();
    });
}

/// Sums the workers' proposals, applies the global σ/δ gate, interns the
/// survivors into the merge's pattern pool and folds their statistics
/// into the id-indexed accumulator, then returns the verdict to
/// broadcast. Every map in the round is keyed by the 16-byte
/// [`DeltaKey`]; the only per-survivor pool work is one delta
/// interning (parents are already pooled prior-round survivors), and the
/// confidence numerator walks the pooled parent chain instead of an
/// events slice — no pattern is cloned or hashed vector-wide anywhere.
fn gate_round<K: BoundaryKernel>(
    workers: &[ShardWorker<'_, K>],
    event_supports: &[usize],
    sigma_abs: usize,
    delta: f64,
    merge: &mut ShardMerge,
) -> Verdict {
    let mut sums: FnvHashMap<DeltaKey, OwnedStats> = FnvHashMap::default();
    for worker in workers {
        for (key, (support, clipped)) in &worker.proposals {
            let entry = sums.entry(*key).or_insert((0, 0));
            entry.0 += support;
            entry.1 += clipped;
        }
    }
    let mut verdict = Verdict::default();
    for (key, (support, clipped)) in sums {
        if support < sigma_abs {
            continue;
        }
        let max_supp = merge
            .pool()
            .events_rev(key.parent)
            .map(|e| event_supports[e.0 as usize])
            .max()
            // lint: allow(panic, structural invariant: patterns always hold at least one event)
            .expect("patterns have events")
            .max(event_supports[key.last.0 as usize]);
        if (support as f64 / max_supp as f64) + CONF_EPS < delta {
            continue;
        }
        let id = merge.pool_mut().intern_packed(key);
        merge.add_by_id(id, support, clipped);
        verdict.insert(key, id);
    }
    verdict
}

/// Debug cross-check of the exchange protocol: recounting each survivor
/// against every shard must find its owned support somewhere — i.e. the
/// propose and recount answers agree as independent calls.
fn debug_assert_recount<K: BoundaryKernel>(
    workers: &[ShardWorker<'_, K>],
    verdict: &Verdict,
) {
    if cfg!(debug_assertions) {
        for candidate in verdict.keys() {
            let total: usize = workers
                .iter()
                .map(|w| w.recount(std::slice::from_ref(candidate))[0].0)
                .sum();
            debug_assert!(total > 0, "a survivor must have owned support somewhere");
        }
    }
}

/// Drives the two-phase exchange over a [`ShardPlan`]: concurrent shard
/// workers, a level-lockstep propose → gate → expand loop, and the final
/// [`ShardMerge`] confidence/emission pass into `sink`. Returns the
/// merged run statistics and one [`ShardReport`] per shard.
///
/// `corr` is the A-HTPGM composition seam: the coordinator holds the one
/// globally-built [`CorrelationFilter`] (see [`crate::approx`]) and
/// applies it exactly where the unsharded miner would — the round-1
/// global frequent-event list keeps only `X_C` events, and every
/// worker's L2 propose skips MI-pruned pairs — so the merged output
/// equals unsharded [`crate::mine_approximate`] identically.
pub(crate) fn mine_exchange_internal(
    plan: &ShardPlan,
    cfg: &MinerConfig,
    threads: usize,
    corr: Option<&CorrelationFilter<'_>>,
    sink: &mut dyn PatternSink,
    sched: Option<&crate::schedule::SimCtl>,
) -> (MiningStats, Vec<ShardReport>) {
    // Monomorphization seam: fix the boundary kernel once per run (the
    // same dispatch point discipline as `exact::mine_internal`).
    struct Run<'a, 'b, 'c> {
        plan: &'a ShardPlan,
        cfg: &'a MinerConfig,
        threads: usize,
        corr: Option<&'a CorrelationFilter<'c>>,
        sink: &'a mut dyn PatternSink,
        sched: Option<&'b crate::schedule::SimCtl>,
    }
    impl BoundaryVisit for Run<'_, '_, '_> {
        type Out = (MiningStats, Vec<ShardReport>);
        fn visit<K: BoundaryKernel>(self) -> Self::Out {
            mine_exchange_internal_k::<K>(
                self.plan,
                self.cfg,
                self.threads,
                self.corr,
                self.sink,
                self.sched,
            )
        }
    }
    cfg.relation.boundary.dispatch(Run {
        plan,
        cfg,
        threads,
        corr,
        sink,
        sched,
    })
}

/// [`mine_exchange_internal`], monomorphized over the boundary kernel.
fn mine_exchange_internal_k<K: BoundaryKernel>(
    plan: &ShardPlan,
    cfg: &MinerConfig,
    threads: usize,
    corr: Option<&CorrelationFilter<'_>>,
    sink: &mut dyn PatternSink,
    sched: Option<&crate::schedule::SimCtl>,
) -> (MiningStats, Vec<ShardReport>) {
    debug_assert!(
        plan.maps_are_identity(),
        "exchange proposals are keyed without id translation: shard databases \
         must already speak the master registry (ShardPlanner guarantees this; \
         remote shards with foreign registries need the MergeSink seam)"
    );
    let shards = plan.shards();
    let n_shards = shards.len().max(1);
    let threads = threads.max(1);
    // The thread budget splits between shard-level concurrency and
    // intra-shard workers: up to K concurrent shards, each with its share
    // of the remaining parallelism (a single shard gets the full budget).
    let outer = threads.min(n_shards);
    // Scheduled runs force intra-shard parallelism to 1: the exchange
    // protocol's concurrency story is the shard-level round loop, and the
    // sequencer must be the only source of interleaving.
    let inner = if sched.is_some() {
        1
    } else {
        (threads / n_shards).max(1)
    };
    let mut workers: Vec<ShardWorker<'_, K>> = shards
        .iter()
        .map(|shard| ShardWorker::new(shard, cfg, inner, corr))
        .collect();
    let mut merge = ShardMerge::new(plan.shared_registry(), plan.n_windows());
    let sigma_abs = cfg.absolute_support(plan.n_windows());
    let max_events = cfg.max_events.min(MAX_EVENTS_HARD_CAP);

    // ---- Round 1: owned L1 supports and boundary counts ----
    run_round(&mut workers, outer, sched, |w| w.l1());
    let mut event_supports = vec![0usize; plan.registry().len()];
    let (mut clipped_total, mut discarded_total) = (0u64, 0u64);
    for worker in &workers {
        for (e, &s) in worker.l1_supports.iter().enumerate() {
            event_supports[e] += s;
        }
        clipped_total += worker.l1_boundary.0;
        discarded_total += worker.l1_boundary.1;
    }
    // Events outside X_C are invisible to the whole run — the merge's
    // frequent-event list and confidence denominators must match the
    // unsharded approximate miner's filtered L1, and filtered patterns
    // only ever reference allowed events.
    for (e, &s) in event_supports.iter().enumerate() {
        if corr.is_none_or(|c| c.allows_event(EventId(e as u32))) {
            merge.add_event_support(EventId(e as u32), s);
        }
    }
    merge.set_boundary_counts(clipped_total, discarded_total);
    let freq: Vec<EventId> = (0..event_supports.len())
        .filter(|&e| corr.is_none_or(|c| c.allows_event(EventId(e as u32))))
        .filter(|&e| event_supports[e] >= sigma_abs)
        .map(|e| EventId(e as u32))
        .collect();

    // ---- Round 2: L2 propose → global gate → retain ----
    run_round(&mut workers, outer, sched, |w| w.propose_l2(&freq));
    let mut verdict = gate_round(&workers, &event_supports, sigma_abs, cfg.delta, &mut merge);
    debug_assert_recount(&workers, &verdict);
    run_round(&mut workers, outer, sched, |w| w.retain(&verdict));

    // The survivors are by construction the globally frequent 2-event
    // patterns — the transitivity table of Lemmas 4–7, identical to the
    // one the unsharded miner builds, shared read-only by every shard.
    // A level-2 key decodes in place: the parent is a root (so its id is
    // the first event's id) and the packed column holds one relation.
    let mut pair_relations = PairRelations::new(plan.registry().len());
    for key in verdict.keys() {
        pair_relations.insert(
            EventId(key.parent.0),
            decode_column(key.code, 1)[0],
            key.last,
        );
    }

    // ---- Rounds 3+: lockstep growth of the surviving candidates ----
    for k in 3..=max_events {
        if verdict.is_empty() {
            break;
        }
        run_round(&mut workers, outer, sched, |w| {
            w.propose_next(&freq, &pair_relations, k);
        });
        verdict = gate_round(&workers, &event_supports, sigma_abs, cfg.delta, &mut merge);
        debug_assert_recount(&workers, &verdict);
        run_round(&mut workers, outer, sched, |w| w.retain(&verdict));
    }

    // ---- Final pass: merged stats, thresholds (idempotent here — the
    // gate already applied them), deterministic sorted emission ----
    let mut reports = Vec::with_capacity(workers.len());
    for worker in workers {
        merge.add_stats(worker.stats);
        reports.push(ShardReport {
            shard: worker.shard.index,
            windows_owned: worker.shard.owned.iter().filter(|&&o| o).count(),
            candidates_proposed: worker.proposed_total,
            candidates_pruned: worker.pruned_total,
            wall: worker.wall,
        });
    }
    (merge.finish_into(cfg, sink), reports)
}
