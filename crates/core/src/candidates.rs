//! Shared candidate engine: the Apriori support/confidence gates
//! (Lemmas 2–3) and the L2 pair-verification step, in one place.
//!
//! Both [`crate::mine_exact`] and [`crate::mine_exact_parallel`] drive
//! this engine for candidate generation, and level-`k` growth reuses the
//! same gates, so the thresholds — including the confidence tolerance
//! [`CONF_EPS`] — are applied identically everywhere. (Historically the
//! parallel miner carried its own hard-coded epsilon at the L2 gate,
//! which is exactly the kind of drift this module exists to prevent.)

use std::marker::PhantomData;

use ftpm_bitmap::Bitmap;
use ftpm_events::{BoundaryKernel, EventId, SequenceDatabase, TemporalRelation};

use crate::config::MinerConfig;
use crate::index::DatabaseIndex;
use crate::occ::{OccArena, OccRange};
use crate::pattern::Pattern;
use crate::pool::{pack_relation, PatternId};
use crate::result::MiningStats;

/// Tolerance for `conf >= delta` comparisons, so that thresholds like 0.7
/// accept patterns whose confidence is exactly 0.7 up to floating noise.
pub(crate) const CONF_EPS: f64 = 1e-9;

/// The A-HTPGM seam (Alg. 2 lines 7–11): restricts candidate generation
/// to correlated series, identically in every execution path.
///
/// The filter acts at exactly two points of the level-wise walk — L1
/// keeps only events whose series is in the correlated set `X_C`
/// ([`CorrelationFilter::allows_event`]), and L2 keeps only pairs whose
/// series share a correlation-graph edge
/// ([`CorrelationFilter::allows_pair`]). Levels ≥ 3 need no check of
/// their own: they grow from surviving L2 nodes over the filtered L1
/// event list, so the restriction propagates structurally. Every miner
/// (sequential, parallel, reference, exchange) consumes the same filter
/// through these two methods, which is what makes "merged approximate
/// sharded output equals unsharded `mine_approximate`" an identity
/// rather than an approximation.
///
/// Construction is deliberately confined to [`crate::approx`] (and the
/// exchange coordinator, which borrows the filter built there) — lint
/// rule R6 — so there is exactly one place that decides what "correlated"
/// means.
pub struct CorrelationFilter<'a> {
    /// `allowed[event]` — the event's series is in the correlated set X_C.
    allowed: Vec<bool>,
    /// Edge test between the series of two events.
    edge: Box<dyn Fn(EventId, EventId) -> bool + Sync + 'a>,
}

impl<'a> CorrelationFilter<'a> {
    /// Assembles a filter from its two gates. `pub(crate)` on purpose:
    /// the only constructors live in [`crate::approx`].
    pub(crate) fn new(
        allowed: Vec<bool>,
        edge: Box<dyn Fn(EventId, EventId) -> bool + Sync + 'a>,
    ) -> Self {
        CorrelationFilter { allowed, edge }
    }

    /// L1 gate: is `e`'s series in the correlated set X_C?
    #[inline]
    pub(crate) fn allows_event(&self, e: EventId) -> bool {
        self.allowed[e.0 as usize]
    }

    /// L2 gate: do the series of `ei` and `ej` share a G_C edge?
    #[inline]
    pub(crate) fn allows_pair(&self, ei: EventId, ej: EventId) -> bool {
        (self.edge)(ei, ej)
    }
}

/// Final σ/δ check on a verified candidate: returns the confidence iff
/// `support ≥ sigma_abs` and `support / max_supp ≥ delta − CONF_EPS`.
#[inline]
pub(crate) fn passes_thresholds(
    support: usize,
    max_supp: usize,
    sigma_abs: usize,
    delta: f64,
) -> Option<f64> {
    if support < sigma_abs {
        return None;
    }
    let confidence = support as f64 / max_supp as f64;
    if confidence + CONF_EPS < delta {
        return None;
    }
    Some(confidence)
}

/// The Apriori gate (Lemmas 2–3) on a candidate event combination: true
/// iff the candidate must proceed to instance verification. With Apriori
/// pruning off, only empty joint bitmaps are skipped (and not counted as
/// pruned — nothing to scan either way).
#[inline]
pub(crate) fn apriori_gate(
    cfg: &MinerConfig,
    sigma_abs: usize,
    joint_supp: usize,
    max_supp: usize,
    stats: &mut MiningStats,
) -> bool {
    if !cfg.pruning.apriori {
        return joint_supp > 0;
    }
    // Lemma 2: supp(P) <= supp(E_1, …, E_k).
    if joint_supp < sigma_abs {
        stats.apriori_pruned += 1;
        return false;
    }
    // Lemma 3: conf(P) <= conf(E_1, …, E_k).
    if (joint_supp as f64 / max_supp as f64) + CONF_EPS < cfg.delta {
        stats.apriori_pruned += 1;
        return false;
    }
    true
}

/// Working data of one frequent pattern during mining: its occurrence
/// bindings are needed to grow the next level, then dropped.
pub(crate) struct WorkPattern {
    pub(crate) pattern: Pattern,
    pub(crate) support: usize,
    pub(crate) confidence: f64,
    /// The pattern's occurrence bindings: a range of rows in the owning
    /// node's [`WorkNode::occs`] arena.
    pub(crate) occurrences: OccRange,
    /// Pool identity, assigned by the exchange coordinator when this
    /// pattern survives the global gate; [`PatternId::NONE`] in the
    /// non-exchange miners and before gating.
    pub(crate) id: PatternId,
    /// Pool identity of the (k−1)-prefix this pattern was grown from —
    /// with [`WorkPattern::code`], the pattern's [`crate::pool::DeltaKey`]
    /// the exchange executor keys proposals on instead of cloning the
    /// pattern. Level-2 patterns use the first event's root id.
    pub(crate) parent_id: PatternId,
    /// The delta relation column, packed 2 bits per relation (already
    /// computed as the extension grouping key in `extend_node`).
    pub(crate) code: u64,
}

/// Working node: event combination + joint bitmap + patterns, plus the
/// struct-of-arrays arena holding every pattern's occurrence bindings
/// (each binding row: sequence id + instance indices in chronological
/// order). Patterns own disjoint ascending ranges of the arena.
pub(crate) struct WorkNode {
    pub(crate) events: Vec<EventId>,
    pub(crate) bitmap: Bitmap,
    pub(crate) support: usize,
    pub(crate) patterns: Vec<WorkPattern>,
    pub(crate) occs: OccArena,
}

/// Dense `events × events` table of frequent 2-event relations: 3 bits
/// per ordered pair, bit `r` set iff `(E_i, r, E_j)` is a frequent,
/// high-confidence 2-event pattern.
pub(crate) struct PairRelations {
    masks: Vec<u8>,
    n_events: usize,
}

impl PairRelations {
    pub(crate) fn new(n_events: usize) -> Self {
        PairRelations {
            masks: vec![0; n_events * n_events],
            n_events,
        }
    }

    pub(crate) fn insert(&mut self, ei: EventId, r: TemporalRelation, ej: EventId) {
        self.masks[ei.0 as usize * self.n_events + ej.0 as usize] |= 1 << r.index();
    }

    #[inline]
    pub(crate) fn contains(&self, ei: EventId, r: TemporalRelation, ej: EventId) -> bool {
        self.masks[ei.0 as usize * self.n_events + ej.0 as usize] & (1 << r.index()) != 0
    }

    /// True iff `ei` forms at least one frequent relation with `ek` —
    /// the per-node Lemma 5 test.
    #[inline]
    pub(crate) fn any(&self, ei: EventId, ek: EventId) -> bool {
        self.masks[ei.0 as usize * self.n_events + ek.0 as usize] != 0
    }
}

/// The L2 candidate engine: gates one ordered event pair through Apriori
/// pruning and verifies the survivors on instances. One instance is
/// shared by every L2 code path (sequential loop, parallel shards).
///
/// The engine is monomorphized over the boundary kernel `K` — the
/// [`ftpm_events::BoundaryPolicy`] variant fixed at compile time — so
/// the per-instance interval/order decisions in [`verify_pair`] are
/// straight-line code. Miners pick `K` once per run through
/// [`ftpm_events::BoundaryPolicy::dispatch`] at their entry point.
///
/// [`verify_pair`]: L2Engine::verify_pair
pub(crate) struct L2Engine<'a, K: BoundaryKernel> {
    pub(crate) db: &'a SequenceDatabase,
    pub(crate) index: &'a DatabaseIndex,
    pub(crate) cfg: &'a MinerConfig,
    pub(crate) sigma_abs: usize,
    pub(crate) kernel: PhantomData<K>,
}

impl<K: BoundaryKernel> L2Engine<'_, K> {
    /// Runs one ordered candidate pair `(ei, ej)` end to end: Apriori
    /// gate, then instance verification. `stats.nodes_verified[0]` counts
    /// the pairs that reach verification.
    pub(crate) fn try_pair(
        &self,
        ei: EventId,
        ej: EventId,
        stats: &mut MiningStats,
    ) -> Option<WorkNode> {
        let max_supp = self.index.support(ei).max(self.index.support(ej));
        if self.cfg.pruning.apriori {
            // Gate on the fused AND+popcount first: most candidates die
            // here, and the joint bitmap is only materialized for the
            // survivors.
            let joint_supp = self.index.joint_support(ei, ej);
            if !apriori_gate(self.cfg, self.sigma_abs, joint_supp, max_supp, stats) {
                return None;
            }
        } else if self.index.bitmap(ei).is_disjoint(self.index.bitmap(ej)) {
            // Without Apriori pruning only the zero/nonzero answer gates
            // the pair; the early-exit kernel gives it without a full
            // popcount pass.
            return None;
        }
        let joint = self.index.bitmap(ei).and(self.index.bitmap(ej));
        stats.nodes_verified[0] += 1;
        self.verify_pair(ei, ej, &joint, max_supp, stats)
    }

    /// Step 2.2: verify the instance pairs of one candidate event pair
    /// and collect its frequent relations.
    fn verify_pair(
        &self,
        ei: EventId,
        ej: EventId,
        joint: &Bitmap,
        max_supp: usize,
        stats: &mut MiningStats,
    ) -> Option<WorkNode> {
        let n_seqs = self.db.len();
        // One accumulator per relation type.
        let mut bitmaps = [
            Bitmap::new(n_seqs),
            Bitmap::new(n_seqs),
            Bitmap::new(n_seqs),
        ];
        let mut occs = [OccArena::new(2), OccArena::new(2), OccArena::new(2)];

        // The boundary kernel `K` decides which interval of each instance
        // the relation model sees (clipped view, true run extent, or none
        // at all). Under `Discard` the index already hides clipped
        // instances, so the `None` arms are just belt-and-braces.
        let rel = &self.cfg.relation;
        for seq_id in joint.iter_ones() {
            let seq = &self.db.sequences()[seq_id];
            for &ii in self.index.instances_in(seq_id, ei) {
                let inst_i = &seq.instances()[ii as usize];
                let Some(iv_i) = K::interval(inst_i) else {
                    continue;
                };
                let key_i = K::key(inst_i);
                for &jj in self.index.instances_in(seq_id, ej) {
                    let inst_j = &seq.instances()[jj as usize];
                    let Some(iv_j) = K::interval(inst_j) else {
                        continue;
                    };
                    // The node (Ei, Ej) binds Ei to the chronologically first
                    // instance; the opposite order belongs to node (Ej, Ei).
                    if key_i >= K::key(inst_j) {
                        continue;
                    }
                    stats.instance_checks += 1;
                    // Maximal-duration constraint (Section III-C). We use the
                    // monotone reading — the whole occurrence must fit inside
                    // a t_max window — so that every prefix of a valid
                    // occurrence is itself valid and level-wise growth stays
                    // complete (see DESIGN.md).
                    let max_end = iv_i.end.max(iv_j.end);
                    if !rel.within_t_max(iv_i.start, max_end) {
                        continue;
                    }
                    if let Some(r) = rel.relate(&iv_i, &iv_j) {
                        bitmaps[r.index()].set(seq_id);
                        occs[r.index()].push(seq_id as u32, &[ii, jj]);
                    }
                }
            }
        }

        let mut node_patterns = Vec::new();
        let mut node_occs = OccArena::new(2);
        for r in TemporalRelation::ALL {
            let support = bitmaps[r.index()].count_ones();
            let Some(confidence) =
                passes_thresholds(support, max_supp, self.sigma_abs, self.cfg.delta)
            else {
                continue;
            };
            let scratch = &occs[r.index()];
            let all = scratch.since(0);
            node_patterns.push(WorkPattern {
                pattern: Pattern::pair(ei, r, ej),
                support,
                confidence,
                occurrences: node_occs.append_from(scratch, all),
                id: PatternId::NONE,
                parent_id: PatternId(ei.0),
                code: pack_relation(0, r),
            });
        }
        if node_patterns.is_empty() {
            return None; // a "brown" node: frequent pair, no frequent pattern.
        }
        Some(WorkNode {
            events: vec![ei, ej],
            support: joint.count_ones(),
            bitmap: joint.clone(),
            patterns: node_patterns,
            occs: node_occs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_relations_dense_table() {
        let mut t = PairRelations::new(4);
        t.insert(EventId(1), TemporalRelation::Contain, EventId(3));
        assert!(t.contains(EventId(1), TemporalRelation::Contain, EventId(3)));
        assert!(!t.contains(EventId(1), TemporalRelation::Follow, EventId(3)));
        assert!(!t.contains(EventId(3), TemporalRelation::Contain, EventId(1)));
        assert!(t.any(EventId(1), EventId(3)));
        assert!(!t.any(EventId(0), EventId(3)));
    }

    #[test]
    fn thresholds_tolerate_float_noise() {
        // 7/10 vs delta = 0.7: must pass despite floating representation.
        assert!(passes_thresholds(7, 10, 1, 0.7).is_some());
        assert!(passes_thresholds(6, 10, 1, 0.7).is_none());
        assert!(passes_thresholds(7, 10, 8, 0.7).is_none());
        let conf = passes_thresholds(3, 4, 1, 0.5).expect("passes");
        assert!((conf - 0.75).abs() < 1e-12);
    }

    #[test]
    fn apriori_gate_counts_pruned() {
        let cfg = MinerConfig::new(0.5, 0.5);
        let mut stats = MiningStats::default();
        // Support below sigma: pruned.
        assert!(!apriori_gate(&cfg, 5, 4, 8, &mut stats));
        // Confidence bound below delta: pruned.
        assert!(!apriori_gate(&cfg, 2, 3, 10, &mut stats));
        // Survivor.
        assert!(apriori_gate(&cfg, 2, 6, 8, &mut stats));
        assert_eq!(stats.apriori_pruned, 2);
        // Pruning off: only empty bitmaps are skipped, without counting.
        let no_prune = MinerConfig::new(0.5, 0.5)
            .with_pruning(crate::config::PruningConfig::NO_PRUNE);
        assert!(!apriori_gate(&no_prune, 5, 0, 8, &mut stats));
        assert!(apriori_gate(&no_prune, 5, 1, 8, &mut stats));
        assert_eq!(stats.apriori_pruned, 2);
    }
}
