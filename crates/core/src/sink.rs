//! Streaming pattern output — the [`PatternSink`] abstraction.
//!
//! HTPGM's memory story (paper Table VIII) is that the Hierarchical
//! Pattern Graph releases working state level by level; materializing
//! every mined pattern in a `Vec` at the end would squander exactly that
//! property on large runs (the NIST demo emits ~800k patterns). This
//! module turns the miner into a *producer*: as each HPG node finishes,
//! its frequent patterns are emitted into a [`PatternSink`], and the sink
//! decides whether to collect ([`CollectSink`] — the classic
//! [`MiningResult`] API), count ([`CountingSink`] — stats-only runs), or
//! stream to a writer ([`CsvSink`], [`JsonlSink`]) so the result is
//! never materialized — only the miner's own working state (the L2
//! candidate nodes and the occurrence bindings of the subtree currently
//! being grown) occupies memory.
//!
//! The same seam is what shard-by-time-range mining plugs into: each
//! per-shard miner emits into a [`crate::MergeSink`] that forwards owned
//! pattern statistics across the merge boundary instead of buffering a
//! per-shard result, and [`crate::ShardMerge::finish_into`] streams the
//! merged output into whatever downstream sink the caller chose — so
//! `ftpm mine --shards K --stream` composes sharding with the writer
//! sinks without ever materializing a pattern `Vec`. A future network
//! sink slots into the same boundary (see ROADMAP "Sharding/scale").
//!
//! Writer sinks record the first I/O error internally and go quiet; the
//! error is surfaced by [`PatternSink::finish`], so the mining hot path
//! stays infallible.
//!
//! # Example
//!
//! ```
//! use ftpm_core::{mine_exact_with_sink, CountingSink, MinerConfig};
//! use ftpm_datagen::random_sequence_database;
//!
//! let db = random_sequence_database(7, 6, 3, 2, 40);
//! let mut sink = CountingSink::default();
//! let stats = mine_exact_with_sink(&db, &MinerConfig::new(0.3, 0.3), &mut sink);
//! assert_eq!(sink.patterns(), stats.patterns_found.iter().sum::<usize>());
//! ```

use std::io::{self, Write};

use ftpm_events::{EventId, EventRegistry};

use crate::hpg::{HierarchicalPatternGraph, Level, Node};
use crate::result::{FrequentPattern, MiningResult, MiningStats};

/// Receives the output of a mining run incrementally, one Hierarchical
/// Pattern Graph node at a time.
///
/// The miner calls [`begin`](PatternSink::begin) once, then
/// [`node`](PatternSink::node) for every archived pattern-bearing node
/// (in discovery order for the single-threaded miner; interleaved across
/// shards for the parallel one), and the driver calls
/// [`finish`](PatternSink::finish) at the end.
pub trait PatternSink {
    /// Announces the run: the frequent single events of L1 with their
    /// supports. Called once, before any node.
    fn begin(&mut self, frequent_events: &[(EventId, usize)]) {
        let _ = frequent_events;
    }

    /// One archived HPG node: its event combination, joint support,
    /// event count `k` (≥ 2), and the node's frequent patterns.
    fn node(
        &mut self,
        events: Vec<EventId>,
        support: usize,
        k: usize,
        patterns: Vec<FrequentPattern>,
    );

    /// Flushes buffered output and reports the first I/O error, if any.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Collects everything into the classic [`MiningResult`]: the pattern
/// `Vec`, the HPG summary with pattern indices, and the L1 events.
#[derive(Debug, Default)]
pub struct CollectSink {
    frequent_events: Vec<(EventId, usize)>,
    patterns: Vec<FrequentPattern>,
    graph: HierarchicalPatternGraph,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// Consumes the sink into a [`MiningResult`] with the given run
    /// statistics.
    pub fn into_result(self, stats: MiningStats) -> MiningResult {
        MiningResult {
            patterns: self.patterns,
            frequent_events: self.frequent_events,
            graph: self.graph,
            stats,
        }
    }
}

impl PatternSink for CollectSink {
    fn begin(&mut self, frequent_events: &[(EventId, usize)]) {
        self.frequent_events = frequent_events.to_vec();
    }

    fn node(
        &mut self,
        events: Vec<EventId>,
        support: usize,
        k: usize,
        patterns: Vec<FrequentPattern>,
    ) {
        while self.graph.levels.len() < k - 1 {
            self.graph.levels.push(Level::default());
        }
        let mut pattern_indices = Vec::with_capacity(patterns.len());
        for fp in patterns {
            pattern_indices.push(self.patterns.len());
            self.patterns.push(fp);
        }
        self.graph.levels[k - 2].nodes.push(Node {
            events,
            support,
            pattern_indices,
        });
    }
}

/// Counts what flows through without keeping any of it — for stats-only
/// runs where even the pattern `Vec` would be waste.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    patterns: usize,
    nodes: usize,
    frequent_events: usize,
    max_len: usize,
}

impl CountingSink {
    /// Total frequent patterns emitted.
    pub fn patterns(&self) -> usize {
        self.patterns
    }

    /// Total pattern-bearing HPG nodes emitted.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of frequent single events announced at L1.
    pub fn frequent_events(&self) -> usize {
        self.frequent_events
    }

    /// Longest pattern seen (event count); 0 if none.
    pub fn max_len(&self) -> usize {
        self.max_len
    }
}

impl PatternSink for CountingSink {
    fn begin(&mut self, frequent_events: &[(EventId, usize)]) {
        self.frequent_events = frequent_events.len();
    }

    fn node(
        &mut self,
        _events: Vec<EventId>,
        _support: usize,
        k: usize,
        patterns: Vec<FrequentPattern>,
    ) {
        self.nodes += 1;
        self.patterns += patterns.len();
        self.max_len = self.max_len.max(k);
    }
}

/// Escapes a CSV field per RFC 4180: always quoted, `"` doubled.
fn csv_field(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        if c == '"' {
            out.push('"');
        }
        out.push(c);
    }
    out.push('"');
}

/// Escapes a JSON string body (without the surrounding quotes).
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Streams patterns as CSV rows
/// (`pattern,length,support,rel_support,confidence,clipped_occurrences`),
/// one row per pattern, header first. Pattern text uses the paper's
/// triple notation rendered through the event registry;
/// `clipped_occurrences` counts the pattern's bound occurrences that
/// touch a window-boundary-clipped instance (see
/// [`FrequentPattern::clipped_occurrences`]).
pub struct CsvSink<'r, W: Write> {
    out: W,
    registry: &'r EventRegistry,
    written: u64,
    err: Option<io::Error>,
    line: String,
}

impl<'r, W: Write> CsvSink<'r, W> {
    /// Wraps a writer; `registry` renders event labels.
    pub fn new(out: W, registry: &'r EventRegistry) -> Self {
        CsvSink {
            out,
            registry,
            written: 0,
            err: None,
            line: String::new(),
        }
    }

    /// Number of pattern rows written so far (excludes the header).
    pub fn written(&self) -> u64 {
        self.written
    }

    fn put(&mut self) {
        if self.err.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(self.line.as_bytes()) {
            self.err = Some(e);
        }
    }
}

impl<W: Write> PatternSink for CsvSink<'_, W> {
    fn begin(&mut self, _frequent_events: &[(EventId, usize)]) {
        self.line.clear();
        self.line
            .push_str("pattern,length,support,rel_support,confidence,clipped_occurrences\n");
        self.put();
    }

    fn node(
        &mut self,
        _events: Vec<EventId>,
        _support: usize,
        k: usize,
        patterns: Vec<FrequentPattern>,
    ) {
        use std::fmt::Write as _;
        for fp in &patterns {
            self.line.clear();
            let text = fp.pattern.display(self.registry).to_string();
            csv_field(&text, &mut self.line);
            // lint: allow(write_discard, fmt::Write to String is infallible)
            let _ = writeln!(
                self.line,
                ",{k},{},{},{},{}",
                fp.support, fp.rel_support, fp.confidence, fp.clipped_occurrences
            );
            self.put();
            if self.err.is_some() {
                return;
            }
            self.written += 1;
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// Streams patterns as JSON Lines: one object per pattern with fields
/// `pattern` (rendered triple notation), `events` (raw event ids),
/// `length`, `support`, `rel_support`, `confidence`, and
/// `clipped_occurrences` (occurrences touching a window-boundary-clipped
/// instance, see [`FrequentPattern::clipped_occurrences`]).
pub struct JsonlSink<'r, W: Write> {
    out: W,
    registry: &'r EventRegistry,
    written: u64,
    err: Option<io::Error>,
    line: String,
}

impl<'r, W: Write> JsonlSink<'r, W> {
    /// Wraps a writer; `registry` renders event labels.
    pub fn new(out: W, registry: &'r EventRegistry) -> Self {
        JsonlSink {
            out,
            registry,
            written: 0,
            err: None,
            line: String::new(),
        }
    }

    /// Number of pattern lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl<W: Write> PatternSink for JsonlSink<'_, W> {
    fn node(
        &mut self,
        _events: Vec<EventId>,
        _support: usize,
        k: usize,
        patterns: Vec<FrequentPattern>,
    ) {
        use std::fmt::Write as _;
        if self.err.is_some() {
            return;
        }
        for fp in &patterns {
            self.line.clear();
            self.line.push_str("{\"pattern\":\"");
            let text = fp.pattern.display(self.registry).to_string();
            json_escape(&text, &mut self.line);
            self.line.push_str("\",\"events\":[");
            for (i, e) in fp.pattern.events().iter().enumerate() {
                if i > 0 {
                    self.line.push(',');
                }
                // lint: allow(write_discard, fmt::Write to String is infallible)
                let _ = write!(self.line, "{}", e.0);
            }
            // lint: allow(write_discard, fmt::Write to String is infallible)
            let _ = writeln!(
                self.line,
                "],\"length\":{k},\"support\":{},\"rel_support\":{},\"confidence\":{},\
                 \"clipped_occurrences\":{}}}",
                fp.support, fp.rel_support, fp.confidence, fp.clipped_occurrences
            );
            if let Err(e) = self.out.write_all(self.line.as_bytes()) {
                self.err = Some(e);
                return;
            }
            self.written += 1;
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

impl MiningResult {
    /// Replays a fully collected result into a sink — the buffered
    /// counterpart of mining straight into one, used by export paths
    /// that already hold a [`MiningResult`] (e.g. `ftpm mine --output`
    /// without `--stream`).
    ///
    /// Emission follows the HPG summary: one
    /// [`node`](PatternSink::node) call per graph node, levels in order.
    /// The caller remains responsible for
    /// [`finish`](PatternSink::finish)ing the sink; writer sinks latch
    /// any I/O error until then.
    pub fn replay_into(&self, sink: &mut dyn PatternSink) {
        sink.begin(&self.frequent_events);
        for (li, level) in self.graph.levels.iter().enumerate() {
            for node in &level.nodes {
                let patterns = node
                    .pattern_indices
                    .iter()
                    .map(|&i| self.patterns[i].clone())
                    .collect();
                sink.node(node.events.clone(), node.support, li + 2, patterns);
            }
        }
    }

    /// Consuming counterpart of [`MiningResult::replay_into`]: moves each
    /// pattern into the sink instead of cloning it. Prefer this when the
    /// result is not needed afterwards (the export-only CLI path) —
    /// replaying a large result then dropping it doubles every pattern
    /// allocation for no reason.
    pub fn drain_into(self, sink: &mut dyn PatternSink) {
        sink.begin(&self.frequent_events);
        let mut patterns: Vec<Option<FrequentPattern>> =
            self.patterns.into_iter().map(Some).collect();
        for (li, level) in self.graph.levels.iter().enumerate() {
            for node in &level.nodes {
                let moved = node
                    .pattern_indices
                    .iter()
                    .filter_map(|&i| patterns[i].take())
                    .collect();
                sink.node(node.events.clone(), node.support, li + 2, moved);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpm_events::TemporalRelation;

    use crate::pattern::Pattern;

    fn fp(e1: u32, e2: u32, support: usize) -> FrequentPattern {
        FrequentPattern {
            pattern: Pattern::pair(EventId(e1), TemporalRelation::Follow, EventId(e2)),
            support,
            rel_support: support as f64 / 4.0,
            confidence: 0.8,
            clipped_occurrences: 0,
        }
    }

    #[test]
    fn collect_sink_builds_result() {
        let mut sink = CollectSink::new();
        sink.begin(&[(EventId(0), 4), (EventId(1), 3)]);
        sink.node(vec![EventId(0), EventId(1)], 3, 2, vec![fp(0, 1, 3)]);
        let result = sink.into_result(MiningStats::default());
        assert_eq!(result.len(), 1);
        assert_eq!(result.frequent_events.len(), 2);
        assert_eq!(result.graph.levels.len(), 1);
        assert_eq!(result.graph.levels[0].nodes[0].pattern_indices, vec![0]);
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::default();
        sink.begin(&[(EventId(0), 4)]);
        sink.node(vec![EventId(0), EventId(1)], 3, 2, vec![fp(0, 1, 3), fp(1, 0, 3)]);
        sink.node(vec![EventId(0), EventId(1), EventId(2)], 2, 3, vec![fp(0, 2, 2)]);
        assert_eq!(sink.patterns(), 3);
        assert_eq!(sink.nodes(), 2);
        assert_eq!(sink.frequent_events(), 1);
        assert_eq!(sink.max_len(), 3);
    }

    #[test]
    fn csv_sink_escapes_and_counts() {
        let mut reg = EventRegistry::new();
        use ftpm_timeseries::{SymbolId, VariableId};
        let a = reg.intern(VariableId(0), SymbolId(1), || "A\"q\"=On".into());
        let b = reg.intern(VariableId(1), SymbolId(1), || "B=On".into());
        let mut buf = Vec::new();
        {
            let mut sink = CsvSink::new(&mut buf, &reg);
            sink.begin(&[]);
            sink.node(
                vec![a, b],
                3,
                2,
                vec![FrequentPattern {
                    pattern: Pattern::pair(a, TemporalRelation::Follow, b),
                    support: 3,
                    rel_support: 0.75,
                    confidence: 0.8,
                    clipped_occurrences: 2,
                }],
            );
            assert_eq!(sink.written(), 1);
            sink.finish().expect("no io error");
        }
        let text = String::from_utf8(buf).expect("utf8");
        let mut lines = text.lines();
        assert_eq!(
            lines.next(),
            Some("pattern,length,support,rel_support,confidence,clipped_occurrences")
        );
        let row = lines.next().expect("one row");
        assert!(row.starts_with("\"(A\"\"q\"\"=On Follow B=On)\","), "{row}");
        assert!(row.ends_with(",2,3,0.75,0.8,2"), "{row}");
    }

    #[test]
    fn jsonl_sink_one_object_per_line() {
        let mut reg = EventRegistry::new();
        use ftpm_timeseries::{SymbolId, VariableId};
        let a = reg.intern(VariableId(0), SymbolId(1), || "A=On".into());
        let b = reg.intern(VariableId(1), SymbolId(1), || "B=On".into());
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf, &reg);
            sink.begin(&[]);
            sink.node(
                vec![a, b],
                2,
                2,
                vec![FrequentPattern {
                    pattern: Pattern::pair(a, TemporalRelation::Contain, b),
                    support: 2,
                    rel_support: 0.5,
                    confidence: 1.0,
                    clipped_occurrences: 1,
                }],
            );
            sink.finish().expect("no io error");
        }
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0],
            "{\"pattern\":\"(A=On Contain B=On)\",\"events\":[0,1],\
             \"length\":2,\"support\":2,\"rel_support\":0.5,\"confidence\":1,\
             \"clipped_occurrences\":1}"
        );
    }

    #[test]
    fn writer_sink_reports_io_error_on_finish() {
        /// Fails after the first write.
        struct Failing(usize);
        impl Write for Failing {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::other("disk full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut reg = EventRegistry::new();
        use ftpm_timeseries::{SymbolId, VariableId};
        let a = reg.intern(VariableId(0), SymbolId(1), || "A=On".into());
        let b = reg.intern(VariableId(1), SymbolId(1), || "B=On".into());
        let mut sink = CsvSink::new(Failing(1), &reg);
        sink.begin(&[]);
        sink.node(vec![a, b], 1, 2, vec![fp(a.0, b.0, 1)]);
        assert_eq!(sink.written(), 0, "failed row not counted");
        assert!(sink.finish().is_err());
    }
}
