//! Lossless merging of per-shard mining output — the seam between the
//! sharded miners and one downstream [`PatternSink`].
//!
//! A shard-by-time-range run (see [`crate::shard`]) mines K overlapping
//! slices of the data independently. Two things make the naive "union the
//! per-shard results" merge wrong:
//!
//! 1. **Double counting.** The slices overlap by `t_ov`, so windows
//!    inside an overlap region are mined by *both* adjacent shards; just
//!    summing per-shard supports counts every such window twice and
//!    inflates support. The miners therefore emit supports restricted to
//!    the windows a shard *owns* (ownership partitions the window space —
//!    see `owned` on [`crate::exact::mine_internal`]), and this module
//!    sums those owned supports: each window contributes exactly once.
//! 2. **Registry drift.** Each shard interns events from its own slice in
//!    its own order, so `EventId`s are not comparable across shards (the
//!    PR 3 lesson: compare across splits by label, never by id). Each
//!    incoming pattern is translated through a per-shard id map into one
//!    master registry before it is keyed. (The local [`crate::ShardPlanner`]
//!    goes further and remaps shard databases onto the master registry
//!    *before mining* — tie-breaks on identical intervals involve the id —
//!    so its maps are identities; the translation seam here is what a
//!    remote shard with a foreign registry would use.)
//!
//! The merge is *streaming* in the sink sense: per-shard miners emit
//! straight into a [`MergeSink`] (no per-shard result `Vec` ever exists)
//! and the accumulator keeps one compact counter pair per distinct
//! pattern. Patterns are *hash-consed*: every emission is interned into a
//! [`PatternPool`] at the translation seam — `MergeSink::node` maps event
//! ids and walks the pool's probe table without materializing a
//! translated `Pattern` — and statistics accumulate in flat columns
//! indexed by [`PatternId`], so a pattern emitted by all K shards is
//! allocated once, not K times, and never re-hashed vector-wide.
//! [`ShardMerge::finish_into`] applies the global σ/δ thresholds over the
//! id-indexed columns and resolves only the survivors back to full
//! patterns, in one deterministic (pattern-sorted) pass. This is the seam
//! a future network sink plugs into: remote shards would stream
//! `(pattern id delta, owned support, owned clipped count)` frames
//! against a shared base pool (see [`crate::pool::PoolView`]).

use std::sync::Arc;

use ftpm_events::{EventId, EventRegistry};

use crate::candidates::CONF_EPS;
use crate::config::MinerConfig;
use crate::pattern::Pattern;
use crate::pool::{PatternId, PatternPool};
use crate::result::{FrequentPattern, MiningStats};
use crate::sink::PatternSink;

/// Sums per-worker / per-shard run counters into `into` — the single
/// stats-merge path shared by the parallel miner's worker shards and the
/// time-range shard merge.
pub(crate) fn merge_stats(into: &mut MiningStats, from: MiningStats) {
    for (i, v) in from.nodes_verified.into_iter().enumerate() {
        if into.nodes_verified.len() <= i {
            into.nodes_verified.push(0);
            into.nodes_kept.push(0);
            into.patterns_found.push(0);
        }
        into.nodes_verified[i] += v;
    }
    for (i, v) in from.nodes_kept.into_iter().enumerate() {
        if into.nodes_kept.len() <= i {
            into.nodes_kept.push(0);
        }
        into.nodes_kept[i] += v;
    }
    for (i, v) in from.patterns_found.into_iter().enumerate() {
        if into.patterns_found.len() <= i {
            into.patterns_found.push(0);
        }
        into.patterns_found[i] += v;
    }
    into.instance_checks += from.instance_checks;
    into.apriori_pruned += from.apriori_pruned;
    into.transitivity_pruned += from.transitivity_pruned;
    // Boundary counts describe the database, not per-shard work: they
    // are recorded once up front, and shard stats carry zeros.
    into.clipped_instances += from.clipped_instances;
    into.discarded_instances += from.discarded_instances;
}

/// Accumulated measures of one pattern across shards: owned supports and
/// owned clipped-occurrence counts simply add, because window ownership
/// partitions the global window space.
#[derive(Debug, Default, Clone, Copy)]
struct MergeEntry {
    support: usize,
    clipped_occurrences: usize,
}

/// Streaming union of per-shard pattern statistics, accumulated by
/// hash-consed [`PatternId`] instead of by owned [`Pattern`] key.
///
/// Feed it one shard at a time through [`ShardMerge::sink`] (the
/// per-shard miners write into that adapter), record each shard's owned
/// single-event supports and run counters, then call
/// [`ShardMerge::finish_into`] to apply the global thresholds and emit
/// the merged output into a downstream sink.
#[derive(Debug)]
pub struct ShardMerge {
    registry: Arc<EventRegistry>,
    /// Total owned windows across all shards — the global `|D_SEQ|`.
    n_sequences: usize,
    /// Owned single-event supports, indexed by master [`EventId`] — the
    /// confidence denominators of the merged output.
    event_supports: Vec<usize>,
    /// The master pattern pool: every distinct pattern any shard emitted,
    /// interned once. Roots cover the master registry, so raw event ids
    /// double as root pattern ids.
    pool: PatternPool,
    /// Per-pattern accumulators, aligned with `pool` ids (lazily grown —
    /// prefix entries created only as chain links carry no counts).
    entries: Vec<MergeEntry>,
    /// Ids that have received at least one emission, in first-touch
    /// order — the iteration set for [`ShardMerge::finish_into`].
    touched: Vec<PatternId>,
    stats: MiningStats,
}

impl ShardMerge {
    /// An empty merge over a master registry covering `n_sequences` owned
    /// windows in total. Accepts the registry by value or as a shared
    /// [`Arc`] (the shard planner hands every shard the same allocation).
    pub fn new(registry: impl Into<Arc<EventRegistry>>, n_sequences: usize) -> Self {
        let registry = registry.into();
        let event_supports = vec![0; registry.len()];
        let pool = PatternPool::with_roots(registry.len());
        ShardMerge {
            registry,
            n_sequences,
            event_supports,
            pool,
            entries: Vec::new(),
            touched: Vec::new(),
            stats: MiningStats::default(),
        }
    }

    /// The master registry merged patterns are expressed in.
    pub fn registry(&self) -> &EventRegistry {
        &self.registry
    }

    /// Number of distinct patterns accumulated so far (before the global
    /// σ/δ filter).
    pub fn distinct_patterns(&self) -> usize {
        self.touched.len()
    }

    /// The master pattern pool (exchange-coordinator seam: the gate
    /// walks parent chains for confidence denominators and interns
    /// survivors by [`crate::pool::DeltaKey`]).
    pub(crate) fn pool(&self) -> &PatternPool {
        &self.pool
    }

    /// Mutable pool access for the exchange coordinator's survivor
    /// interning.
    pub(crate) fn pool_mut(&mut self) -> &mut PatternPool {
        &mut self.pool
    }

    /// A [`PatternSink`] adapter for one shard: translates incoming event
    /// ids through `map` (shard id → master id) and accumulates owned
    /// supports. The adapter borrows the merge; drop it before starting
    /// the next shard.
    pub fn sink<'a>(&'a mut self, map: &'a [EventId]) -> MergeSink<'a> {
        MergeSink { merge: self, map }
    }

    /// Adds one shard's owned support of a single event (confidence
    /// denominator material).
    pub fn add_event_support(&mut self, event: EventId, support: usize) {
        self.event_supports[event.0 as usize] += support;
    }

    /// Folds owned statistics into the accumulator column of an interned
    /// pattern — every emission path (merge sink, exchange gate) lands
    /// here with an id, never a cloned pattern.
    pub(crate) fn add_by_id(&mut self, id: PatternId, support: usize, clipped: usize) {
        let at = id.0 as usize;
        if self.entries.len() <= at {
            self.entries.resize(self.pool.len().max(at + 1), MergeEntry::default());
        }
        let entry = &mut self.entries[at];
        if entry.support == 0 && entry.clipped_occurrences == 0 {
            self.touched.push(id);
        }
        entry.support += support;
        entry.clipped_occurrences += clipped;
    }

    /// Sums one shard's run counters into the merged work statistics.
    pub fn add_stats(&mut self, stats: MiningStats) {
        merge_stats(&mut self.stats, stats);
    }

    /// Overrides the boundary observability counters: per-shard counts
    /// include the duplicated overlap windows, so the shard runner
    /// recounts them over owned windows only.
    pub fn set_boundary_counts(&mut self, clipped: u64, discarded: u64) {
        self.stats.clipped_instances = clipped;
        self.stats.discarded_instances = discarded;
    }

    /// Applies the *global* thresholds of `cfg` to the merged statistics
    /// and emits the surviving patterns into `sink`, sorted by pattern
    /// (events, then relations) so the merged output is deterministic
    /// regardless of shard emission interleaving. Only survivors are
    /// resolved from the pool back to full patterns — allocation is
    /// output-proportional. Returns the merged run statistics: work
    /// counters are summed across shards, while the per-level
    /// `patterns_found`/`nodes_kept` describe the merged final output.
    pub fn finish_into(self, cfg: &MinerConfig, sink: &mut dyn PatternSink) -> MiningStats {
        let ShardMerge {
            registry,
            n_sequences,
            event_supports,
            pool,
            entries,
            touched,
            mut stats,
        } = self;
        let sigma_abs = cfg.absolute_support(n_sequences);

        let l1: Vec<(EventId, usize)> = registry
            .ids()
            .filter(|e| event_supports[e.0 as usize] >= sigma_abs)
            .map(|e| (e, event_supports[e.0 as usize]))
            .collect();
        sink.begin(&l1);

        let mut rows: Vec<(Pattern, MergeEntry, f64)> = touched
            .into_iter()
            .filter_map(|id| {
                let entry = entries[id.0 as usize];
                if entry.support < sigma_abs {
                    return None;
                }
                let max_supp = pool
                    .events_rev(id)
                    .map(|e| event_supports[e.0 as usize])
                    .max()
                    // lint: allow(panic, structural invariant: patterns always hold at least one event)
                    .expect("patterns have events");
                if max_supp == 0 {
                    return None;
                }
                let confidence = entry.support as f64 / max_supp as f64;
                if confidence + CONF_EPS < cfg.delta {
                    return None;
                }
                Some((pool.resolve(id), entry, confidence))
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));

        stats.nodes_kept = Vec::new();
        stats.patterns_found = Vec::new();
        for (pattern, entry, confidence) in rows {
            let k = pattern.len();
            while stats.patterns_found.len() < k - 1 {
                stats.patterns_found.push(0);
                stats.nodes_kept.push(0);
            }
            stats.patterns_found[k - 2] += 1;
            stats.nodes_kept[k - 2] += 1;
            let events = pattern.events().to_vec();
            let fp = FrequentPattern {
                pattern,
                support: entry.support,
                rel_support: entry.support as f64 / n_sequences.max(1) as f64,
                confidence,
                clipped_occurrences: entry.clipped_occurrences,
            };
            sink.node(events, entry.support, k, vec![fp]);
        }
        stats
    }
}

/// The per-shard side of the merge boundary: a [`PatternSink`] handed to
/// a shard's miner. Every emitted pattern is interned straight into the
/// master pool — event ids translate through `map` during the chain walk,
/// so no translated `Pattern` is ever allocated — and its owned counts
/// fold into the id-indexed accumulator. Nothing is buffered per shard.
#[derive(Debug)]
pub struct MergeSink<'a> {
    merge: &'a mut ShardMerge,
    /// `map[shard_event_id] == master_event_id`.
    map: &'a [EventId],
}

impl PatternSink for MergeSink<'_> {
    fn begin(&mut self, _frequent_events: &[(EventId, usize)]) {
        // Single-event supports counted by the miner cover the whole
        // shard slice (duplicated windows included); the shard runner
        // records owned-only supports via `add_event_support` instead.
    }

    fn node(
        &mut self,
        _events: Vec<EventId>,
        _support: usize,
        _k: usize,
        patterns: Vec<FrequentPattern>,
    ) {
        for fp in patterns {
            let id = self.merge.pool.intern_mapped(&fp.pattern, self.map);
            self.merge.add_by_id(id, fp.support, fp.clipped_occurrences);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpm_events::TemporalRelation;
    use ftpm_timeseries::{SymbolId, VariableId};

    use crate::sink::CollectSink;

    fn registry(labels: &[&str]) -> EventRegistry {
        let mut reg = EventRegistry::new();
        for (i, l) in labels.iter().enumerate() {
            reg.intern(VariableId(i as u32), SymbolId(1), || (*l).to_owned());
        }
        reg
    }

    fn fp(e1: u32, e2: u32, support: usize, clipped: usize) -> FrequentPattern {
        FrequentPattern {
            pattern: Pattern::pair(EventId(e1), TemporalRelation::Follow, EventId(e2)),
            support,
            rel_support: 0.0,
            confidence: 0.0,
            clipped_occurrences: clipped,
        }
    }

    #[test]
    fn merge_translates_ids_sums_owned_supports_and_filters() {
        // Master: A=0, B=1. Shard 1 interned them reversed.
        let master = registry(&["A", "B"]);
        let mut merge = ShardMerge::new(master, 8);
        {
            let map = [EventId(0), EventId(1)];
            let mut sink = merge.sink(&map);
            sink.node(vec![], 0, 2, vec![fp(0, 1, 3, 1)]);
        }
        {
            // Shard 1: local 0 = "B", local 1 = "A".
            let map = [EventId(1), EventId(0)];
            let mut sink = merge.sink(&map);
            // Locally (B=0 local) Follow (A=1 local)... translated this is
            // A Follow B? No: local pair (1, Follow, 0) -> (A, Follow, B).
            sink.node(vec![], 0, 2, vec![fp(1, 0, 2, 0)]);
            // A pattern below the global sigma: dropped by finish.
            sink.node(vec![], 0, 2, vec![fp(0, 1, 1, 0)]);
        }
        merge.add_event_support(EventId(0), 5);
        merge.add_event_support(EventId(0), 3);
        merge.add_event_support(EventId(1), 6);
        assert_eq!(merge.distinct_patterns(), 2);

        let cfg = MinerConfig::new(0.5, 0.5); // sigma_abs = 4 of 8
        let mut out = CollectSink::new();
        let stats = merge.finish_into(&cfg, &mut out);
        let result = out.into_result(stats);
        assert_eq!(result.len(), 1, "only the summed A->B survives");
        let p = &result.patterns[0];
        assert_eq!(p.support, 5, "3 + 2 owned windows");
        assert_eq!(p.clipped_occurrences, 1);
        assert!((p.confidence - 5.0 / 8.0).abs() < 1e-12);
        assert!((p.rel_support - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(result.frequent_events, vec![(EventId(0), 8), (EventId(1), 6)]);
        assert_eq!(result.stats.patterns_found, vec![1]);
    }

    #[test]
    fn finish_applies_confidence_with_tolerance() {
        let master = registry(&["A", "B"]);
        let mut merge = ShardMerge::new(master, 10);
        {
            let map = [EventId(0), EventId(1)];
            let mut sink = merge.sink(&map);
            sink.node(vec![], 0, 2, vec![fp(0, 1, 7, 0)]);
        }
        merge.add_event_support(EventId(0), 10);
        merge.add_event_support(EventId(1), 7);
        // conf = 7/10 must pass delta = 0.7 despite float noise.
        let cfg = MinerConfig::new(0.1, 0.7);
        let mut out = CollectSink::new();
        let stats = merge.finish_into(&cfg, &mut out);
        assert_eq!(out.into_result(stats).len(), 1);
    }

    #[test]
    fn same_pattern_from_two_shards_interns_once() {
        let master = registry(&["A", "B"]);
        let mut merge = ShardMerge::new(master, 4);
        let map = [EventId(0), EventId(1)];
        {
            let mut sink = merge.sink(&map);
            sink.node(vec![], 0, 2, vec![fp(0, 1, 1, 0)]);
        }
        let pooled = merge.pool().len();
        {
            let mut sink = merge.sink(&map);
            sink.node(vec![], 0, 2, vec![fp(0, 1, 2, 0)]);
        }
        assert_eq!(merge.pool().len(), pooled, "second emission is a pool hit");
        assert_eq!(merge.distinct_patterns(), 1);
    }
}
