//! E-HTPGM: exact Hierarchical Temporal Pattern Graph Mining
//! (paper Section IV, Algorithm 1).
//!
//! Mining proceeds level by level. L1 finds frequent single events with
//! one bitmap scan. L2 verifies event pairs: the Apriori filter (Lemmas
//! 2–3) discards pairs whose joint-bitmap support/confidence already
//! misses the thresholds, and the survivors have their instance pairs
//! checked against the relation model. Level `k ≥ 3` grows each
//! pattern-bearing node of level `k−1` by one event that is
//! chronologically last, using the transitivity property (Lemmas 4–7):
//! only single events that appear at level `k−1` are candidates, a node
//! extension is skipped outright when some node event has no frequent
//! relation at all with the new event (Lemma 5), and an individual
//! occurrence extension dies as soon as one of its new triples is not a
//! frequent, high-confidence 2-event pattern (Lemmas 6–7).
//!
//! Performance notes: frequent 2-event relations are kept as a dense
//! `events × events` bitmask table (no hashing on the hot path), and the
//! relation column of a candidate extension is packed into a `u64` (2
//! bits per relation) that doubles as the grouping key — both are part of
//! the "efficient data structures" story the paper tells about HTPGM.

use std::collections::HashMap;

use ftpm_bitmap::Bitmap;
use ftpm_events::{EventId, SequenceDatabase, TemporalRelation};

use crate::config::MinerConfig;
use crate::hpg::{HierarchicalPatternGraph, Level, Node};
use crate::index::DatabaseIndex;
use crate::pattern::Pattern;
use crate::result::{FrequentPattern, MiningResult, MiningStats};

/// Tolerance for `conf >= delta` comparisons, so that thresholds like 0.7
/// accept patterns whose confidence is exactly 0.7 up to floating noise.
const CONF_EPS: f64 = 1e-9;

/// Patterns longer than this cannot pack their relation column into the
/// u64 grouping key; in practice level-wise mining never gets anywhere
/// near it.
pub(crate) const MAX_EVENTS_HARD_CAP: usize = 32;

/// Restricts mining to correlated series — how A-HTPGM plugs into the
/// exact miner (Alg. 2 lines 7–11).
pub(crate) struct CorrelationFilter<'a> {
    /// `allowed[event]` — the event's series is in the correlated set X_C.
    pub allowed: Vec<bool>,
    /// Edge test between the series of two events.
    pub edge: Box<dyn Fn(EventId, EventId) -> bool + 'a>,
}

/// Mines all frequent temporal patterns of `db` — `E-HTPGM`.
///
/// Returns every pattern `P` with `supp(P) ≥ ⌈σ·|D_SEQ|⌉` and
/// `conf(P) ≥ δ`, plus the frequent single events and run statistics.
///
/// # Examples
///
/// See the crate-level example.
pub fn mine_exact(db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
    mine_internal(db, cfg, None)
}

/// Occurrence accumulator: supporting-sequence bitmap + bound tuples.
type OccAccum = (Bitmap, Vec<(u32, Vec<u32>)>);

/// Working data of one frequent pattern during mining: its occurrence
/// bindings are needed to grow the next level, then dropped.
pub(crate) struct WorkPattern {
    pub(crate) pattern: Pattern,
    pub(crate) support: usize,
    pub(crate) confidence: f64,
    /// `(sequence, instance indices)` — each tuple lists the bound
    /// instances in chronological order.
    pub(crate) occurrences: Vec<(u32, Vec<u32>)>,
}

/// Working node: event combination + joint bitmap + patterns.
pub(crate) struct WorkNode {
    pub(crate) events: Vec<EventId>,
    pub(crate) bitmap: Bitmap,
    pub(crate) support: usize,
    pub(crate) patterns: Vec<WorkPattern>,
}

/// Dense `events × events` table of frequent 2-event relations: 3 bits
/// per ordered pair, bit `r` set iff `(E_i, r, E_j)` is a frequent,
/// high-confidence 2-event pattern.
pub(crate) struct PairRelations {
    masks: Vec<u8>,
    n_events: usize,
}

impl PairRelations {
    pub(crate) fn new(n_events: usize) -> Self {
        PairRelations {
            masks: vec![0; n_events * n_events],
            n_events,
        }
    }

    pub(crate) fn insert(&mut self, ei: EventId, r: TemporalRelation, ej: EventId) {
        self.masks[ei.0 as usize * self.n_events + ej.0 as usize] |= 1 << r.index();
    }

    #[inline]
    fn contains(&self, ei: EventId, r: TemporalRelation, ej: EventId) -> bool {
        self.masks[ei.0 as usize * self.n_events + ej.0 as usize] & (1 << r.index()) != 0
    }

    /// True iff `ei` forms at least one frequent relation with `ek` —
    /// the per-node Lemma 5 test.
    #[inline]
    fn any(&self, ei: EventId, ek: EventId) -> bool {
        self.masks[ei.0 as usize * self.n_events + ek.0 as usize] != 0
    }
}

/// Packs a relation column into 2 bits per entry (values 1..=3 so the
/// packing is injective for a fixed length).
#[inline]
fn push_relation(code: u64, r: TemporalRelation) -> u64 {
    (code << 2) | (r.index() as u64 + 1)
}

/// Reverses [`push_relation`] for a column of `len` relations.
fn decode_column(mut code: u64, len: usize) -> Vec<TemporalRelation> {
    let mut rels = vec![TemporalRelation::Follow; len];
    for slot in rels.iter_mut().rev() {
        *slot = TemporalRelation::ALL[(code & 3) as usize - 1];
        code >>= 2;
    }
    rels
}

pub(crate) fn mine_internal(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    corr: Option<&CorrelationFilter<'_>>,
) -> MiningResult {
    let n_seqs = db.len();
    let sigma_abs = cfg.absolute_support(n_seqs);
    let max_events = cfg.max_events.min(MAX_EVENTS_HARD_CAP);
    let index = DatabaseIndex::build(db);
    let mut stats = MiningStats::default();

    // ---- L1: frequent single events (Alg. 1 lines 1–4) ----
    let freq_events: Vec<EventId> = db
        .registry()
        .ids()
        .filter(|&e| corr.is_none_or(|c| c.allowed[e.0 as usize]))
        .filter(|&e| index.support(e) >= sigma_abs)
        .collect();

    let mut patterns: Vec<FrequentPattern> = Vec::new();
    let mut graph = HierarchicalPatternGraph::default();

    // ---- L2: frequent 2-event patterns (Alg. 1 lines 5–14) ----
    let mut pair_relations = PairRelations::new(db.registry().len());
    let mut level_nodes: Vec<WorkNode> = Vec::new();
    let mut verified = 0usize;

    for &ei in &freq_events {
        for &ej in &freq_events {
            if let Some(c) = corr {
                if !(c.edge)(ei, ej) {
                    continue;
                }
            }
            let joint = index.bitmap(ei).and(index.bitmap(ej));
            let joint_supp = joint.count_ones();
            let max_supp = index.support(ei).max(index.support(ej));
            if cfg.pruning.apriori {
                // Lemma 2: supp(P) <= supp(Ei, Ej).
                if joint_supp < sigma_abs {
                    stats.apriori_pruned += 1;
                    continue;
                }
                // Lemma 3: conf(P) <= conf(Ei, Ej).
                if (joint_supp as f64 / max_supp as f64) + CONF_EPS < cfg.delta {
                    stats.apriori_pruned += 1;
                    continue;
                }
            } else if joint_supp == 0 {
                continue; // nothing to scan either way
            }
            verified += 1;
            let node = verify_pair(db, &index, cfg, &mut stats, ei, ej, &joint, max_supp, sigma_abs);
            if let Some(node) = node {
                for p in &node.patterns {
                    pair_relations.insert(ei, p.pattern.relations()[0], ej);
                }
                level_nodes.push(node);
            }
        }
    }
    stats.nodes_verified.push(verified);
    stats.nodes_kept.push(level_nodes.len());
    stats
        .patterns_found
        .push(level_nodes.iter().map(|n| n.patterns.len()).sum());

    // ---- Lk (k >= 3): grow nodes (Alg. 1 lines 15–20) ----
    // Each L2 node is grown to exhaustion depth-first. The level-wise
    // semantics (k-event patterns derived from (k-1)-event patterns and
    // the L1/L2 structures) are unchanged, but a node's occurrence
    // bindings are released as soon as its subtree is done — this is
    // what keeps HTPGM's memory footprint below the list-materializing
    // baselines (Table VIII).
    let mut grow = GrowContext {
        db,
        cfg,
        index: &index,
        pair_relations: &pair_relations,
        freq_events: &freq_events,
        sigma_abs,
        max_events,
        stats: &mut stats,
        graph: &mut graph,
        patterns: &mut patterns,
        n_seqs,
    };
    for node in level_nodes {
        grow.grow_node(node, 3);
    }

    MiningResult {
        patterns,
        frequent_events: freq_events
            .iter()
            .map(|&e| (e, index.support(e)))
            .collect(),
        graph,
        stats,
    }
}

/// Step 2.2: verify the instance pairs of one candidate event pair and
/// collect its frequent relations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_pair(
    db: &SequenceDatabase,
    index: &DatabaseIndex,
    cfg: &MinerConfig,
    stats: &mut MiningStats,
    ei: EventId,
    ej: EventId,
    joint: &Bitmap,
    max_supp: usize,
    sigma_abs: usize,
) -> Option<WorkNode> {
    let n_seqs = db.len();
    // One accumulator per relation type.
    let mut bitmaps = [
        Bitmap::new(n_seqs),
        Bitmap::new(n_seqs),
        Bitmap::new(n_seqs),
    ];
    let mut occs: [Vec<(u32, Vec<u32>)>; 3] = [Vec::new(), Vec::new(), Vec::new()];

    for seq_id in joint.iter_ones() {
        let seq = &db.sequences()[seq_id];
        for &ii in index.instances_in(seq_id, ei) {
            let inst_i = &seq.instances()[ii as usize];
            for &jj in index.instances_in(seq_id, ej) {
                let inst_j = &seq.instances()[jj as usize];
                // The node (Ei, Ej) binds Ei to the chronologically first
                // instance; the opposite order belongs to node (Ej, Ei).
                if inst_i.chrono_key() >= inst_j.chrono_key() {
                    continue;
                }
                stats.instance_checks += 1;
                // Maximal-duration constraint (Section III-C). We use the
                // monotone reading — the whole occurrence must fit inside
                // a t_max window — so that every prefix of a valid
                // occurrence is itself valid and level-wise growth stays
                // complete (see DESIGN.md).
                let max_end = inst_i.interval.end.max(inst_j.interval.end);
                if !cfg.relation.within_t_max(inst_i.interval.start, max_end) {
                    continue;
                }
                if let Some(r) = cfg.relation.relate(&inst_i.interval, &inst_j.interval) {
                    bitmaps[r.index()].set(seq_id);
                    occs[r.index()].push((seq_id as u32, vec![ii, jj]));
                }
            }
        }
    }

    let mut node_patterns = Vec::new();
    for r in TemporalRelation::ALL {
        let support = bitmaps[r.index()].count_ones();
        if support < sigma_abs {
            continue;
        }
        let confidence = support as f64 / max_supp as f64;
        if confidence + CONF_EPS < cfg.delta {
            continue;
        }
        node_patterns.push(WorkPattern {
            pattern: Pattern::pair(ei, r, ej),
            support,
            confidence,
            occurrences: std::mem::take(&mut occs[r.index()]),
        });
    }
    if node_patterns.is_empty() {
        return None; // a "brown" node: frequent pair, no frequent pattern.
    }
    Some(WorkNode {
        events: vec![ei, ej],
        support: joint.count_ones(),
        bitmap: joint.clone(),
        patterns: node_patterns,
    })
}

/// Step 3.2: extend each frequent pattern of `node` with one instance of
/// `ek` that is chronologically last, verifying the new triples
/// iteratively (and pruning through L2 when transitivity pruning is on).
#[allow(clippy::too_many_arguments)]
pub(crate) fn extend_node(
    db: &SequenceDatabase,
    index: &DatabaseIndex,
    cfg: &MinerConfig,
    stats: &mut MiningStats,
    node: &WorkNode,
    ek: EventId,
    joint: &Bitmap,
    joint_supp: usize,
    max_supp: usize,
    sigma_abs: usize,
    pair_relations: &PairRelations,
) -> Option<WorkNode> {
    let n_seqs = db.len();
    let mut new_patterns: Vec<WorkPattern> = Vec::new();

    for parent in &node.patterns {
        // Group candidate extensions by their packed relation column
        // (r(E_1,E_k), …, r(E_{k-1},E_k)).
        let mut accum: HashMap<u64, OccAccum> = HashMap::new();
        for (seq_id, tuple) in &parent.occurrences {
            if !joint.get(*seq_id as usize) {
                continue;
            }
            let seq = &db.sequences()[*seq_id as usize];
            let last_key = seq.instances()[*tuple.last().expect("non-empty") as usize]
                .chrono_key();
            let first_start = seq.instances()[tuple[0] as usize].interval.start;
            let tuple_max_end = tuple
                .iter()
                .map(|&ti| seq.instances()[ti as usize].interval.end)
                .max()
                .expect("non-empty");
            for &xi in index.instances_in(*seq_id as usize, ek) {
                let x = &seq.instances()[xi as usize];
                // The new instance must be chronologically last so each
                // occurrence is enumerated exactly once (Lemma 4 adds the
                // new instance at the end of the sequence order).
                if x.chrono_key() <= last_key {
                    continue;
                }
                stats.instance_checks += 1;
                let max_end = tuple_max_end.max(x.interval.end);
                if !cfg.relation.within_t_max(first_start, max_end) {
                    continue;
                }
                let mut code = 0u64;
                let mut ok = true;
                for (pos, &ti) in tuple.iter().enumerate() {
                    let inst = &seq.instances()[ti as usize];
                    match cfg.relation.relate(&inst.interval, &x.interval) {
                        Some(r) => {
                            // Lemmas 4–7: the triple (E_pos, r, E_k) must
                            // itself be a frequent, confident 2-event
                            // pattern, or this extension cannot yield one.
                            if cfg.pruning.transitivity
                                && !pair_relations.contains(node.events[pos], r, ek)
                            {
                                stats.transitivity_pruned += 1;
                                ok = false;
                                break;
                            }
                            code = push_relation(code, r);
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let entry = accum
                    .entry(code)
                    .or_insert_with(|| (Bitmap::new(n_seqs), Vec::new()));
                entry.0.set(*seq_id as usize);
                let mut new_tuple = Vec::with_capacity(tuple.len() + 1);
                new_tuple.extend_from_slice(tuple);
                new_tuple.push(xi);
                entry.1.push((*seq_id, new_tuple));
            }
        }
        for (code, (bitmap, occurrences)) in accum {
            let support = bitmap.count_ones();
            if support < sigma_abs {
                continue;
            }
            let confidence = support as f64 / max_supp as f64;
            if confidence + CONF_EPS < cfg.delta {
                continue;
            }
            let rels = decode_column(code, node.events.len());
            new_patterns.push(WorkPattern {
                pattern: parent.pattern.extend(ek, &rels),
                support,
                confidence,
                occurrences,
            });
        }
    }

    if new_patterns.is_empty() {
        return None;
    }
    let mut events = Vec::with_capacity(node.events.len() + 1);
    events.extend_from_slice(&node.events);
    events.push(ek);
    Some(WorkNode {
        events,
        bitmap: joint.clone(),
        support: joint_supp,
        patterns: new_patterns,
    })
}

/// Depth-first growth of the Hierarchical Pattern Graph below L2.
pub(crate) struct GrowContext<'a> {
    pub(crate) db: &'a SequenceDatabase,
    pub(crate) cfg: &'a MinerConfig,
    pub(crate) index: &'a DatabaseIndex,
    pub(crate) pair_relations: &'a PairRelations,
    pub(crate) freq_events: &'a [EventId],
    pub(crate) sigma_abs: usize,
    pub(crate) max_events: usize,
    pub(crate) stats: &'a mut MiningStats,
    pub(crate) graph: &'a mut HierarchicalPatternGraph,
    pub(crate) patterns: &'a mut Vec<FrequentPattern>,
    pub(crate) n_seqs: usize,
}

impl GrowContext<'_> {
    /// Archives `node` (level `k − 1` in event count) and tries every
    /// candidate last event for level `k`. The node's occurrence
    /// bindings die when this frame returns.
    pub(crate) fn grow_node(&mut self, node: WorkNode, k: usize) {
        if k > self.max_events {
            archive_node(self.graph, self.patterns, self.n_seqs, node, k - 1);
            return;
        }
        while self.stats.nodes_verified.len() < k - 1 {
            self.stats.nodes_verified.push(0);
            self.stats.nodes_kept.push(0);
            self.stats.patterns_found.push(0);
        }
        let mut children: Vec<WorkNode> = Vec::new();
        'candidates: for &ek in self.freq_events {
            if self.cfg.pruning.transitivity {
                // Per-node Lemma 5: every node event must form at least
                // one frequent relation with ek, or no k-event pattern
                // over this combination can be frequent.
                for &e in &node.events {
                    if !self.pair_relations.any(e, ek) {
                        self.stats.transitivity_pruned += 1;
                        continue 'candidates;
                    }
                }
            }
            let joint = node.bitmap.and(self.index.bitmap(ek));
            let joint_supp = joint.count_ones();
            let max_supp = node
                .events
                .iter()
                .map(|&e| self.index.support(e))
                .max()
                .expect("nodes have events")
                .max(self.index.support(ek));
            if self.cfg.pruning.apriori {
                if joint_supp < self.sigma_abs {
                    self.stats.apriori_pruned += 1;
                    continue;
                }
                if (joint_supp as f64 / max_supp as f64) + CONF_EPS < self.cfg.delta {
                    self.stats.apriori_pruned += 1;
                    continue;
                }
            } else if joint_supp == 0 {
                continue;
            }
            self.stats.nodes_verified[k - 2] += 1;
            if let Some(child) = extend_node(
                self.db,
                self.index,
                self.cfg,
                self.stats,
                &node,
                ek,
                &joint,
                joint_supp,
                max_supp,
                self.sigma_abs,
                self.pair_relations,
            ) {
                self.stats.nodes_kept[k - 2] += 1;
                self.stats.patterns_found[k - 2] += child.patterns.len();
                children.push(child);
            }
        }
        // The parent's occurrences are no longer needed once all its
        // children have been generated.
        archive_node(self.graph, self.patterns, self.n_seqs, node, k - 1);
        for child in children {
            self.grow_node(child, k + 1);
        }
    }
}

/// Moves a finished node into the result, dropping occurrence bindings.
/// `k` is the node's event count; its level slot is `k - 2`.
fn archive_node(
    graph: &mut HierarchicalPatternGraph,
    patterns: &mut Vec<FrequentPattern>,
    n_seqs: usize,
    node: WorkNode,
    k: usize,
) {
    while graph.levels.len() < k - 1 {
        graph.levels.push(Level::default());
    }
    let mut pattern_indices = Vec::with_capacity(node.patterns.len());
    for wp in node.patterns {
        pattern_indices.push(patterns.len());
        patterns.push(FrequentPattern {
            pattern: wp.pattern,
            support: wp.support,
            rel_support: wp.support as f64 / n_seqs.max(1) as f64,
            confidence: wp.confidence,
        });
    }
    graph.levels[k - 2].nodes.push(Node {
        events: node.events,
        support: node.support,
        pattern_indices,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_column_roundtrip() {
        use TemporalRelation::*;
        for column in [
            vec![Follow],
            vec![Contain, Overlap],
            vec![Follow, Follow, Contain, Overlap, Follow],
            vec![Overlap; 31],
        ] {
            let mut code = 0u64;
            for &r in &column {
                code = push_relation(code, r);
            }
            assert_eq!(decode_column(code, column.len()), column);
        }
    }

    #[test]
    fn pair_relations_dense_table() {
        let mut t = PairRelations::new(4);
        t.insert(EventId(1), TemporalRelation::Contain, EventId(3));
        assert!(t.contains(EventId(1), TemporalRelation::Contain, EventId(3)));
        assert!(!t.contains(EventId(1), TemporalRelation::Follow, EventId(3)));
        assert!(!t.contains(EventId(3), TemporalRelation::Contain, EventId(1)));
        assert!(t.any(EventId(1), EventId(3)));
        assert!(!t.any(EventId(0), EventId(3)));
    }
}
