//! E-HTPGM: exact Hierarchical Temporal Pattern Graph Mining
//! (paper Section IV, Algorithm 1).
//!
//! Mining proceeds level by level. L1 finds frequent single events with
//! one bitmap scan. L2 verifies event pairs: the Apriori filter (Lemmas
//! 2–3) discards pairs whose joint-bitmap support/confidence already
//! misses the thresholds, and the survivors have their instance pairs
//! checked against the relation model. Level `k ≥ 3` grows each
//! pattern-bearing node of level `k−1` by one event that is
//! chronologically last, using the transitivity property (Lemmas 4–7):
//! only single events that appear at level `k−1` are candidates, a node
//! extension is skipped outright when some node event has no frequent
//! relation at all with the new event (Lemma 5), and an individual
//! occurrence extension dies as soon as one of its new triples is not a
//! frequent, high-confidence 2-event pattern (Lemmas 6–7).
//!
//! Candidate gating (the Apriori support/confidence bounds and the L2
//! verification step) lives in [`crate::candidates`], shared with the
//! parallel miner; output flows through a [`PatternSink`]
//! (see [`crate::sink`]) so finished nodes can be collected, counted or
//! streamed without materializing a global pattern `Vec`.
//!
//! Performance notes: frequent 2-event relations are kept as a dense
//! `events × events` bitmask table (no hashing on the hot path), and the
//! relation column of a candidate extension is packed into a `u64` (2
//! bits per relation) that doubles as the grouping key — both are part of
//! the "efficient data structures" story the paper tells about HTPGM.

use std::collections::HashMap;
use std::marker::PhantomData;

use ftpm_bitmap::Bitmap;
use ftpm_events::{BoundaryKernel, BoundaryVisit, EventId, SequenceDatabase};

use crate::candidates::{
    apriori_gate, passes_thresholds, CorrelationFilter, L2Engine, PairRelations, WorkNode,
    WorkPattern,
};
use crate::config::MinerConfig;
use crate::index::DatabaseIndex;
use crate::occ::OccArena;
use crate::result::{FrequentPattern, MiningResult, MiningStats};
use crate::sink::{CollectSink, PatternSink};

/// Patterns longer than this cannot pack their relation column into the
/// u64 grouping key; in practice level-wise mining never gets anywhere
/// near it.
pub(crate) const MAX_EVENTS_HARD_CAP: usize = 32;

/// Mines all frequent temporal patterns of `db` — `E-HTPGM`.
///
/// Returns every pattern `P` with `supp(P) ≥ ⌈σ·|D_SEQ|⌉` and
/// `conf(P) ≥ δ`, plus the frequent single events and run statistics.
///
/// # Examples
///
/// See the crate-level example.
pub fn mine_exact(db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
    let mut sink = CollectSink::new();
    let stats = mine_internal(db, cfg, None, None, &mut sink);
    sink.into_result(stats)
}

/// Mines like [`mine_exact`], but emits each finished Hierarchical
/// Pattern Graph node into `sink` instead of materializing a
/// [`MiningResult`] — the full pattern result is never built up in
/// memory. (Mining working state is still held while needed: all L2
/// nodes exist at once during candidate generation, and a node's
/// occurrence bindings live until its subtree is grown.) Returns the
/// run statistics.
///
/// # Examples
///
/// See the [`crate::sink`] module docs.
pub fn mine_exact_with_sink(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    sink: &mut dyn PatternSink,
) -> MiningStats {
    mine_internal(db, cfg, None, None, sink)
}

/// Occurrence accumulator: supporting-sequence bitmap + bound tuples
/// (a scratch struct-of-arrays arena, spliced into the child node's
/// arena if the group survives the thresholds).
type OccAccum = (Bitmap, OccArena);

/// Records how many instances of `db` carry a window-boundary clip, and
/// how many of those the active [`ftpm_events::BoundaryPolicy`] drops
/// outright — the run-level observability half of the boundary-artifact
/// story (the per-pattern half is `clipped_occurrences`).
pub(crate) fn record_boundary_stats(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    stats: &mut MiningStats,
) {
    let clipped = db
        .sequences()
        .iter()
        .flat_map(|s| s.instances())
        .filter(|i| i.is_clipped())
        .count() as u64;
    stats.clipped_instances = clipped;
    stats.discarded_instances = match cfg.relation.boundary {
        ftpm_events::BoundaryPolicy::Discard => clipped,
        ftpm_events::BoundaryPolicy::Clip | ftpm_events::BoundaryPolicy::TrueExtent => 0,
    };
}

use crate::pool::{decode_column, pack_relation, PatternId};

/// `owned` is the shard-mining seam: when present, the index (and hence
/// every bitmap, occurrence binding and support the miner derives from
/// it) is restricted to the sequences whose mask entry is `true` — the
/// windows this shard *owns* — so a downstream [`crate::ShardMerge`] can
/// sum per-shard stats without double-counting the windows duplicated
/// into neighbouring shards' overlap pads. The pad windows exist in `db`
/// only for the conversion's run extents; pattern growth never crosses a
/// window boundary, so masking them out of mining loses nothing and
/// skips their (always-discarded) enumeration work entirely.
pub(crate) fn mine_internal(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    corr: Option<&CorrelationFilter<'_>>,
    owned: Option<&[bool]>,
    sink: &mut dyn PatternSink,
) -> MiningStats {
    // Monomorphization seam: fix the boundary kernel once per run, so
    // every instance-level decision below compiles branch-free.
    struct Run<'a, 'c> {
        db: &'a SequenceDatabase,
        cfg: &'a MinerConfig,
        corr: Option<&'a CorrelationFilter<'c>>,
        owned: Option<&'a [bool]>,
        sink: &'a mut dyn PatternSink,
    }
    impl BoundaryVisit for Run<'_, '_> {
        type Out = MiningStats;
        fn visit<K: BoundaryKernel>(self) -> MiningStats {
            mine_internal_k::<K>(self.db, self.cfg, self.corr, self.owned, self.sink)
        }
    }
    cfg.relation.boundary.dispatch(Run {
        db,
        cfg,
        corr,
        owned,
        sink,
    })
}

/// [`mine_internal`], monomorphized over the boundary kernel.
fn mine_internal_k<K: BoundaryKernel>(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    corr: Option<&CorrelationFilter<'_>>,
    owned: Option<&[bool]>,
    sink: &mut dyn PatternSink,
) -> MiningStats {
    let n_seqs = db.len();
    let sigma_abs = cfg.absolute_support(n_seqs);
    let max_events = cfg.max_events.min(MAX_EVENTS_HARD_CAP);
    let index = DatabaseIndex::build_masked(db, cfg.relation.boundary, owned);
    let mut stats = MiningStats::default();
    record_boundary_stats(db, cfg, &mut stats);
    stats.nodes_verified.push(0);

    // ---- L1: frequent single events (Alg. 1 lines 1–4) ----
    let freq_events: Vec<EventId> = db
        .registry()
        .ids()
        .filter(|&e| corr.is_none_or(|c| c.allows_event(e)))
        .filter(|&e| index.support(e) >= sigma_abs)
        .collect();
    let l1: Vec<(EventId, usize)> = freq_events
        .iter()
        .map(|&e| (e, index.support(e)))
        .collect();
    sink.begin(&l1);

    // ---- L2: frequent 2-event patterns (Alg. 1 lines 5–14) ----
    let engine = L2Engine::<K> {
        db,
        index: &index,
        cfg,
        sigma_abs,
        kernel: PhantomData,
    };
    let mut pair_relations = PairRelations::new(db.registry().len());
    let mut level_nodes: Vec<WorkNode> = Vec::new();

    for &ei in &freq_events {
        for &ej in &freq_events {
            if let Some(c) = corr {
                if !c.allows_pair(ei, ej) {
                    continue;
                }
            }
            if let Some(node) = engine.try_pair(ei, ej, &mut stats) {
                for p in &node.patterns {
                    pair_relations.insert(ei, p.pattern.relations()[0], ej);
                }
                level_nodes.push(node);
            }
        }
    }
    stats.nodes_kept.push(level_nodes.len());
    stats
        .patterns_found
        .push(level_nodes.iter().map(|n| n.patterns.len()).sum());

    // ---- Lk (k >= 3): grow nodes (Alg. 1 lines 15–20) ----
    // Each L2 node is grown to exhaustion depth-first. The level-wise
    // semantics (k-event patterns derived from (k-1)-event patterns and
    // the L1/L2 structures) are unchanged, but a node's occurrence
    // bindings are released as soon as its subtree is done — this is
    // what keeps HTPGM's memory footprint below the list-materializing
    // baselines (Table VIII).
    let db_has_clipped = stats.clipped_instances > 0;
    let mut grow = GrowContext::<K> {
        db,
        cfg,
        index: &index,
        pair_relations: &pair_relations,
        freq_events: &freq_events,
        sigma_abs,
        max_events,
        stats: &mut stats,
        sink,
        db_has_clipped,
        owned,
        kernel: PhantomData,
    };
    for node in level_nodes {
        grow.grow_node(node, 3);
    }

    stats
}

/// Step 3.2: extend each frequent pattern of `node` with one instance of
/// `ek` that is chronologically last, verifying the new triples
/// iteratively (and pruning through L2 when transitivity pruning is on).
#[allow(clippy::too_many_arguments)]
pub(crate) fn extend_node<K: BoundaryKernel>(
    db: &SequenceDatabase,
    index: &DatabaseIndex,
    cfg: &MinerConfig,
    stats: &mut MiningStats,
    node: &WorkNode,
    ek: EventId,
    joint: &Bitmap,
    joint_supp: usize,
    max_supp: usize,
    sigma_abs: usize,
    pair_relations: &PairRelations,
) -> Option<WorkNode> {
    let n_seqs = db.len();
    let rel = &cfg.relation;
    let width = node.events.len() + 1;
    let mut new_patterns: Vec<WorkPattern> = Vec::new();
    let mut child_occs = OccArena::new(width);

    for parent in &node.patterns {
        // Group candidate extensions by their packed relation column
        // (r(E_1,E_k), …, r(E_{k-1},E_k)).
        let mut accum: HashMap<u64, OccAccum> = HashMap::new();
        for oi in parent.occurrences.iter() {
            let seq_id = node.occs.seq(oi);
            if !joint.get(seq_id as usize) {
                continue;
            }
            let tuple = node.occs.tuple(oi);
            let seq = &db.sequences()[seq_id as usize];
            // Bound instances passed the boundary policy when the parent
            // occurrence was built, so their effective interval exists.
            let bound_iv = |ti: u32| {
                K::interval(&seq.instances()[ti as usize])
                    // lint: allow(panic, structural invariant: binding members passed the boundary policy on entry)
                    .expect("bound instances pass the boundary policy")
            };
            let last_key =
                // lint: allow(panic, structural invariant: the binding is non-empty on this path)
                K::key(&seq.instances()[*tuple.last().expect("non-empty") as usize]);
            let first_start = bound_iv(tuple[0]).start;
            let tuple_max_end = tuple
                .iter()
                .map(|&ti| bound_iv(ti).end)
                .max()
                // lint: allow(panic, structural invariant: the binding is non-empty on this path)
                .expect("non-empty");
            for &xi in index.instances_in(seq_id as usize, ek) {
                let x = &seq.instances()[xi as usize];
                let Some(x_iv) = K::interval(x) else {
                    continue;
                };
                // The new instance must be chronologically last so each
                // occurrence is enumerated exactly once (Lemma 4 adds the
                // new instance at the end of the sequence order).
                if K::key(x) <= last_key {
                    continue;
                }
                stats.instance_checks += 1;
                let max_end = tuple_max_end.max(x_iv.end);
                if !rel.within_t_max(first_start, max_end) {
                    continue;
                }
                let mut code = 0u64;
                let mut ok = true;
                for (pos, &ti) in tuple.iter().enumerate() {
                    match rel.relate(&bound_iv(ti), &x_iv) {
                        Some(r) => {
                            // Lemmas 4–7: the triple (E_pos, r, E_k) must
                            // itself be a frequent, confident 2-event
                            // pattern, or this extension cannot yield one.
                            if cfg.pruning.transitivity
                                && !pair_relations.contains(node.events[pos], r, ek)
                            {
                                stats.transitivity_pruned += 1;
                                ok = false;
                                break;
                            }
                            code = pack_relation(code, r);
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let entry = accum
                    .entry(code)
                    .or_insert_with(|| (Bitmap::new(n_seqs), OccArena::new(width)));
                entry.0.set(seq_id as usize);
                entry.1.push_extend(seq_id, tuple, xi);
            }
        }
        for (code, (bitmap, occurrences)) in accum {
            let support = bitmap.count_ones();
            let Some(confidence) =
                passes_thresholds(support, max_supp, sigma_abs, cfg.delta)
            else {
                continue;
            };
            let rels = decode_column(code, node.events.len());
            let all = occurrences.since(0);
            new_patterns.push(WorkPattern {
                pattern: parent.pattern.extend(ek, &rels),
                support,
                confidence,
                occurrences: child_occs.append_from(&occurrences, all),
                id: PatternId::NONE,
                parent_id: parent.id,
                code,
            });
        }
    }

    if new_patterns.is_empty() {
        return None;
    }
    let mut events = Vec::with_capacity(node.events.len() + 1);
    events.extend_from_slice(&node.events);
    events.push(ek);
    Some(WorkNode {
        events,
        bitmap: joint.clone(),
        support: joint_supp,
        patterns: new_patterns,
        occs: child_occs,
    })
}

/// Tries every candidate last event `ek` for `node` (level `k` in event
/// count for the children) and returns the surviving children — the
/// candidate-extension loop shared by the depth-first
/// [`GrowContext::grow_node`] and the exchange executor's propose stage
/// (which passes local `sigma_abs = 1` so only empty joints are gated).
/// Keeping one copy is load-bearing: the two paths must stay
/// semantically identical for the exchange's bit-identical-output
/// guarantee. `stats` must already have level slots up to `k - 1`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grow_candidates<K: BoundaryKernel>(
    db: &SequenceDatabase,
    index: &DatabaseIndex,
    cfg: &MinerConfig,
    stats: &mut MiningStats,
    node: &WorkNode,
    freq_events: &[EventId],
    pair_relations: &PairRelations,
    sigma_abs: usize,
    k: usize,
) -> Vec<WorkNode> {
    // Phase 1 — per-node Lemma 5 screen: every node event must form at
    // least one frequent relation with ek, or no k-event pattern over
    // this combination can be frequent.
    let mut cands: Vec<EventId> = Vec::with_capacity(freq_events.len());
    'candidates: for &ek in freq_events {
        if cfg.pruning.transitivity {
            for &e in &node.events {
                if !pair_relations.any(e, ek) {
                    stats.transitivity_pruned += 1;
                    continue 'candidates;
                }
            }
        }
        cands.push(ek);
    }

    // Phase 2 — fused AND+popcount over all survivors in one pass
    // ([`Bitmap::and_count_many`] re-reads the node bitmap once per
    // 32-word block instead of once per candidate). Pruned candidates
    // never pay for a joint-bitmap allocation.
    let partners: Vec<&Bitmap> = cands.iter().map(|&ek| index.bitmap(ek)).collect();
    let mut joint_supps: Vec<usize> = Vec::new();
    node.bitmap.and_count_many(&partners, &mut joint_supps);

    // Phase 3 — Apriori gate + instance verification per survivor.
    let mut children: Vec<WorkNode> = Vec::new();
    for (&ek, &joint_supp) in cands.iter().zip(&joint_supps) {
        let max_supp = node
            .events
            .iter()
            .map(|&e| index.support(e))
            .max()
            // lint: allow(panic, structural invariant: HPG nodes always hold at least one event)
            .expect("nodes have events")
            .max(index.support(ek));
        if !apriori_gate(cfg, sigma_abs, joint_supp, max_supp, stats) {
            continue;
        }
        let joint = node.bitmap.and(index.bitmap(ek));
        stats.nodes_verified[k - 2] += 1;
        if let Some(child) = extend_node::<K>(
            db,
            index,
            cfg,
            stats,
            node,
            ek,
            &joint,
            joint_supp,
            max_supp,
            sigma_abs,
            pair_relations,
        ) {
            stats.nodes_kept[k - 2] += 1;
            stats.patterns_found[k - 2] += child.patterns.len();
            children.push(child);
        }
    }
    children
}

/// Depth-first growth of the Hierarchical Pattern Graph below L2.
pub(crate) struct GrowContext<'a, K: BoundaryKernel> {
    pub(crate) db: &'a SequenceDatabase,
    pub(crate) cfg: &'a MinerConfig,
    pub(crate) index: &'a DatabaseIndex,
    pub(crate) pair_relations: &'a PairRelations,
    pub(crate) freq_events: &'a [EventId],
    pub(crate) sigma_abs: usize,
    pub(crate) max_events: usize,
    pub(crate) stats: &'a mut MiningStats,
    pub(crate) sink: &'a mut dyn PatternSink,
    /// Whether the database contains any boundary-clipped instance —
    /// lets [`archive_node`] skip the per-occurrence artifact scan when
    /// every count would be 0.
    pub(crate) db_has_clipped: bool,
    /// Shard ownership mask (see [`mine_internal`]); `None` outside
    /// sharded runs.
    pub(crate) owned: Option<&'a [bool]>,
    /// The monomorphized boundary kernel (fixed at dispatch).
    pub(crate) kernel: PhantomData<K>,
}

impl<K: BoundaryKernel> GrowContext<'_, K> {
    /// Archives `node` (level `k − 1` in event count) and tries every
    /// candidate last event for level `k`. The node's occurrence
    /// bindings die when this frame returns.
    pub(crate) fn grow_node(&mut self, node: WorkNode, k: usize) {
        if k > self.max_events {
            archive_node(self.sink, self.db, self.db_has_clipped, self.owned, node, k - 1);
            return;
        }
        while self.stats.nodes_verified.len() < k - 1 {
            self.stats.nodes_verified.push(0);
            self.stats.nodes_kept.push(0);
            self.stats.patterns_found.push(0);
        }
        let children = grow_candidates::<K>(
            self.db,
            self.index,
            self.cfg,
            self.stats,
            &node,
            self.freq_events,
            self.pair_relations,
            self.sigma_abs,
            k,
        );
        // The parent's occurrences are no longer needed once all its
        // children have been generated.
        archive_node(self.sink, self.db, self.db_has_clipped, self.owned, node, k - 1);
        for child in children {
            self.grow_node(child, k + 1);
        }
    }
}

/// Emits a finished node into the sink, dropping occurrence bindings.
/// `k` is the node's event count; its level slot is `k - 2`. Before the
/// bindings die, each pattern counts how many of its occurrences touch a
/// boundary-clipped instance — the per-pattern artifact measure exported
/// through the sinks. `db_has_clipped` (false for unsplit or
/// cleanly-tiled databases) skips that occurrence scan on the hot
/// archive path when the answer can only be 0.
///
/// With a shard ownership mask (`owned`), supports and clipped counts are
/// restricted to owned sequences — the raw material a [`crate::ShardMerge`]
/// sums across shards — and patterns left with zero owned support are not
/// emitted at all (their owner shard emits them instead). Confidence and
/// `rel_support` are placeholders in that mode: only the merge, which
/// sees the global event supports and sequence count, can compute them.
pub(crate) fn archive_node(
    sink: &mut dyn PatternSink,
    db: &SequenceDatabase,
    db_has_clipped: bool,
    owned: Option<&[bool]>,
    node: WorkNode,
    k: usize,
) {
    let n_seqs = db.len();
    let WorkNode {
        events,
        bitmap: _,
        support: node_support,
        patterns,
        occs,
    } = node;
    let count_clipped = |oi: usize| {
        let insts = db.sequences()[occs.seq(oi) as usize].instances();
        occs.tuple(oi)
            .iter()
            .any(|&ti| insts[ti as usize].is_clipped())
    };
    let patterns: Vec<FrequentPattern> = patterns
        .into_iter()
        .filter_map(|wp| {
            let (support, rel_support, clipped_occurrences) = match owned {
                None => {
                    let clipped = if !db_has_clipped {
                        0
                    } else {
                        wp.occurrences.iter().filter(|&oi| count_clipped(oi)).count()
                    };
                    (
                        wp.support,
                        wp.support as f64 / n_seqs.max(1) as f64,
                        clipped,
                    )
                }
                Some(mask) => {
                    // Occurrences arrive grouped by ascending sequence id,
                    // so distinct owned sequences can be counted in one
                    // pass without a set.
                    let mut support = 0usize;
                    let mut clipped = 0usize;
                    let mut last_seq: Option<u32> = None;
                    for oi in wp.occurrences.iter() {
                        let seq_id = occs.seq(oi);
                        if !mask[seq_id as usize] {
                            continue;
                        }
                        if last_seq != Some(seq_id) {
                            support += 1;
                            last_seq = Some(seq_id);
                        }
                        if db_has_clipped && count_clipped(oi) {
                            clipped += 1;
                        }
                    }
                    if support == 0 {
                        return None;
                    }
                    (support, 0.0, clipped)
                }
            };
            Some(FrequentPattern {
                pattern: wp.pattern,
                support,
                rel_support,
                confidence: wp.confidence,
                clipped_occurrences,
            })
        })
        .collect();
    if owned.is_some() && patterns.is_empty() {
        return;
    }
    sink.node(events, node_support, k, patterns);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_column_roundtrip() {
        use ftpm_events::TemporalRelation::*;
        for column in [
            vec![Follow],
            vec![Contain, Overlap],
            vec![Follow, Follow, Contain, Overlap, Follow],
            vec![Overlap; 31],
        ] {
            let mut code = 0u64;
            for &r in &column {
                code = pack_relation(code, r);
            }
            assert_eq!(decode_column(code, column.len()), column);
        }
    }
}
