use ftpm_bitmap::Bitmap;
use ftpm_events::{BoundaryPolicy, EventId, SequenceDatabase};

/// Precomputed per-event access structures over a [`SequenceDatabase`]:
/// the single-event bitmaps of HTPGM's L1 (built with one scan of
/// `D_SEQ`, Section IV-C) and, per sequence, the instance indices of each
/// event (the "list of event instances" stored in HPG nodes).
#[derive(Debug)]
pub struct DatabaseIndex {
    /// `bitmaps[event]` — sequences containing at least one instance.
    bitmaps: Vec<Bitmap>,
    /// `instances[seq][event]` — indices into the sequence's instance
    /// vector, chronologically ascending.
    instances: Vec<Vec<Vec<u32>>>,
    /// `supports[event]` — cached popcount of `bitmaps[event]`.
    supports: Vec<usize>,
}

impl DatabaseIndex {
    /// Builds the index with a single pass over the database.
    pub fn build(db: &SequenceDatabase) -> Self {
        DatabaseIndex::build_with_policy(db, BoundaryPolicy::Clip)
    }

    /// Builds the index under a boundary policy. With
    /// [`BoundaryPolicy::Discard`], instances clipped at a window
    /// boundary are invisible: they contribute to neither the bitmaps,
    /// nor the supports (and hence confidence denominators), nor the
    /// per-sequence instance lists — as if the split had never emitted
    /// them. The other policies index every instance.
    pub fn build_with_policy(db: &SequenceDatabase, policy: BoundaryPolicy) -> Self {
        let n_events = db.registry().len();
        let n_seqs = db.len();
        let mut bitmaps = vec![Bitmap::new(n_seqs); n_events];
        let mut instances = vec![vec![Vec::new(); n_events]; n_seqs];
        let discard = policy == BoundaryPolicy::Discard;
        for (si, seq) in db.sequences().iter().enumerate() {
            for (ii, inst) in seq.instances().iter().enumerate() {
                if discard && inst.is_clipped() {
                    continue;
                }
                let e = inst.event.0 as usize;
                bitmaps[e].set(si);
                instances[si][e].push(ii as u32);
            }
        }
        let supports = bitmaps.iter().map(Bitmap::count_ones).collect();
        DatabaseIndex {
            bitmaps,
            instances,
            supports,
        }
    }

    /// The occurrence bitmap of an event.
    pub fn bitmap(&self, event: EventId) -> &Bitmap {
        &self.bitmaps[event.0 as usize]
    }

    /// `supp(E)` — number of sequences containing the event (Def 3.13).
    pub fn support(&self, event: EventId) -> usize {
        self.supports[event.0 as usize]
    }

    /// Instance indices of `event` within sequence `seq`, ascending.
    pub fn instances_in(&self, seq: usize, event: EventId) -> &[u32] {
        &self.instances[seq][event.0 as usize]
    }

    /// Number of distinct events indexed.
    pub fn n_events(&self) -> usize {
        self.bitmaps.len()
    }

    /// Number of sequences indexed.
    pub fn n_sequences(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpm_events::{EventInstance, EventRegistry, TemporalSequence};
    use ftpm_timeseries::{SymbolId, VariableId};

    fn tiny_db() -> SequenceDatabase {
        let mut reg = EventRegistry::new();
        let a = reg.intern(VariableId(0), SymbolId(1), || "A".into());
        let b = reg.intern(VariableId(1), SymbolId(1), || "B".into());
        let s0 = TemporalSequence::new(vec![
            EventInstance::new(a, 0, 5),
            EventInstance::new(b, 5, 9),
            EventInstance::new(a, 10, 12),
        ]);
        let s1 = TemporalSequence::new(vec![EventInstance::new(b, 1, 2)]);
        SequenceDatabase::new(reg, vec![s0, s1])
    }

    #[test]
    fn bitmaps_and_supports() {
        let db = tiny_db();
        let idx = DatabaseIndex::build(&db);
        assert_eq!(idx.n_events(), 2);
        assert_eq!(idx.support(EventId(0)), 1); // A only in seq 0
        assert_eq!(idx.support(EventId(1)), 2); // B in both
        assert!(idx.bitmap(EventId(0)).get(0));
        assert!(!idx.bitmap(EventId(0)).get(1));
    }

    #[test]
    fn instance_lists_are_chronological() {
        let db = tiny_db();
        let idx = DatabaseIndex::build(&db);
        assert_eq!(idx.instances_in(0, EventId(0)), &[0, 2]);
        assert_eq!(idx.instances_in(0, EventId(1)), &[1]);
        assert_eq!(idx.instances_in(1, EventId(0)), &[] as &[u32]);
    }

    #[test]
    fn discard_policy_hides_clipped_instances() {
        use ftpm_events::{BoundaryPolicy, Interval};
        let mut reg = EventRegistry::new();
        let a = reg.intern(VariableId(0), SymbolId(1), || "A".into());
        // Sequence 0: one clipped A; sequence 1: one clean A.
        let clipped = EventInstance::with_extent(
            a,
            Interval::new(0, 5),
            Interval::new(-3, 5),
        );
        let s0 = TemporalSequence::new(vec![clipped]);
        let s1 = TemporalSequence::new(vec![EventInstance::new(a, 1, 2)]);
        let db = SequenceDatabase::new(reg, vec![s0, s1]);

        let full = DatabaseIndex::build(&db);
        assert_eq!(full.support(a), 2);
        let filtered = DatabaseIndex::build_with_policy(&db, BoundaryPolicy::Discard);
        assert_eq!(filtered.support(a), 1, "clipped instance invisible");
        assert!(!filtered.bitmap(a).get(0));
        assert!(filtered.bitmap(a).get(1));
        assert_eq!(filtered.instances_in(0, a), &[] as &[u32]);
    }
}
