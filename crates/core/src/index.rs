use ftpm_bitmap::Bitmap;
use ftpm_events::{BoundaryPolicy, EventId, SequenceDatabase};

/// Precomputed per-event access structures over a [`SequenceDatabase`]:
/// the single-event bitmaps of HTPGM's L1 (built with one scan of
/// `D_SEQ`, Section IV-C) and, per sequence, the instance indices of each
/// event (the "list of event instances" stored in HPG nodes).
#[derive(Debug)]
pub struct DatabaseIndex {
    /// `bitmaps[event]` — sequences containing at least one instance.
    bitmaps: Vec<Bitmap>,
    /// `instances[seq][event]` — indices into the sequence's instance
    /// vector, chronologically ascending.
    instances: Vec<Vec<Vec<u32>>>,
    /// `supports[event]` — cached popcount of `bitmaps[event]`.
    supports: Vec<usize>,
}

impl DatabaseIndex {
    /// Builds the index with a single pass over the database.
    pub fn build(db: &SequenceDatabase) -> Self {
        DatabaseIndex::build_with_policy(db, BoundaryPolicy::Clip)
    }

    /// Builds the index under a boundary policy. With
    /// [`BoundaryPolicy::Discard`], instances clipped at a window
    /// boundary are invisible: they contribute to neither the bitmaps,
    /// nor the supports (and hence confidence denominators), nor the
    /// per-sequence instance lists — as if the split had never emitted
    /// them. The other policies index every instance.
    pub fn build_with_policy(db: &SequenceDatabase, policy: BoundaryPolicy) -> Self {
        DatabaseIndex::build_masked(db, policy, None)
    }

    /// Builds the index under a boundary policy, optionally restricted to
    /// the sequences whose `mask` entry is `true`. Masked-out sequences
    /// are invisible end to end — no bitmap bits, no supports, no
    /// instance lists — so every structure a miner derives from the index
    /// (joint bitmaps, occurrence bindings, pattern supports) covers only
    /// the masked-in sequences.
    ///
    /// This is how a time-range shard mines only the windows it *owns*:
    /// the overlap-pad windows duplicated from neighbouring shards exist
    /// in the shard's database (their instances carry the run extents the
    /// conversion needed), but mining them would be pure waste — every
    /// pattern statistic they could contribute belongs to the owning
    /// shard, and pattern growth never crosses a window boundary, so
    /// hiding them changes no owned count.
    pub fn build_masked(
        db: &SequenceDatabase,
        policy: BoundaryPolicy,
        mask: Option<&[bool]>,
    ) -> Self {
        let n_events = db.registry().len();
        let n_seqs = db.len();
        let mut bitmaps = vec![Bitmap::new(n_seqs); n_events];
        let mut instances = vec![vec![Vec::new(); n_events]; n_seqs];
        let discard = policy == BoundaryPolicy::Discard;
        for (si, seq) in db.sequences().iter().enumerate() {
            if mask.is_some_and(|m| !m[si]) {
                continue;
            }
            for (ii, inst) in seq.instances().iter().enumerate() {
                if discard && inst.is_clipped() {
                    continue;
                }
                let e = inst.event.0 as usize;
                bitmaps[e].set(si);
                instances[si][e].push(ii as u32);
            }
        }
        let supports = bitmaps.iter().map(Bitmap::count_ones).collect();
        DatabaseIndex {
            bitmaps,
            instances,
            supports,
        }
    }

    /// The occurrence bitmap of an event.
    pub fn bitmap(&self, event: EventId) -> &Bitmap {
        &self.bitmaps[event.0 as usize]
    }

    /// `supp(E)` — number of sequences containing the event (Def 3.13).
    pub fn support(&self, event: EventId) -> usize {
        self.supports[event.0 as usize]
    }

    /// Joint support of two events — the popcount of the AND of their
    /// bitmaps (Alg. 1, line 8) via the fused, non-allocating
    /// [`Bitmap::and_count`]. The Apriori gate calls this for every
    /// candidate pair, pruned or not, so it never pays for the
    /// intermediate bitmap.
    pub fn joint_support(&self, a: EventId, b: EventId) -> usize {
        self.bitmaps[a.0 as usize].and_count(&self.bitmaps[b.0 as usize])
    }

    /// Instance indices of `event` within sequence `seq`, ascending.
    pub fn instances_in(&self, seq: usize, event: EventId) -> &[u32] {
        &self.instances[seq][event.0 as usize]
    }

    /// Number of distinct events indexed.
    pub fn n_events(&self) -> usize {
        self.bitmaps.len()
    }

    /// Number of sequences indexed.
    pub fn n_sequences(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpm_events::{EventInstance, EventRegistry, TemporalSequence};
    use ftpm_timeseries::{SymbolId, VariableId};

    fn tiny_db() -> SequenceDatabase {
        let mut reg = EventRegistry::new();
        let a = reg.intern(VariableId(0), SymbolId(1), || "A".into());
        let b = reg.intern(VariableId(1), SymbolId(1), || "B".into());
        let s0 = TemporalSequence::new(vec![
            EventInstance::new(a, 0, 5),
            EventInstance::new(b, 5, 9),
            EventInstance::new(a, 10, 12),
        ]);
        let s1 = TemporalSequence::new(vec![EventInstance::new(b, 1, 2)]);
        SequenceDatabase::new(reg, vec![s0, s1])
    }

    #[test]
    fn bitmaps_and_supports() {
        let db = tiny_db();
        let idx = DatabaseIndex::build(&db);
        assert_eq!(idx.n_events(), 2);
        assert_eq!(idx.support(EventId(0)), 1); // A only in seq 0
        assert_eq!(idx.support(EventId(1)), 2); // B in both
        assert!(idx.bitmap(EventId(0)).get(0));
        assert!(!idx.bitmap(EventId(0)).get(1));
    }

    #[test]
    fn instance_lists_are_chronological() {
        let db = tiny_db();
        let idx = DatabaseIndex::build(&db);
        assert_eq!(idx.instances_in(0, EventId(0)), &[0, 2]);
        assert_eq!(idx.instances_in(0, EventId(1)), &[1]);
        assert_eq!(idx.instances_in(1, EventId(0)), &[] as &[u32]);
    }

    #[test]
    fn joint_support_matches_bitmap_and() {
        let db = tiny_db();
        let idx = DatabaseIndex::build(&db);
        let (a, b) = (EventId(0), EventId(1));
        assert_eq!(
            idx.joint_support(a, b),
            idx.bitmap(a).and(idx.bitmap(b)).count_ones()
        );
        assert_eq!(idx.joint_support(a, b), 1); // both only co-occur in seq 0
    }

    #[test]
    fn masked_build_hides_sequences_end_to_end() {
        let db = tiny_db();
        // Mask out sequence 0: only B (in sequence 1) remains visible.
        let idx =
            DatabaseIndex::build_masked(&db, BoundaryPolicy::Clip, Some(&[false, true]));
        assert_eq!(idx.support(EventId(0)), 0, "A lived only in masked-out seq 0");
        assert_eq!(idx.support(EventId(1)), 1);
        assert!(!idx.bitmap(EventId(1)).get(0));
        assert!(idx.bitmap(EventId(1)).get(1));
        assert_eq!(idx.instances_in(0, EventId(0)), &[] as &[u32]);
        assert_eq!(idx.instances_in(0, EventId(1)), &[] as &[u32]);
        assert_eq!(idx.instances_in(1, EventId(1)), &[0]);
        assert_eq!(idx.joint_support(EventId(0), EventId(1)), 0);
    }

    #[test]
    fn discard_policy_hides_clipped_instances() {
        use ftpm_events::{BoundaryPolicy, Interval};
        let mut reg = EventRegistry::new();
        let a = reg.intern(VariableId(0), SymbolId(1), || "A".into());
        // Sequence 0: one clipped A; sequence 1: one clean A.
        let clipped = EventInstance::with_extent(
            a,
            Interval::new(0, 5),
            Interval::new(-3, 5),
        );
        let s0 = TemporalSequence::new(vec![clipped]);
        let s1 = TemporalSequence::new(vec![EventInstance::new(a, 1, 2)]);
        let db = SequenceDatabase::new(reg, vec![s0, s1]);

        let full = DatabaseIndex::build(&db);
        assert_eq!(full.support(a), 2);
        let filtered = DatabaseIndex::build_with_policy(&db, BoundaryPolicy::Discard);
        assert_eq!(filtered.support(a), 1, "clipped instance invisible");
        assert!(!filtered.bitmap(a).get(0));
        assert!(filtered.bitmap(a).get(1));
        assert_eq!(filtered.instances_in(0, a), &[] as &[u32]);
    }
}
