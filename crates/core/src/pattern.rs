use ftpm_events::{EventId, EventRegistry, TemporalRelation};
use serde::{Deserialize, Serialize};

/// A temporal pattern (Def 3.11): `k` events in the chronological order of
/// their bound instances, plus one relation per event pair.
///
/// The relation between event `i` and event `j` (`i < j`, both 0-based) is
/// stored in a flat upper-triangular layout grouped by the *later* event:
///
/// ```text
/// (0,1) | (0,2) (1,2) | (0,3) (1,3) (2,3) | …
/// ```
///
/// so extending a `(k−1)`-event pattern with one more event appends
/// exactly `k−1` relations at the end — the layout mirrors how HTPGM
/// grows patterns level by level.
///
/// The derived `Ord` (events lexicographically, then relations) is a
/// total order used wherever mined output must be deterministic despite
/// nondeterministic parallel discovery order: the shard merge's emission
/// order and the tie-breaks of [`crate::rank_patterns`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pattern {
    events: Vec<EventId>,
    relations: Vec<TemporalRelation>,
}

impl Pattern {
    /// Creates a pattern.
    ///
    /// # Panics
    ///
    /// Panics unless `events.len() >= 2` and
    /// `relations.len() == k·(k−1)/2`.
    pub fn new(events: Vec<EventId>, relations: Vec<TemporalRelation>) -> Self {
        // lint: allow(panic, documented # Panics contract: pattern shape)
        assert!(events.len() >= 2, "a temporal pattern has >= 2 events");
        // lint: allow(panic, documented # Panics contract: pattern shape)
        assert_eq!(
            relations.len(),
            events.len() * (events.len() - 1) / 2,
            "need one relation per event pair"
        );
        Pattern { events, relations }
    }

    /// Convenience constructor for a 2-event pattern `(E1, r, E2)`.
    pub fn pair(e1: EventId, relation: TemporalRelation, e2: EventId) -> Self {
        Pattern {
            events: vec![e1, e2],
            relations: vec![relation],
        }
    }

    /// The events, in chronological role order.
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// The relations in the flat layout described on the type.
    pub fn relations(&self) -> &[TemporalRelation] {
        &self.relations
    }

    /// Number of events (`n` for an n-event pattern).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Always false (patterns have at least two events).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The relation between events `i` and `j` (`i < j`).
    ///
    /// # Panics
    ///
    /// Panics unless `i < j < len`.
    pub fn relation_between(&self, i: usize, j: usize) -> TemporalRelation {
        // lint: allow(panic, documented # Panics contract: triangular index domain)
        assert!(i < j && j < self.events.len(), "need i < j < len");
        // Pairs with later event j start at offset j*(j-1)/2.
        self.relations[j * (j - 1) / 2 + i]
    }

    /// Iterates over all triples `(i, j, relation)` with `i < j`.
    pub fn triples(&self) -> impl Iterator<Item = (usize, usize, TemporalRelation)> + '_ {
        (1..self.events.len()).flat_map(move |j| {
            (0..j).map(move |i| (i, j, self.relation_between(i, j)))
        })
    }

    /// A new pattern extended with event `event`, whose relations to the
    /// existing events are `new_relations[i] = r(E_i, event)`.
    ///
    /// # Panics
    ///
    /// Panics unless `new_relations.len() == self.len()`.
    pub fn extend(&self, event: EventId, new_relations: &[TemporalRelation]) -> Pattern {
        // lint: allow(panic, documented # Panics contract: one relation per existing event)
        assert_eq!(new_relations.len(), self.events.len());
        let mut events = Vec::with_capacity(self.events.len() + 1);
        events.extend_from_slice(&self.events);
        events.push(event);
        let mut relations = Vec::with_capacity(self.relations.len() + new_relations.len());
        relations.extend_from_slice(&self.relations);
        relations.extend_from_slice(new_relations);
        Pattern { events, relations }
    }

    /// True iff `other` is a *prefix* sub-pattern of `self` (same first
    /// `other.len()` events with identical relations). This is the
    /// sub-pattern notion along which HTPGM grows patterns.
    pub fn has_prefix(&self, other: &Pattern) -> bool {
        other.events.len() <= self.events.len()
            && self.events[..other.events.len()] == other.events[..]
            && self.relations[..other.relations.len()] == other.relations[..]
    }

    /// Renders the pattern using the paper's triple notation, e.g.
    /// `(K=On Contain T=On), (K=On Follow M=On), (T=On Follow M=On)`.
    pub fn display<'a>(&'a self, registry: &'a EventRegistry) -> impl std::fmt::Display + 'a {
        PatternDisplay {
            pattern: self,
            registry,
        }
    }
}

struct PatternDisplay<'a> {
    pattern: &'a Pattern,
    registry: &'a EventRegistry,
}

impl std::fmt::Display for PatternDisplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (i, j, r) in self.pattern.triples() {
            if !first {
                write!(f, ", ")?;
            }
            write!(
                f,
                "({} {} {})",
                self.registry.label(self.pattern.events()[i]),
                r,
                self.registry.label(self.pattern.events()[j]),
            )?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpm_timeseries::{SymbolId, VariableId};

    fn e(i: u32) -> EventId {
        EventId(i)
    }

    #[test]
    fn triangular_layout_roundtrip() {
        use TemporalRelation::*;
        // 4 events, relations in layout (0,1)|(0,2)(1,2)|(0,3)(1,3)(2,3)
        let p = Pattern::new(
            vec![e(0), e(1), e(2), e(3)],
            vec![Follow, Contain, Overlap, Follow, Follow, Contain],
        );
        assert_eq!(p.relation_between(0, 1), Follow);
        assert_eq!(p.relation_between(0, 2), Contain);
        assert_eq!(p.relation_between(1, 2), Overlap);
        assert_eq!(p.relation_between(0, 3), Follow);
        assert_eq!(p.relation_between(1, 3), Follow);
        assert_eq!(p.relation_between(2, 3), Contain);
        assert_eq!(p.triples().count(), 6);
    }

    #[test]
    fn extend_appends_relations() {
        use TemporalRelation::*;
        let p = Pattern::pair(e(0), Follow, e(1));
        let q = p.extend(e(2), &[Contain, Overlap]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.relation_between(0, 1), Follow);
        assert_eq!(q.relation_between(0, 2), Contain);
        assert_eq!(q.relation_between(1, 2), Overlap);
        assert!(q.has_prefix(&p));
        assert!(!p.has_prefix(&q));
    }

    #[test]
    fn self_pattern_allowed() {
        // Self-relations (same event twice) are legal (Section III-B).
        let p = Pattern::pair(e(5), TemporalRelation::Follow, e(5));
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "one relation per event pair")]
    fn wrong_relation_count_panics() {
        let _ = Pattern::new(vec![e(0), e(1), e(2)], vec![TemporalRelation::Follow]);
    }

    #[test]
    fn display_uses_registry_labels() {
        let mut reg = EventRegistry::new();
        let k = reg.intern(VariableId(0), SymbolId(1), || "K=On".into());
        let t = reg.intern(VariableId(1), SymbolId(1), || "T=On".into());
        let p = Pattern::pair(k, TemporalRelation::Contain, t);
        assert_eq!(p.display(&reg).to_string(), "(K=On Contain T=On)");
    }
}
