//! Multi-threaded E-HTPGM.
//!
//! HTPGM parallelizes naturally along the Hierarchical Pattern Graph:
//! L2 candidate pairs are independent of each other, and from L3 onward
//! every L2 node's subtree grows independently of its siblings (the only
//! cross-node structure, the frequent-relation table of Lemmas 4–7, is
//! complete once L2 is done and read-only afterwards). This module
//! shards both phases over `std::thread::scope` workers, driving the same
//! [`crate::candidates`] engine as the single-threaded miner, and emits
//! finished nodes into a shared [`PatternSink`]. Output is bit-identical
//! to [`crate::mine_exact`] up to pattern order (asserted by the
//! equivalence tests) — node emission interleaves across workers, so the
//! order is not deterministic run to run, but the set, supports and
//! confidences are. Run statistics are summed across workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ftpm_events::{EventId, SequenceDatabase};

use crate::candidates::{L2Engine, PairRelations, WorkNode};
use crate::config::MinerConfig;
use crate::exact::{GrowContext, MAX_EVENTS_HARD_CAP};
use crate::index::DatabaseIndex;
use crate::merge::merge_stats;
use crate::result::{MiningResult, MiningStats};
use crate::sink::{CollectSink, PatternSink};

/// Mines exactly like [`crate::mine_exact`], distributing the work over
/// `n_threads` OS threads. The pattern set, supports and confidences are
/// identical to the single-threaded miner; only the order differs.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn mine_exact_parallel(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    n_threads: usize,
) -> MiningResult {
    let mut sink = CollectSink::new();
    let stats = mine_exact_parallel_with_sink(db, cfg, n_threads, &mut sink);
    sink.into_result(stats)
}

/// Multi-threaded counterpart of [`crate::mine_exact_with_sink`]: mines
/// with `n_threads` workers that emit finished Hierarchical Pattern Graph
/// nodes into the shared `sink` as they complete (each emission is
/// atomic, but emissions interleave across workers). The streaming path
/// never materializes the full pattern result; emitted-pattern memory is
/// bounded per worker by the emission batch plus one node, though L2
/// working state (all L2 nodes with their occurrence bindings) is still
/// held during candidate generation, as in the sequential miner.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn mine_exact_parallel_with_sink(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    n_threads: usize,
    sink: &mut (dyn PatternSink + Send),
) -> MiningStats {
    mine_parallel_internal(db, cfg, n_threads, None, sink)
}

/// The owned-mask-aware engine behind [`mine_exact_parallel_with_sink`]:
/// `owned` restricts emitted supports to a shard's owned sequences, as in
/// [`crate::exact::mine_internal`]. Also the path the shard runner uses
/// for per-shard parallel mining.
pub(crate) fn mine_parallel_internal(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    n_threads: usize,
    owned: Option<&[bool]>,
    sink: &mut (dyn PatternSink + Send),
) -> MiningStats {
    assert!(n_threads > 0, "need at least one thread");
    if n_threads == 1 {
        return crate::exact::mine_internal(db, cfg, None, owned, sink);
    }
    let sigma_abs = cfg.absolute_support(db.len());
    let max_events = cfg.max_events.min(MAX_EVENTS_HARD_CAP);
    let index = DatabaseIndex::build_masked(db, cfg.relation.boundary, owned);

    // ---- L1 ----
    let freq_events: Vec<EventId> = db
        .registry()
        .ids()
        .filter(|&e| index.support(e) >= sigma_abs)
        .collect();
    let l1: Vec<(EventId, usize)> = freq_events
        .iter()
        .map(|&e| (e, index.support(e)))
        .collect();
    sink.begin(&l1);

    // ---- L2, sharded over candidate pairs ----
    let engine = L2Engine {
        db,
        index: &index,
        cfg,
        sigma_abs,
    };
    let pairs: Vec<(EventId, EventId)> = freq_events
        .iter()
        .flat_map(|&ei| freq_events.iter().map(move |&ej| (ei, ej)))
        .collect();
    let next_pair = AtomicUsize::new(0);
    let mut shard_outputs: Vec<(Vec<WorkNode>, MiningStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let pairs = &pairs;
                let next_pair = &next_pair;
                let engine = &engine;
                scope.spawn(move || {
                    let mut nodes = Vec::new();
                    let mut stats = MiningStats::default();
                    stats.nodes_verified.push(0);
                    loop {
                        // Batched work stealing keeps shards balanced even
                        // when a few pairs dominate the cost.
                        let at = next_pair.fetch_add(16, Ordering::Relaxed);
                        if at >= pairs.len() {
                            break;
                        }
                        for &(ei, ej) in &pairs[at..(at + 16).min(pairs.len())] {
                            if let Some(node) = engine.try_pair(ei, ej, &mut stats) {
                                nodes.push(node);
                            }
                        }
                    }
                    (nodes, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });

    let mut stats = MiningStats::default();
    crate::exact::record_boundary_stats(db, cfg, &mut stats);
    let db_has_clipped = stats.clipped_instances > 0;
    stats.nodes_verified.push(0);
    stats.nodes_kept.push(0);
    stats.patterns_found.push(0);
    let mut level2: Vec<WorkNode> = Vec::new();
    for (nodes, shard_stats) in shard_outputs.drain(..) {
        merge_stats(&mut stats, shard_stats);
        level2.extend(nodes);
    }
    // Canonical order so work distribution is deterministic across runs.
    level2.sort_by(|a, b| a.events.cmp(&b.events));
    stats.nodes_kept[0] = level2.len();
    stats.patterns_found[0] = level2.iter().map(|n| n.patterns.len()).sum();

    let mut pair_relations = PairRelations::new(db.registry().len());
    for node in &level2 {
        for p in &node.patterns {
            pair_relations.insert(node.events[0], p.pattern.relations()[0], node.events[1]);
        }
    }

    // ---- L3+: shard L2 nodes across workers, each growing its subtree
    // with the shared read-only L2 relation table and emitting finished
    // nodes straight into the shared sink. ----
    let next_node = AtomicUsize::new(0);
    let queue_refs: Vec<Mutex<Option<WorkNode>>> = level2
        .into_iter()
        .map(|n| Mutex::new(Some(n)))
        .collect();
    let shared = Mutex::new(sink);
    let shard_stats_out: Vec<MiningStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let next_node = &next_node;
                let queue_refs = &queue_refs;
                let index = &index;
                let pair_relations = &pair_relations;
                let freq_events = &freq_events;
                let shared = &shared;
                scope.spawn(move || {
                    let mut worker_sink = SharedSink::new(shared);
                    let mut shard_stats = MiningStats::default();
                    loop {
                        let at = next_node.fetch_add(1, Ordering::Relaxed);
                        if at >= queue_refs.len() {
                            break;
                        }
                        let node = queue_refs[at]
                            .lock()
                            .expect("unpoisoned")
                            .take()
                            .expect("each node taken once");
                        let mut grow = GrowContext {
                            db,
                            cfg,
                            index,
                            pair_relations,
                            freq_events,
                            sigma_abs,
                            max_events,
                            stats: &mut shard_stats,
                            sink: &mut worker_sink,
                            db_has_clipped,
                            owned,
                        };
                        grow.grow_node(node, 3);
                    }
                    worker_sink.flush();
                    shard_stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });

    for shard_stats in shard_stats_out {
        merge_stats(&mut stats, shard_stats);
    }
    stats
}

/// Runs `f(index, &mut item)` for every item, distributing items over up
/// to `threads` scoped workers with atomic work stealing (the same
/// machinery the L3 node queue above uses). With one thread — or one
/// item — it degrades to a plain loop with no spawn at all. Items are
/// processed exactly once; completion order is unspecified, but every
/// call has returned when this function returns.
///
/// This is the shard executor's outer loop: each exchange round runs one
/// stage on every [`crate::executor`] worker concurrently.
pub(crate) fn par_for_each<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let slots: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let at = next.fetch_add(1, Ordering::Relaxed);
                if at >= slots.len() {
                    break;
                }
                let mut item = slots[at].lock().expect("unpoisoned");
                f(at, &mut item);
            });
        }
    });
}

/// Maps `f` over `items` with up to `threads` scoped workers, preserving
/// input order in the output. Built on [`par_for_each`]; single-threaded
/// calls stay allocation- and spawn-free. Used for the intra-shard
/// parallelism of the exchange executor's propose stages (L2 pair chunks,
/// level-k node growth), composing with the shard-level concurrency the
/// way `--threads` composes with `--shards`.
pub(crate) fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<(Option<T>, Option<R>)> =
        items.into_iter().map(|t| (Some(t), None)).collect();
    par_for_each(&mut slots, threads, |_, slot| {
        let item = slot.0.take().expect("each item mapped once");
        slot.1 = Some(f(item));
    });
    slots
        .into_iter()
        .map(|(_, r)| r.expect("every slot filled"))
        .collect()
}

/// One buffered node emission awaiting the shared-sink lock.
type PendingNode = (Vec<EventId>, usize, usize, Vec<crate::result::FrequentPattern>);

/// How many patterns a worker buffers before taking the shared-sink
/// lock. Amortizes contention when many small nodes finish in bursts;
/// worker-resident pattern memory stays bounded by this plus one node.
const SHARED_SINK_BATCH: usize = 1024;

/// Per-worker handle on the shared sink: buffers finished nodes and
/// drains them in batches under one lock acquisition, so each node still
/// lands atomically while workers contend far less. (Serialization work
/// done *inside* the target sink — e.g. CSV formatting — still happens
/// under the lock; moving that worker-side needs a byte-level seam, see
/// ROADMAP "Output channels".)
struct SharedSink<'a, 'b> {
    shared: &'a Mutex<&'b mut (dyn PatternSink + Send)>,
    pending: Vec<PendingNode>,
    pending_patterns: usize,
}

impl<'a, 'b> SharedSink<'a, 'b> {
    fn new(shared: &'a Mutex<&'b mut (dyn PatternSink + Send)>) -> Self {
        SharedSink {
            shared,
            pending: Vec::new(),
            pending_patterns: 0,
        }
    }

    /// Drains the buffer into the shared sink under one lock.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut sink = self.shared.lock().expect("unpoisoned");
        for (events, support, k, patterns) in self.pending.drain(..) {
            sink.node(events, support, k, patterns);
        }
        self.pending_patterns = 0;
    }
}

impl PatternSink for SharedSink<'_, '_> {
    fn node(
        &mut self,
        events: Vec<EventId>,
        support: usize,
        k: usize,
        patterns: Vec<crate::result::FrequentPattern>,
    ) {
        self.pending_patterns += patterns.len();
        self.pending.push((events, support, k, patterns));
        if self.pending_patterns >= SHARED_SINK_BATCH {
            self.flush();
        }
    }
}

