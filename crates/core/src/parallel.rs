//! Multi-threaded E-HTPGM.
//!
//! HTPGM parallelizes naturally along the Hierarchical Pattern Graph:
//! L2 candidate pairs are independent of each other, and from L3 onward
//! every L2 node's subtree grows independently of its siblings (the only
//! cross-node structure, the frequent-relation table of Lemmas 4–7, is
//! complete once L2 is done and read-only afterwards). This module
//! shards both phases over `std::thread::scope` workers and merges the
//! results. Output is bit-identical to [`crate::mine_exact`] up to
//! pattern order (asserted by the equivalence tests); run statistics are
//! summed across workers.

use std::sync::atomic::{AtomicUsize, Ordering};

use ftpm_events::{EventId, SequenceDatabase};

use crate::config::MinerConfig;
use crate::exact::{verify_pair, GrowContext, PairRelations, WorkNode, MAX_EVENTS_HARD_CAP};
use crate::hpg::HierarchicalPatternGraph;
use crate::index::DatabaseIndex;
use crate::result::{FrequentPattern, MiningResult, MiningStats};

/// Mines exactly like [`crate::mine_exact`], distributing the work over
/// `n_threads` OS threads. Patterns are reported level-ordered per worker
/// shard; the set, supports and confidences are identical to the
/// single-threaded miner.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn mine_exact_parallel(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    n_threads: usize,
) -> MiningResult {
    assert!(n_threads > 0, "need at least one thread");
    if n_threads == 1 {
        return crate::mine_exact(db, cfg);
    }
    let n_seqs = db.len();
    let sigma_abs = cfg.absolute_support(n_seqs);
    let max_events = cfg.max_events.min(MAX_EVENTS_HARD_CAP);
    let index = DatabaseIndex::build(db);

    // ---- L1 ----
    let freq_events: Vec<EventId> = db
        .registry()
        .ids()
        .filter(|&e| index.support(e) >= sigma_abs)
        .collect();

    // ---- L2, sharded over candidate pairs ----
    let pairs: Vec<(EventId, EventId)> = freq_events
        .iter()
        .flat_map(|&ei| freq_events.iter().map(move |&ej| (ei, ej)))
        .collect();
    let next_pair = AtomicUsize::new(0);
    let mut shard_outputs: Vec<(Vec<WorkNode>, MiningStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let pairs = &pairs;
                let next_pair = &next_pair;
                let index = &index;
                scope.spawn(move || {
                    let mut nodes = Vec::new();
                    let mut stats = MiningStats::default();
                    stats.nodes_verified.push(0);
                    loop {
                        // Batched work stealing keeps shards balanced even
                        // when a few pairs dominate the cost.
                        let at = next_pair.fetch_add(16, Ordering::Relaxed);
                        if at >= pairs.len() {
                            break;
                        }
                        for &(ei, ej) in &pairs[at..(at + 16).min(pairs.len())] {
                            let joint = index.bitmap(ei).and(index.bitmap(ej));
                            let joint_supp = joint.count_ones();
                            let max_supp = index.support(ei).max(index.support(ej));
                            if cfg.pruning.apriori {
                                if joint_supp < sigma_abs {
                                    stats.apriori_pruned += 1;
                                    continue;
                                }
                                if (joint_supp as f64 / max_supp as f64) + 1e-9 < cfg.delta {
                                    stats.apriori_pruned += 1;
                                    continue;
                                }
                            } else if joint_supp == 0 {
                                continue;
                            }
                            stats.nodes_verified[0] += 1;
                            if let Some(node) = verify_pair(
                                db, index, cfg, &mut stats, ei, ej, &joint, max_supp, sigma_abs,
                            ) {
                                nodes.push(node);
                            }
                        }
                    }
                    (nodes, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });

    let mut stats = MiningStats::default();
    stats.nodes_verified.push(0);
    stats.nodes_kept.push(0);
    stats.patterns_found.push(0);
    let mut level2: Vec<WorkNode> = Vec::new();
    for (nodes, shard_stats) in shard_outputs.drain(..) {
        merge_stats(&mut stats, shard_stats);
        level2.extend(nodes);
    }
    // Canonical order so the output is deterministic across runs.
    level2.sort_by(|a, b| a.events.cmp(&b.events));
    stats.nodes_kept[0] = level2.len();
    stats.patterns_found[0] = level2.iter().map(|n| n.patterns.len()).sum();

    let mut pair_relations = PairRelations::new(db.registry().len());
    for node in &level2 {
        for p in &node.patterns {
            pair_relations.insert(node.events[0], p.pattern.relations()[0], node.events[1]);
        }
    }

    // ---- L3+: shard L2 nodes across workers, each growing its subtree
    // with the shared read-only L2 relation table. ----
    let node_queue: Vec<WorkNode> = level2;
    let next_node = AtomicUsize::new(0);
    let queue_refs: Vec<std::sync::Mutex<Option<WorkNode>>> = node_queue
        .into_iter()
        .map(|n| std::sync::Mutex::new(Some(n)))
        .collect();
    type ShardOut = (HierarchicalPatternGraph, Vec<FrequentPattern>, MiningStats);
    let shard_results: Vec<ShardOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let next_node = &next_node;
                let queue_refs = &queue_refs;
                let index = &index;
                let pair_relations = &pair_relations;
                let freq_events = &freq_events;
                scope.spawn(move || {
                    let mut graph = HierarchicalPatternGraph::default();
                    let mut patterns = Vec::new();
                    let mut shard_stats = MiningStats::default();
                    loop {
                        let at = next_node.fetch_add(1, Ordering::Relaxed);
                        if at >= queue_refs.len() {
                            break;
                        }
                        let node = queue_refs[at]
                            .lock()
                            .expect("unpoisoned")
                            .take()
                            .expect("each node taken once");
                        let mut grow = GrowContext {
                            db,
                            cfg,
                            index,
                            pair_relations,
                            freq_events,
                            sigma_abs,
                            max_events,
                            stats: &mut shard_stats,
                            graph: &mut graph,
                            patterns: &mut patterns,
                            n_seqs,
                        };
                        grow.grow_node(node, 3);
                    }
                    (graph, patterns, shard_stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });

    // ---- Merge worker shards ----
    let mut graph = HierarchicalPatternGraph::default();
    let mut patterns: Vec<FrequentPattern> = Vec::new();
    for (shard_graph, shard_patterns, shard_stats) in shard_results {
        let offset = patterns.len();
        for (li, level) in shard_graph.levels.into_iter().enumerate() {
            while graph.levels.len() <= li {
                graph.levels.push(Default::default());
            }
            for mut node in level.nodes {
                for idx in &mut node.pattern_indices {
                    *idx += offset;
                }
                graph.levels[li].nodes.push(node);
            }
        }
        patterns.extend(shard_patterns);
        merge_stats(&mut stats, shard_stats);
    }

    MiningResult {
        patterns,
        frequent_events: freq_events
            .iter()
            .map(|&e| (e, index.support(e)))
            .collect(),
        graph,
        stats,
    }
}

fn merge_stats(into: &mut MiningStats, from: MiningStats) {
    for (i, v) in from.nodes_verified.into_iter().enumerate() {
        if into.nodes_verified.len() <= i {
            into.nodes_verified.push(0);
            into.nodes_kept.push(0);
            into.patterns_found.push(0);
        }
        into.nodes_verified[i] += v;
    }
    for (i, v) in from.nodes_kept.into_iter().enumerate() {
        if into.nodes_kept.len() <= i {
            into.nodes_kept.push(0);
        }
        into.nodes_kept[i] += v;
    }
    for (i, v) in from.patterns_found.into_iter().enumerate() {
        if into.patterns_found.len() <= i {
            into.patterns_found.push(0);
        }
        into.patterns_found[i] += v;
    }
    into.instance_checks += from.instance_checks;
    into.apriori_pruned += from.apriori_pruned;
    into.transitivity_pruned += from.transitivity_pruned;
}
