//! Multi-threaded E-HTPGM.
//!
//! HTPGM parallelizes naturally along the Hierarchical Pattern Graph:
//! L2 candidate pairs are independent of each other, and from L3 onward
//! every L2 node's subtree grows independently of its siblings (the only
//! cross-node structure, the frequent-relation table of Lemmas 4–7, is
//! complete once L2 is done and read-only afterwards). This module
//! shards both phases over `std::thread::scope` workers, driving the same
//! [`crate::candidates`] engine as the single-threaded miner, and emits
//! finished nodes into a shared [`PatternSink`]. Output is bit-identical
//! to [`crate::mine_exact`] up to pattern order (asserted by the
//! equivalence tests, and across seeded interleavings by the
//! [`crate::schedule`] harness) — node emission interleaves across
//! workers, so the order is not deterministic run to run, but the set,
//! supports and confidences are. Run statistics are summed across
//! workers.
//!
//! Panic discipline: a panicking task must neither deadlock the pool nor
//! silently drop sibling results. All scopes therefore join *every*
//! worker before re-raising the first panic payload (see [`join_all`]),
//! and lock acquisitions recover from poisoning — the panic is already
//! being propagated at the join; cascading a second one out of a
//! poisoned `Mutex` would only mask it.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread::ScopedJoinHandle;

use ftpm_events::{BoundaryKernel, BoundaryVisit, EventId, SequenceDatabase};

use crate::candidates::{CorrelationFilter, L2Engine, PairRelations, WorkNode};
use crate::config::MinerConfig;
use crate::exact::{GrowContext, MAX_EVENTS_HARD_CAP};
use crate::index::DatabaseIndex;
use crate::merge::merge_stats;
use crate::result::{MiningResult, MiningStats};
use crate::schedule::{Retire, SimCtl};
use crate::sink::{CollectSink, PatternSink};

/// Mines exactly like [`crate::mine_exact`], distributing the work over
/// `n_threads` OS threads. The pattern set, supports and confidences are
/// identical to the single-threaded miner; only the order differs.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn mine_exact_parallel(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    n_threads: usize,
) -> MiningResult {
    let mut sink = CollectSink::new();
    let stats = mine_exact_parallel_with_sink(db, cfg, n_threads, &mut sink);
    sink.into_result(stats)
}

/// Multi-threaded counterpart of [`crate::mine_exact_with_sink`]: mines
/// with `n_threads` workers that emit finished Hierarchical Pattern Graph
/// nodes into the shared `sink` as they complete (each emission is
/// atomic, but emissions interleave across workers). The streaming path
/// never materializes the full pattern result; emitted-pattern memory is
/// bounded per worker by the emission batch plus one node, though L2
/// working state (all L2 nodes with their occurrence bindings) is still
/// held during candidate generation, as in the sequential miner.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn mine_exact_parallel_with_sink(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    n_threads: usize,
    sink: &mut (dyn PatternSink + Send),
) -> MiningStats {
    mine_parallel_internal(db, cfg, n_threads, None, None, sink, None)
}

/// Joins every handle, then re-raises the first panic payload if any
/// worker panicked. Joining everything first is what keeps a panicking
/// task from silently discarding its siblings' results (they have all
/// been produced by the time the panic propagates) and what lets the
/// scheduled mode drain its sequencer cleanly before unwinding.
fn join_all<T>(handles: Vec<ScopedJoinHandle<'_, T>>) -> Vec<T> {
    let mut results = Vec::with_capacity(handles.len());
    let mut first_panic = None;
    for handle in handles {
        match handle.join() {
            Ok(value) => results.push(value),
            Err(payload) => first_panic = first_panic.or(Some(payload)),
        }
    }
    if let Some(payload) = first_panic {
        // Re-raise the original payload rather than panicking with a
        // generic message, so callers see the true failure.
        std::panic::resume_unwind(payload);
    }
    results
}

/// Recovers a lock even when a worker panicked while holding it: the
/// panic is already propagating via [`join_all`], and these critical
/// sections leave no half-written state a sibling could observe (slot
/// mutexes guard disjoint items; the sink lock batches whole nodes).
fn lock_clean<'a, T: ?Sized>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The owned-mask-aware engine behind [`mine_exact_parallel_with_sink`]:
/// `owned` restricts emitted supports to a shard's owned sequences, as in
/// [`crate::exact::mine_internal`]. Also the path the shard runner uses
/// for per-shard parallel mining, and — with `sched` set — the engine
/// under [`crate::Schedule::mine_parallel`], where every task claim goes
/// through the seeded sequencer instead of racing on the atomic alone.
pub(crate) fn mine_parallel_internal(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    n_threads: usize,
    corr: Option<&CorrelationFilter<'_>>,
    owned: Option<&[bool]>,
    sink: &mut (dyn PatternSink + Send),
    sched: Option<&SimCtl>,
) -> MiningStats {
    // lint: allow(panic, documented # Panics contract: thread count floor)
    assert!(n_threads > 0, "need at least one thread");
    if n_threads == 1 {
        return crate::exact::mine_internal(db, cfg, corr, owned, sink);
    }
    // Monomorphization seam: fix the boundary kernel once per run (the
    // same dispatch point discipline as `exact::mine_internal`).
    struct Run<'a, 'b, 'c> {
        db: &'a SequenceDatabase,
        cfg: &'a MinerConfig,
        n_threads: usize,
        corr: Option<&'a CorrelationFilter<'c>>,
        owned: Option<&'a [bool]>,
        sink: &'a mut (dyn PatternSink + Send),
        sched: Option<&'b SimCtl>,
    }
    impl BoundaryVisit for Run<'_, '_, '_> {
        type Out = MiningStats;
        fn visit<K: BoundaryKernel>(self) -> MiningStats {
            mine_parallel_internal_k::<K>(
                self.db,
                self.cfg,
                self.n_threads,
                self.corr,
                self.owned,
                self.sink,
                self.sched,
            )
        }
    }
    cfg.relation.boundary.dispatch(Run {
        db,
        cfg,
        n_threads,
        corr,
        owned,
        sink,
        sched,
    })
}

/// [`mine_parallel_internal`], monomorphized over the boundary kernel.
fn mine_parallel_internal_k<K: BoundaryKernel>(
    db: &SequenceDatabase,
    cfg: &MinerConfig,
    n_threads: usize,
    corr: Option<&CorrelationFilter<'_>>,
    owned: Option<&[bool]>,
    sink: &mut (dyn PatternSink + Send),
    sched: Option<&SimCtl>,
) -> MiningStats {
    let sigma_abs = cfg.absolute_support(db.len());
    let max_events = cfg.max_events.min(MAX_EVENTS_HARD_CAP);
    let index = DatabaseIndex::build_masked(db, cfg.relation.boundary, owned);

    // ---- L1 ----
    let freq_events: Vec<EventId> = db
        .registry()
        .ids()
        .filter(|&e| corr.is_none_or(|c| c.allows_event(e)))
        .filter(|&e| index.support(e) >= sigma_abs)
        .collect();
    let l1: Vec<(EventId, usize)> = freq_events
        .iter()
        .map(|&e| (e, index.support(e)))
        .collect();
    sink.begin(&l1);

    // ---- L2, sharded over candidate pairs ----
    let engine = L2Engine::<K> {
        db,
        index: &index,
        cfg,
        sigma_abs,
        kernel: PhantomData,
    };
    let pairs: Vec<(EventId, EventId)> = freq_events
        .iter()
        .flat_map(|&ei| freq_events.iter().map(move |&ej| (ei, ej)))
        .filter(|&(ei, ej)| corr.is_none_or(|c| c.allows_pair(ei, ej)))
        .collect();
    let next_pair = AtomicUsize::new(0);
    if let Some(ctl) = sched {
        ctl.phase(n_threads);
    }
    let mut shard_outputs: Vec<(Vec<WorkNode>, MiningStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|worker| {
                let pairs = &pairs;
                let next_pair = &next_pair;
                let engine = &engine;
                scope.spawn(move || {
                    let _retire = sched.map(|ctl| Retire::new(ctl, worker));
                    let mut nodes = Vec::new();
                    let mut stats = MiningStats::default();
                    stats.nodes_verified.push(0);
                    loop {
                        if let Some(ctl) = sched {
                            ctl.turn(worker);
                        }
                        // Batched work stealing keeps shards balanced even
                        // when a few pairs dominate the cost.
                        let at = next_pair.fetch_add(16, Ordering::Relaxed);
                        if at >= pairs.len() {
                            break;
                        }
                        for &(ei, ej) in &pairs[at..(at + 16).min(pairs.len())] {
                            if let Some(node) = engine.try_pair(ei, ej, &mut stats) {
                                nodes.push(node);
                            }
                        }
                    }
                    (nodes, stats)
                })
            })
            .collect();
        join_all(handles)
    });

    let mut stats = MiningStats::default();
    crate::exact::record_boundary_stats(db, cfg, &mut stats);
    let db_has_clipped = stats.clipped_instances > 0;
    stats.nodes_verified.push(0);
    stats.nodes_kept.push(0);
    stats.patterns_found.push(0);
    let mut level2: Vec<WorkNode> = Vec::new();
    for (nodes, shard_stats) in shard_outputs.drain(..) {
        merge_stats(&mut stats, shard_stats);
        level2.extend(nodes);
    }
    // Canonical order so work distribution is deterministic across runs.
    level2.sort_by(|a, b| a.events.cmp(&b.events));
    stats.nodes_kept[0] = level2.len();
    stats.patterns_found[0] = level2.iter().map(|n| n.patterns.len()).sum();

    let mut pair_relations = PairRelations::new(db.registry().len());
    for node in &level2 {
        for p in &node.patterns {
            pair_relations.insert(node.events[0], p.pattern.relations()[0], node.events[1]);
        }
    }

    // ---- L3+: shard L2 nodes across workers, each growing its subtree
    // with the shared read-only L2 relation table and emitting finished
    // nodes straight into the shared sink. ----
    let next_node = AtomicUsize::new(0);
    let queue_refs: Vec<Mutex<Option<WorkNode>>> = level2
        .into_iter()
        .map(|n| Mutex::new(Some(n)))
        .collect();
    let shared = Mutex::new(sink);
    if let Some(ctl) = sched {
        ctl.phase(n_threads);
    }
    let shard_stats_out: Vec<MiningStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|worker| {
                let next_node = &next_node;
                let queue_refs = &queue_refs;
                let index = &index;
                let pair_relations = &pair_relations;
                let freq_events = &freq_events;
                let shared = &shared;
                scope.spawn(move || {
                    let _retire = sched.map(|ctl| Retire::new(ctl, worker));
                    let mut worker_sink = SharedSink::new(shared);
                    let mut shard_stats = MiningStats::default();
                    loop {
                        if let Some(ctl) = sched {
                            ctl.turn(worker);
                        }
                        let at = next_node.fetch_add(1, Ordering::Relaxed);
                        if at >= queue_refs.len() {
                            break;
                        }
                        let node = lock_clean(&queue_refs[at])
                            .take()
                            // lint: allow(panic, structural invariant: the atomic counter hands each slot index out once)
                            .expect("each node taken once");
                        let mut grow = GrowContext::<K> {
                            db,
                            cfg,
                            index,
                            pair_relations,
                            freq_events,
                            sigma_abs,
                            max_events,
                            stats: &mut shard_stats,
                            sink: &mut worker_sink,
                            db_has_clipped,
                            owned,
                            kernel: PhantomData,
                        };
                        grow.grow_node(node, 3);
                    }
                    worker_sink.flush();
                    shard_stats
                })
            })
            .collect();
        join_all(handles)
    });

    for shard_stats in shard_stats_out {
        merge_stats(&mut stats, shard_stats);
    }
    stats
}

/// Runs `f(index, &mut item)` for every item, distributing items over up
/// to `threads` scoped workers with atomic work stealing (the same
/// machinery the L3 node queue above uses). With one thread — or one
/// item — it degrades to a plain loop with no spawn at all. Items are
/// processed exactly once; completion order is unspecified, but every
/// call has returned when this function returns. With `sched` set, each
/// claim goes through the seeded sequencer (see [`crate::schedule`]).
///
/// This is the shard executor's outer loop: each exchange round runs one
/// stage on every [`crate::executor`] worker concurrently.
pub(crate) fn par_for_each<T, F>(items: &mut [T], threads: usize, sched: Option<&SimCtl>, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let slots: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    let next = AtomicUsize::new(0);
    if let Some(ctl) = sched {
        ctl.phase(threads);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let slots = &slots;
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let _retire = sched.map(|ctl| Retire::new(ctl, worker));
                    loop {
                        if let Some(ctl) = sched {
                            ctl.turn(worker);
                        }
                        let at = next.fetch_add(1, Ordering::Relaxed);
                        if at >= slots.len() {
                            break;
                        }
                        let mut item = lock_clean(&slots[at]);
                        f(at, &mut item);
                    }
                })
            })
            .collect();
        join_all(handles);
    });
}

/// Maps `f` over `items` with up to `threads` scoped workers, preserving
/// input order in the output. Built on [`par_for_each`]; single-threaded
/// calls stay allocation- and spawn-free. Used for the intra-shard
/// parallelism of the exchange executor's propose stages (L2 pair chunks,
/// level-k node growth), composing with the shard-level concurrency the
/// way `--threads` composes with `--shards`.
pub(crate) fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<(Option<T>, Option<R>)> =
        items.into_iter().map(|t| (Some(t), None)).collect();
    par_for_each(&mut slots, threads, None, |_, slot| {
        // lint: allow(panic, structural invariant: the atomic counter hands each slot index out once)
        let item = slot.0.take().expect("each item mapped once");
        slot.1 = Some(f(item));
    });
    slots
        .into_iter()
        // lint: allow(panic, structural invariant: par_for_each visits every slot exactly once)
        .map(|(_, r)| r.expect("every slot filled"))
        .collect()
}

/// One buffered node emission awaiting the shared-sink lock.
type PendingNode = (Vec<EventId>, usize, usize, Vec<crate::result::FrequentPattern>);

/// How many patterns a worker buffers before taking the shared-sink
/// lock. Amortizes contention when many small nodes finish in bursts;
/// worker-resident pattern memory stays bounded by this plus one node.
const SHARED_SINK_BATCH: usize = 1024;

/// Per-worker handle on the shared sink: buffers finished nodes and
/// drains them in batches under one lock acquisition, so each node still
/// lands atomically while workers contend far less. (Serialization work
/// done *inside* the target sink — e.g. CSV formatting — still happens
/// under the lock; moving that worker-side needs a byte-level seam, see
/// ROADMAP "Output channels".)
struct SharedSink<'a, 'b> {
    shared: &'a Mutex<&'b mut (dyn PatternSink + Send)>,
    pending: Vec<PendingNode>,
    pending_patterns: usize,
}

impl<'a, 'b> SharedSink<'a, 'b> {
    fn new(shared: &'a Mutex<&'b mut (dyn PatternSink + Send)>) -> Self {
        SharedSink {
            shared,
            pending: Vec::new(),
            pending_patterns: 0,
        }
    }

    /// Drains the buffer into the shared sink under one lock.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut sink = lock_clean(self.shared);
        for (events, support, k, patterns) in self.pending.drain(..) {
            sink.node(events, support, k, patterns);
        }
        self.pending_patterns = 0;
    }
}

impl PatternSink for SharedSink<'_, '_> {
    fn node(
        &mut self,
        events: Vec<EventId>,
        support: usize,
        k: usize,
        patterns: Vec<crate::result::FrequentPattern>,
    ) {
        self.pending_patterns += patterns.len();
        self.pending.push((events, support, k, patterns));
        if self.pending_patterns >= SHARED_SINK_BATCH {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_for_each_with_more_threads_than_items() {
        // threads is clamped to the item count; surplus workers are
        // never spawned and every item is still processed exactly once.
        let mut items = vec![0u32; 3];
        par_for_each(&mut items, 64, None, |i, item| *item += i as u32 + 1);
        assert_eq!(items, vec![1, 2, 3]);
    }

    #[test]
    fn par_for_each_with_empty_work_list() {
        let mut items: Vec<u32> = Vec::new();
        par_for_each(&mut items, 8, None, |_, _| unreachable!("no items"));
        assert!(items.is_empty());
    }

    #[test]
    fn par_map_edge_cases() {
        let empty: Vec<u32> = par_map(Vec::new(), 8, |x: u32| x);
        assert!(empty.is_empty());
        // Single item: stays on the calling thread.
        assert_eq!(par_map(vec![7u32], 8, |x| x * 2), vec![14]);
        // More threads than items, order preserved.
        assert_eq!(
            par_map(vec![1u32, 2, 3], 64, |x| x * 10),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn worker_panic_propagates_without_deadlock_or_dropped_siblings() {
        // Item 3 panics; the pool must (a) unwind out of par_for_each
        // rather than hang, (b) re-raise the original payload, and (c)
        // have processed every sibling item — a panicking task must not
        // silently drop its siblings' results.
        let processed = AtomicUsize::new(0);
        let mut items: Vec<u32> = (0..8).collect();
        // Silence the worker's default panic-to-stderr backtrace for the
        // duration of this test; restore the hook after.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_for_each(&mut items, 2, None, |_, item| {
                if *item == 3 {
                    panic!("task failure on item {item}");
                }
                processed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        std::panic::set_hook(prev_hook);
        let payload = result.expect_err("the worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("original panic payload");
        assert!(msg.contains("task failure on item 3"), "payload was {msg:?}");
        assert_eq!(
            processed.load(Ordering::Relaxed),
            7,
            "all sibling items processed despite the panic"
        );
    }

    #[test]
    fn shared_sink_flushes_on_batch_boundary() {
        use crate::sink::CountingSink;
        let mut target = CountingSink::default();
        {
            let boxed: &mut (dyn PatternSink + Send) = &mut target;
            let shared = Mutex::new(boxed);
            let mut sink = SharedSink::new(&shared);
            sink.node(vec![EventId(0)], 1, 2, Vec::new());
            sink.flush();
        }
        assert_eq!(target.nodes(), 1);
    }
}
