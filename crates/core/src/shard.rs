//! Shard-by-time-range mining: cut the symbolic database into K
//! overlapping time-range shards, mine each shard independently, and
//! merge the per-shard statistics losslessly (see [`crate::merge`]).
//!
//! # Geometry and the `t_ov = t_max` lemma
//!
//! A shard boundary is a window boundary: the window index space of the
//! global split is partitioned into K contiguous *owned* ranges, and each
//! shard converts (and mines) a step slice covering its owned windows
//! plus a pad of at least `t_ov` ticks on both sides
//! ([`SplitConfig::shard_spans`]). Windows inside a pad are mined by both
//! adjacent shards — the *overlap region* — and are deduplicated at merge
//! time by counting only the windows a shard owns.
//!
//! Each shard computes run extents *within its own slice*, exactly as an
//! independent service node holding only its time range (± the pad)
//! would. This is lossless for [`BoundaryPolicy::TrueExtent`] with
//! `t_ov = t_max` by an extension of the PR 3 window lemma: a run extent
//! truncated at a slice edge necessarily spans more than `t_ov ≥ t_max`
//! ticks, so no occurrence involving a truncated extent can ever satisfy
//! the duration constraint — in the shard *or* in the unsharded baseline
//! (where the true extent is even longer). Every other extent, clip flag
//! and clipped interval of an owned window is bit-identical to the global
//! conversion's. `Clip` and `Discard` never look past the clipped
//! interval / clip flags, so they shard losslessly as well.
//!
//! # Support-complete vs candidate-exchange per-shard mining
//!
//! A pattern's global support is the sum of its owned supports across
//! shards, so a shard cannot apply the global σ/δ locally — a pattern
//! frequent overall may sit below threshold in every single shard. The
//! *support-complete* path ([`ShardPlan::mine_into`]) has each shard mine
//! with absolute support 1 and no confidence gate, and the merge applies
//! the global thresholds to the summed statistics — exact, but with no
//! per-shard pruning at all. The *candidate-exchange* path
//! ([`ShardPlan::mine_exchange_into`], see [`crate::executor`]) restores
//! pruning: shards propose level-`k` candidates with owned supports, a
//! coordinator applies the global σ/δ gate to the sums, and only the
//! survivors are grown to level `k + 1` — same exact output, strictly
//! fewer candidates, and the shards run concurrently.

use std::sync::Arc;
use std::time::Instant;

use ftpm_events::{
    to_sequence_database, BoundaryPolicy, EventId, EventInstance, EventRegistry,
    SequenceDatabase, ShardSpan, SplitConfig, TemporalSequence,
};
use ftpm_mi::CorrelationGraph;
use ftpm_timeseries::SymbolicDatabase;

use crate::config::MinerConfig;
use crate::executor::{mine_exchange_internal, ShardReport};
use crate::merge::ShardMerge;
use crate::result::{MiningResult, MiningStats};
use crate::sink::{CollectSink, PatternSink};

/// Plans shard-by-time-range mining runs.
///
/// # Examples
///
/// ```
/// use ftpm_core::{MinerConfig, ShardPlanner};
/// use ftpm_events::{BoundaryPolicy, RelationConfig, SplitConfig};
/// use ftpm_datagen::nist_like;
///
/// let data = nist_like(0.01).project_variables(5);
/// let cfg = MinerConfig::new(0.4, 0.4)
///     .with_max_events(3)
///     .with_relation(
///         RelationConfig::new(0, 1, 180).with_boundary(BoundaryPolicy::TrueExtent),
///     );
/// let plan = ShardPlanner::new(4)
///     .plan(&data.syb, data.split, cfg.relation.t_max)
///     .expect("valid geometry");
/// let result = plan.mine(&cfg, 1);
/// assert!(!result.is_empty());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ShardPlanner {
    shards: usize,
}

impl ShardPlanner {
    /// A planner cutting the data into (at most) `shards` time-range
    /// shards.
    pub fn new(shards: usize) -> Self {
        ShardPlanner { shards }
    }

    /// Cuts `syb` into time-range shards whose slices overlap by at least
    /// `t_ov` ticks, converts each slice with `split`, and builds the
    /// master registry the merged output is expressed in.
    ///
    /// For a lossless run under [`BoundaryPolicy::TrueExtent`], pass the
    /// miner's `t_max` as `t_ov` (the Fig 3 lemma, one level up); `Clip`
    /// and `Discard` are lossless for any `t_ov ≥ 0`.
    pub fn plan(
        &self,
        syb: &SymbolicDatabase,
        split: SplitConfig,
        t_ov: i64,
    ) -> Result<ShardPlan, String> {
        let spans = split.shard_spans(syb.step(), syb.n_steps(), self.shards, t_ov)?;
        let n_windows = split.n_windows(syb.step(), syb.n_steps());
        // The master registry uses the *global* conversion's intern
        // order, and every shard database is remapped onto it before
        // mining. This is load-bearing for exactness, not cosmetic: the
        // chronological tie-break for instances with identical
        // (start, end) is the EventId, so a shard mining under its
        // slice's own intern order could bind a tied pair in the
        // opposite orientation from the unsharded baseline and emit the
        // mirrored pattern. (A distributed deployment would ship this
        // shared event dictionary to the shards the same way.)
        let mut registry = to_sequence_database(syb, split).registry().clone();
        // Pass 1: convert every slice and build its remap onto the master
        // registry — the only stage that may (on a geometry bug) still
        // extend the registry, so it runs before the registry is frozen.
        let mut converted = Vec::with_capacity(spans.len());
        for span in spans {
            let slice = syb.slice_steps(span.slice_steps.0, span.slice_steps.1);
            let slice_db = to_sequence_database(&slice, split);
            // Shard windows are global windows, so every slice event
            // exists in the master registry; intern is a lookup (it
            // would only extend the registry on a geometry bug).
            let remap: Vec<EventId> = slice_db
                .registry()
                .ids()
                .map(|e| {
                    registry.intern(
                        slice_db.registry().variable(e),
                        slice_db.registry().symbol(e),
                        || slice_db.registry().label(e).to_owned(),
                    )
                })
                .collect();
            converted.push((span, slice_db, remap));
        }
        // Pass 2: the registry is final — freeze it into an `Arc` and
        // hand every shard database the same allocation (K shards, one
        // label table; the per-shard deep clone used to dominate plan
        // memory).
        let registry = Arc::new(registry);
        let mut shards = Vec::with_capacity(converted.len());
        let mut maps = Vec::with_capacity(converted.len());
        for (index, (span, slice_db, remap)) in converted.into_iter().enumerate() {
            let sequences = slice_db
                .sequences()
                .iter()
                .map(|seq| {
                    // TemporalSequence::new re-sorts, so tied instances
                    // land in the baseline's order under the master ids.
                    TemporalSequence::new(
                        seq.instances()
                            .iter()
                            .map(|inst| EventInstance {
                                event: remap[inst.event.0 as usize],
                                ..*inst
                            })
                            .collect(),
                    )
                })
                .collect();
            let db = SequenceDatabase::new(Arc::clone(&registry), sequences);
            let owned: Vec<bool> = (0..db.len())
                .map(|j| {
                    let g = span.first_window + j;
                    (span.owned_windows.0..span.owned_windows.1).contains(&g)
                })
                .collect();
            debug_assert_eq!(
                owned.iter().filter(|&&o| o).count(),
                span.owned_windows.1 - span.owned_windows.0,
                "every owned window must be emitted by its shard's slice"
            );
            // The shard db already speaks master ids, so its merge map
            // is the identity; MergeSink keeps the translation seam for
            // remote shards that arrive with foreign registries.
            maps.push(registry.ids().collect());
            shards.push(Shard {
                index,
                db,
                owned,
                span,
            });
        }
        Ok(ShardPlan {
            shards,
            maps,
            registry,
            n_windows,
            t_ov,
        })
    }
}

/// One time-range shard: its converted sequence database (owned windows
/// plus the duplicated overlap-pad windows) and the ownership mask that
/// the merge deduplicates by.
#[derive(Debug)]
pub struct Shard {
    /// Position in the plan, `0..K`.
    pub index: usize,
    /// The shard's windows, converted from its own slice of the data.
    pub db: SequenceDatabase,
    /// `owned[i]` — window `i` of `db` is owned by this shard (exactly
    /// one shard owns each global window).
    pub owned: Vec<bool>,
    /// The step/window geometry behind `db`.
    pub span: ShardSpan,
}

/// A planned sharded mining run: per-shard databases, ownership masks,
/// and the master registry merged patterns are expressed in.
#[derive(Debug)]
pub struct ShardPlan {
    shards: Vec<Shard>,
    /// Per shard: shard `EventId` → master `EventId`.
    maps: Vec<Vec<EventId>>,
    /// Shared with every shard database (see [`ShardPlanner::plan`]).
    registry: Arc<EventRegistry>,
    /// Global window count — the merged `|D_SEQ|`.
    n_windows: usize,
    t_ov: i64,
}

impl ShardPlan {
    /// The master registry of the merged output. Build display paths and
    /// writer sinks against this registry, not the shards' own.
    pub fn registry(&self) -> &EventRegistry {
        &self.registry
    }

    /// The master registry as a shareable handle (no deep clone) — the
    /// merge accumulator and the shard databases all hold this same
    /// allocation.
    pub fn shared_registry(&self) -> Arc<EventRegistry> {
        Arc::clone(&self.registry)
    }

    /// The planned shards.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Global number of windows (the merged support denominator).
    pub fn n_windows(&self) -> usize {
        self.n_windows
    }

    /// The shard-slice overlap in ticks.
    pub fn t_ov(&self) -> i64 {
        self.t_ov
    }

    /// Whether every shard's id map is the identity — true for every
    /// locally planned run, because [`ShardPlanner::plan`] remaps shard
    /// databases onto the master registry *before* mining. The exchange
    /// executor keys proposals without per-shard translation on the
    /// strength of this invariant (and asserts it in debug builds); a
    /// future remote shard arriving with a foreign registry must go
    /// through [`crate::MergeSink`]'s translation seam instead.
    pub(crate) fn maps_are_identity(&self) -> bool {
        self.maps
            .iter()
            .all(|map| map.iter().enumerate().all(|(i, e)| e.0 as usize == i))
    }

    /// Mines every shard (each with `threads` workers) into a streaming
    /// [`ShardMerge`], then emits the merged, globally-thresholded output
    /// into `sink`. Returns the merged run statistics.
    ///
    /// This is the support-complete path: shards run sequentially and
    /// without any per-shard pruning. Prefer
    /// [`ShardPlan::mine_exchange_into`] unless cross-validating it.
    pub fn mine_into(
        &self,
        cfg: &MinerConfig,
        threads: usize,
        sink: &mut dyn PatternSink,
    ) -> MiningStats {
        self.mine_into_reported(cfg, threads, sink).0
    }

    /// [`ShardPlan::mine_into`] plus one [`ShardReport`] per shard
    /// (candidates generated, wall time; `candidates_pruned` is always 0
    /// here — the support-complete path defers all filtering to the
    /// merge).
    pub fn mine_into_reported(
        &self,
        cfg: &MinerConfig,
        threads: usize,
        sink: &mut dyn PatternSink,
    ) -> (MiningStats, Vec<ShardReport>) {
        self.mine_into_reported_filtered(cfg, threads, None, sink)
    }

    /// The filter-aware engine behind [`ShardPlan::mine_into_reported`]
    /// and [`ShardPlan::mine_approximate_into`]: `corr` is the global
    /// A-HTPGM gate (built once against the master registry, which every
    /// shard database already speaks), applied by each shard's miner at
    /// the same L1/L2 points as everywhere else.
    fn mine_into_reported_filtered(
        &self,
        cfg: &MinerConfig,
        threads: usize,
        corr: Option<&crate::candidates::CorrelationFilter<'_>>,
        sink: &mut dyn PatternSink,
    ) -> (MiningStats, Vec<ShardReport>) {
        // Support-complete shard mining: absolute support 1, no local
        // confidence gate — only the merge can apply the global σ/δ.
        let shard_cfg = MinerConfig {
            sigma: f64::MIN_POSITIVE,
            delta: f64::MIN_POSITIVE,
            ..*cfg
        };
        let mut merge = ShardMerge::new(Arc::clone(&self.registry), self.n_windows);
        let mut reports = Vec::with_capacity(self.shards.len());
        let mut clipped = 0u64;
        let mut discarded = 0u64;
        for (shard, map) in self.shards.iter().zip(&self.maps) {
            let started = Instant::now();
            let candidates_proposed;
            {
                let mut merge_sink = merge.sink(map);
                let stats = crate::parallel::mine_parallel_internal(
                    &shard.db,
                    &shard_cfg,
                    threads.max(1),
                    corr,
                    Some(&shard.owned),
                    &mut merge_sink,
                    None,
                );
                candidates_proposed = stats.patterns_found.iter().sum();
                merge.add_stats(stats);
            }
            // Owned single-event supports and boundary counts, under the
            // same boundary policy the miners applied.
            let mut seen: Vec<bool> = vec![false; map.len()];
            for (si, seq) in shard.db.sequences().iter().enumerate() {
                if !shard.owned[si] {
                    continue;
                }
                seen.iter_mut().for_each(|s| *s = false);
                for inst in seq.instances() {
                    if inst.is_clipped() {
                        clipped += 1;
                        if cfg.relation.boundary == BoundaryPolicy::Discard {
                            discarded += 1;
                            continue;
                        }
                    }
                    seen[inst.event.0 as usize] = true;
                }
                // Events outside X_C stay invisible to the merge too, so
                // the merged frequent-event list and confidence
                // denominators match the unsharded approximate miner.
                for (e, s) in seen.iter().enumerate() {
                    if *s && corr.is_none_or(|c| c.allows_event(map[e])) {
                        merge.add_event_support(map[e], 1);
                    }
                }
            }
            reports.push(ShardReport {
                shard: shard.index,
                windows_owned: shard.owned.iter().filter(|&&o| o).count(),
                candidates_proposed,
                candidates_pruned: 0,
                wall: started.elapsed(),
            });
        }
        merge.set_boundary_counts(clipped, discarded);
        (merge.finish_into(cfg, sink), reports)
    }

    /// Like [`ShardPlan::mine_into`], collecting into a [`MiningResult`]
    /// (expressed in [`ShardPlan::registry`]).
    pub fn mine(&self, cfg: &MinerConfig, threads: usize) -> MiningResult {
        let mut sink = CollectSink::new();
        let stats = self.mine_into(cfg, threads, &mut sink);
        sink.into_result(stats)
    }

    /// Mines the plan through the two-phase candidate-exchange executor
    /// (see [`crate::executor`]): shards run *concurrently*, propose
    /// level-`k` candidates with owned supports, and only candidates
    /// passing the global σ/δ gate are grown to level `k + 1`. The
    /// merged output is identical to [`ShardPlan::mine_into`] and to the
    /// unsharded [`crate::mine_exact`]; per-shard candidate and timing
    /// observability comes back as [`ShardReport`]s.
    ///
    /// `threads` is the total worker budget, split between concurrent
    /// shards and intra-shard parallelism.
    pub fn mine_exchange_into(
        &self,
        cfg: &MinerConfig,
        threads: usize,
        sink: &mut dyn PatternSink,
    ) -> (MiningStats, Vec<ShardReport>) {
        mine_exchange_internal(self, cfg, threads, None, sink, None)
    }

    /// Like [`ShardPlan::mine_exchange_into`], collecting into a
    /// [`MiningResult`] (expressed in [`ShardPlan::registry`]).
    pub fn mine_exchange(
        &self,
        cfg: &MinerConfig,
        threads: usize,
    ) -> (MiningResult, Vec<ShardReport>) {
        let mut sink = CollectSink::new();
        let (stats, reports) = self.mine_exchange_into(cfg, threads, &mut sink);
        (sink.into_result(stats), reports)
    }

    /// A-HTPGM over the support-complete sharded path: every shard mines
    /// under the one globally-built correlation `graph` (constructed by
    /// the caller from the *unsliced* symbolic database — per-shard
    /// graphs would gate on slice-local MI and diverge). The merged
    /// output equals the unsharded [`crate::mine_approximate`] run with
    /// the same graph exactly.
    pub fn mine_approximate_into(
        &self,
        graph: &CorrelationGraph,
        cfg: &MinerConfig,
        threads: usize,
        sink: &mut dyn PatternSink,
    ) -> (MiningStats, Vec<ShardReport>) {
        let filter = crate::approx::correlation_filter(graph, &self.registry);
        self.mine_into_reported_filtered(cfg, threads, Some(&filter), sink)
    }

    /// A-HTPGM over the candidate-exchange executor: the coordinator
    /// holds the one globally-built filter and the `G_C` edge gate is
    /// applied *at propose time*, so shards never verify (or ship) an
    /// MI-pruned pair — the multiplicative composition of the two
    /// pruning families. The merged output equals the unsharded
    /// [`crate::mine_approximate`] run with the same graph exactly.
    pub fn mine_approximate_exchange_into(
        &self,
        graph: &CorrelationGraph,
        cfg: &MinerConfig,
        threads: usize,
        sink: &mut dyn PatternSink,
    ) -> (MiningStats, Vec<ShardReport>) {
        let filter = crate::approx::correlation_filter(graph, &self.registry);
        mine_exchange_internal(self, cfg, threads, Some(&filter), sink, None)
    }

    /// Like [`ShardPlan::mine_approximate_exchange_into`], collecting
    /// into a [`MiningResult`] (expressed in [`ShardPlan::registry`]).
    pub fn mine_approximate_exchange(
        &self,
        graph: &CorrelationGraph,
        cfg: &MinerConfig,
        threads: usize,
    ) -> (MiningResult, Vec<ShardReport>) {
        let mut sink = CollectSink::new();
        let (stats, reports) = self.mine_approximate_exchange_into(graph, cfg, threads, &mut sink);
        (sink.into_result(stats), reports)
    }
}

/// The result of [`mine_sharded`]: the merged mining result plus the
/// master registry its event ids refer to (shard slices intern events in
/// their own orders, so the caller's registry does not apply).
#[derive(Debug)]
pub struct ShardedMining {
    /// The merged, globally-thresholded result.
    pub result: MiningResult,
    /// The registry [`ShardedMining::result`] is expressed in (shared
    /// with the plan's shard databases, not a deep clone).
    pub registry: Arc<EventRegistry>,
    /// Number of shards actually mined (≤ the requested count).
    pub shards: usize,
    /// Shard-slice overlap in ticks (`t_max` of the miner config).
    pub t_ov: i64,
}

/// One-call sharded mining: plans `shards` time-range shards over
/// `syb`/`split` with `t_ov = cfg.relation.t_max`, mines each with
/// `threads` workers, and merges. Equals the unsharded
/// [`crate::mine_exact`] run on the same split — by label, support,
/// confidence and clipped-occurrence count — for every
/// [`BoundaryPolicy`] (for [`BoundaryPolicy::TrueExtent`] this needs the
/// `t_ov = t_max` pad, which is why the overlap is taken from the
/// config's `t_max`).
pub fn mine_sharded(
    syb: &SymbolicDatabase,
    split: SplitConfig,
    cfg: &MinerConfig,
    shards: usize,
    threads: usize,
) -> Result<ShardedMining, String> {
    let plan = ShardPlanner::new(shards).plan(syb, split, cfg.relation.t_max)?;
    let result = plan.mine(cfg, threads);
    let n_shards = plan.shards.len();
    Ok(ShardedMining {
        result,
        registry: plan.registry,
        shards: n_shards,
        t_ov: plan.t_ov,
    })
}

/// One-call sharded mining through the two-phase candidate-exchange
/// executor (concurrent shards, global apriori gate between levels —
/// see [`crate::executor`]). Output equals [`mine_sharded`] and the
/// unsharded [`crate::mine_exact`] exactly; the [`ShardReport`]s expose
/// how many candidates each shard proposed and how many the gate pruned.
pub fn mine_sharded_exchange(
    syb: &SymbolicDatabase,
    split: SplitConfig,
    cfg: &MinerConfig,
    shards: usize,
    threads: usize,
) -> Result<(ShardedMining, Vec<ShardReport>), String> {
    let plan = ShardPlanner::new(shards).plan(syb, split, cfg.relation.t_max)?;
    let (result, reports) = plan.mine_exchange(cfg, threads);
    let n_shards = plan.shards.len();
    Ok((
        ShardedMining {
            result,
            registry: plan.registry,
            shards: n_shards,
            t_ov: plan.t_ov,
        },
        reports,
    ))
}

/// One-call approximate sharded mining through the candidate-exchange
/// executor: builds the plan, mines every shard under the caller's
/// globally-built correlation `graph` (the MI edge gate applies at
/// propose time), and merges. Output equals the unsharded
/// [`crate::mine_approximate`] run with the same graph exactly.
pub fn mine_approximate_sharded_exchange(
    syb: &SymbolicDatabase,
    split: SplitConfig,
    graph: &CorrelationGraph,
    cfg: &MinerConfig,
    shards: usize,
    threads: usize,
) -> Result<(ShardedMining, Vec<ShardReport>), String> {
    let plan = ShardPlanner::new(shards).plan(syb, split, cfg.relation.t_max)?;
    let (result, reports) = plan.mine_approximate_exchange(graph, cfg, threads);
    let n_shards = plan.shards.len();
    Ok((
        ShardedMining {
            result,
            registry: plan.registry,
            shards: n_shards,
            t_ov: plan.t_ov,
        },
        reports,
    ))
}
