//! Deterministic schedule exploration for the parallel miners — a
//! mini-loom for the scoped work-stealing pools.
//!
//! The claim "output is bit-identical to [`crate::mine_exact`] up to
//! pattern order" covers *every* worker interleaving, but an ordinary
//! test run only ever sees the few schedules the OS happens to produce.
//! This module turns the claim into a checked property: a [`Schedule`]
//! replaces the pools' free-running claim loops with a seeded
//! sequencer, so each seed drives one reproducible interleaving of the
//! task-claim order — L2 pair chunks and L3 subtrees for
//! [`Schedule::mine_parallel`], propose → gate → expand shard rounds for
//! [`Schedule::mine_exchange`] — and a test sweeps seeds asserting the
//! merged output never changes.
//!
//! # How the sequencer works
//!
//! Workers still run on real OS threads inside `std::thread::scope`, but
//! in scheduled mode every claim goes through [`SimCtl::turn`]: the
//! worker parks until *all* live workers of the phase are parked, then a
//! seeded RNG grants the floor to exactly one of them, which takes the
//! next task while the rest stay parked. Execution is thereby serialized
//! at task granularity, and the grant sequence — recorded in
//! [`Schedule::trace`] — *is* the interleaving: which worker claimed
//! which task in which order, the only scheduling freedom these pools
//! have (the task bodies themselves share no mutable state). A worker
//! that runs out of work retires from the phase via a drop guard, so the
//! barrier shrinks and the remaining workers keep being sequenced —
//! including when a worker panics mid-task, which keeps the harness
//! deadlock-free under the same panic propagation the OS-mode pool has.
//!
//! Distinct seeds give distinct grant sequences (statistically — the
//! invariance test asserts the ones it sweeps really differ), and the
//! same seed always replays the same schedule, making any failure a
//! one-seed reproduction case.

use std::sync::{Condvar, Mutex, PoisonError};

use ftpm_events::SequenceDatabase;

use crate::config::MinerConfig;
use crate::executor::{mine_exchange_internal, ShardReport};
use crate::result::MiningResult;
use crate::shard::ShardPlan;
use crate::sink::CollectSink;

/// SplitMix64 — scrambles user seeds so that sequential seeds (0, 1, 2,
/// …) still produce uncorrelated xorshift streams, and seed 0 is not a
/// fixed point.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mutable sequencer state, under the [`SimCtl`] mutex.
struct SimState {
    /// xorshift64* RNG state (never zero).
    rng: u64,
    /// Workers of the current phase still running (not retired).
    live: usize,
    /// `waiting[w]` — worker `w` is parked in [`SimCtl::turn`].
    waiting: Vec<bool>,
    /// The worker currently granted the floor, if any.
    grant: Option<usize>,
    /// Every grant issued so far, across all phases.
    trace: Vec<usize>,
}

impl SimState {
    fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna): full 2^64−1 period, passes the pick-an-
        // index use here easily.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Seeded choice among the currently waiting workers.
    fn pick_waiting(&mut self) -> usize {
        let waiting: Vec<usize> = (0..self.waiting.len())
            .filter(|&w| self.waiting[w])
            .collect();
        let i = (self.next_u64() >> 32) as usize % waiting.len();
        waiting[i]
    }
}

/// The sequencer handle shared by the pool workers of a scheduled run.
///
/// One `SimCtl` lives for the whole mining call and is re-armed with
/// [`SimCtl::phase`] before each scoped pool (the parallel miner's L2
/// and L3 scopes, each `par_for_each` round of the exchange executor).
pub(crate) struct SimCtl {
    m: Mutex<SimState>,
    cv: Condvar,
}

impl SimCtl {
    pub(crate) fn new(seed: u64) -> SimCtl {
        SimCtl {
            m: Mutex::new(SimState {
                rng: splitmix64(seed).max(1),
                live: 0,
                waiting: Vec::new(),
                grant: None,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Recovers the state even if a worker panicked while holding the
    /// lock — the sequencer must keep granting so surviving workers can
    /// finish and the panic can propagate at join.
    fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms the sequencer for a pool of `workers` threads (ids
    /// `0..workers`). Must happen before the pool spawns so the first
    /// grant waits for every worker — spawn order stays invisible.
    pub(crate) fn phase(&self, workers: usize) {
        let mut st = self.lock();
        st.live = workers;
        st.waiting = vec![false; workers];
        st.grant = None;
    }

    /// Blocks until the seeded sequencer grants `worker` the floor.
    /// Called by pool workers immediately before each task claim.
    pub(crate) fn turn(&self, worker: usize) {
        let mut st = self.lock();
        st.waiting[worker] = true;
        loop {
            if st.grant.is_none() && st.live > 0 {
                let parked = st.waiting.iter().filter(|&&w| w).count();
                if parked == st.live {
                    let pick = st.pick_waiting();
                    st.grant = Some(pick);
                    st.trace.push(pick);
                    self.cv.notify_all();
                }
            }
            if st.grant == Some(worker) {
                st.grant = None;
                st.waiting[worker] = false;
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Removes `worker` from the phase: the all-parked barrier shrinks
    /// so the remaining workers keep being sequenced.
    fn retire(&self, worker: usize) {
        let mut st = self.lock();
        st.live -= 1;
        st.waiting[worker] = false;
        self.cv.notify_all();
    }

    fn trace(&self) -> Vec<usize> {
        self.lock().trace.clone()
    }
}

/// Drop guard retiring a worker from its [`SimCtl`] phase — on normal
/// exit *and* on unwind, so a panicking task can never leave the other
/// workers parked forever.
pub(crate) struct Retire<'a> {
    ctl: &'a SimCtl,
    worker: usize,
}

impl<'a> Retire<'a> {
    pub(crate) fn new(ctl: &'a SimCtl, worker: usize) -> Retire<'a> {
        Retire { ctl, worker }
    }
}

impl Drop for Retire<'_> {
    fn drop(&mut self) {
        self.ctl.retire(self.worker);
    }
}

/// One seeded worker interleaving for the parallel miners.
///
/// ```no_run
/// use ftpm_core::{mine_exact, MinerConfig, Schedule};
///
/// let seq = ftpm_datagen::smartcity_like(0.05).seq;
/// let cfg = MinerConfig::new(0.5, 0.7);
/// let baseline = mine_exact(&seq, &cfg);
/// for seed in 0..4 {
///     let sched = Schedule::new(seed, 4);
///     let run = sched.mine_parallel(&seq, &cfg);
///     assert_eq!(run.patterns.len(), baseline.patterns.len());
///     println!("seed {seed}: interleaving {:?}", sched.trace());
/// }
/// ```
pub struct Schedule {
    ctl: SimCtl,
    workers: usize,
}

impl Schedule {
    /// A schedule driving `workers` simulated workers under `seed`.
    /// `workers` is clamped to at least 1 (with one worker there is only
    /// one schedule, so nothing is explored — use ≥ 2).
    pub fn new(seed: u64, workers: usize) -> Schedule {
        Schedule {
            ctl: SimCtl::new(seed),
            workers: workers.max(1),
        }
    }

    /// Number of simulated workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The grant sequence of every scheduled pool so far: which worker
    /// claimed a task, in claim order. Two runs with equal traces
    /// executed the same interleaving.
    pub fn trace(&self) -> Vec<usize> {
        self.ctl.trace()
    }

    /// [`crate::mine_exact_parallel`] under this schedule: same output
    /// contract, but the L2/L3 claim order is the seeded interleaving
    /// instead of whatever the OS produces.
    pub fn mine_parallel(&self, db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
        let mut sink = CollectSink::new();
        let stats = crate::parallel::mine_parallel_internal(
            db,
            cfg,
            self.workers,
            None,
            None,
            &mut sink,
            Some(&self.ctl),
        );
        sink.into_result(stats)
    }

    /// [`ShardPlan::mine_exchange`] under this schedule: the shard
    /// workers' propose → gate → expand rounds run in the seeded
    /// interleaving. Intra-shard parallelism is forced to 1 so the
    /// schedule fully determines the execution (the exchange protocol's
    /// concurrency story *is* the shard-level round loop).
    pub fn mine_exchange(
        &self,
        plan: &ShardPlan,
        cfg: &MinerConfig,
    ) -> (MiningResult, Vec<ShardReport>) {
        let mut sink = CollectSink::new();
        let (stats, reports) =
            mine_exchange_internal(plan, cfg, self.workers, None, &mut sink, Some(&self.ctl));
        (sink.into_result(stats), reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_scrambles_zero() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn sequencer_is_deterministic_per_seed() {
        // Four workers, each claiming from a shared counter through the
        // sequencer; the grant trace must replay exactly for one seed
        // and differ across seeds.
        fn run(seed: u64) -> Vec<usize> {
            let ctl = SimCtl::new(seed);
            ctl.phase(4);
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for w in 0..4 {
                    let ctl = &ctl;
                    let next = &next;
                    scope.spawn(move || {
                        let _retire = Retire::new(ctl, w);
                        loop {
                            ctl.turn(w);
                            if next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) >= 40 {
                                break;
                            }
                        }
                    });
                }
            });
            ctl.trace()
        }
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same interleaving");
        assert_ne!(a, run(8), "different seed, different interleaving");
        assert!(a.len() >= 40, "every claim goes through the sequencer");
    }

    #[test]
    fn retiring_workers_shrink_the_barrier() {
        // One worker retires immediately; the other two must still be
        // granted turns rather than deadlocking on the 3-worker barrier.
        let ctl = SimCtl::new(1);
        ctl.phase(3);
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..3 {
                let ctl = &ctl;
                let next = &next;
                scope.spawn(move || {
                    let _retire = Retire::new(ctl, w);
                    if w == 0 {
                        return; // retires without ever taking a turn
                    }
                    loop {
                        ctl.turn(w);
                        if next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) >= 10 {
                            break;
                        }
                    }
                });
            }
        });
        let trace = ctl.trace();
        assert!(trace.len() >= 10);
        assert!(!trace.contains(&0), "worker 0 never claimed");
    }
}
