//! Deterministic schedule exploration for the parallel miners — a
//! mini-loom for the scoped work-stealing pools.
//!
//! The claim "output is bit-identical to [`crate::mine_exact`] up to
//! pattern order" covers *every* worker interleaving, but an ordinary
//! test run only ever sees the few schedules the OS happens to produce.
//! This module turns the claim into a checked property: a [`Schedule`]
//! replaces the pools' free-running claim loops with a seeded
//! sequencer, so each seed drives one reproducible interleaving of the
//! task-claim order — L2 pair chunks and L3 subtrees for
//! [`Schedule::mine_parallel`], propose → gate → expand shard rounds for
//! [`Schedule::mine_exchange`] — and a test sweeps seeds asserting the
//! merged output never changes.
//!
//! # How the sequencer works
//!
//! Workers still run on real OS threads inside `std::thread::scope`, but
//! in scheduled mode every claim goes through [`SimCtl::turn`]: the
//! worker parks until *all* live workers of the phase are parked, then a
//! seeded RNG grants the floor to exactly one of them, which takes the
//! next task while the rest stay parked. Execution is thereby serialized
//! at task granularity, and the grant sequence — recorded in
//! [`Schedule::trace`] — *is* the interleaving: which worker claimed
//! which task in which order, the only scheduling freedom these pools
//! have (the task bodies themselves share no mutable state). A worker
//! that runs out of work retires from the phase via a drop guard, so the
//! barrier shrinks and the remaining workers keep being sequenced —
//! including when a worker panics mid-task, which keeps the harness
//! deadlock-free under the same panic propagation the OS-mode pool has.
//!
//! Distinct seeds give distinct grant sequences (statistically — the
//! invariance test asserts the ones it sweeps really differ), and the
//! same seed always replays the same schedule, making any failure a
//! one-seed reproduction case.
//!
//! # Systematic exploration
//!
//! Seeded sampling visits *some* interleavings; [`Explorer`] visits
//! *all* of them (for small worker counts), depth-first. In scripted
//! mode every grant point first computes the `allowed` worker list —
//! after symmetry reduction (workers never yet granted in the phase are
//! interchangeable, so only the smallest is kept) and an optional
//! [CHESS-style](https://www.microsoft.com/en-us/research/publication/finding-and-reproducing-heisenbugs-in-concurrent-programs/)
//! preemption budget (switching away from the previous grantee while it
//! still wants the floor costs one preemption; an exhausted budget
//! forces the incumbent) — then takes the scripted branch, recording a
//! [`Decision`]. The DFS backtracks over the last decision with an
//! untried branch, replaying the shared prefix exactly (the enabled set
//! at each grant point is a deterministic function of the grant prefix,
//! so prefix replay is sound). Trace hashes deduplicate the visited
//! interleavings, and a watchdog converts any would-be deadlock into a
//! failed run instead of a hung CI job.

use std::collections::HashSet;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

use ftpm_events::SequenceDatabase;

use crate::config::MinerConfig;
use crate::executor::{mine_exchange_internal, ShardReport};
use crate::result::MiningResult;
use crate::shard::ShardPlan;
use crate::sink::CollectSink;

/// SplitMix64 — scrambles user seeds so that sequential seeds (0, 1, 2,
/// …) still produce uncorrelated xorshift streams, and seed 0 is not a
/// fixed point.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One branch point of a scripted run: how many grant choices were
/// available after symmetry/preemption reduction, and which was taken.
#[derive(Debug, Clone, Copy)]
struct Decision {
    allowed_len: usize,
    chosen: usize,
}

/// How the sequencer picks among waiting workers.
enum PickMode {
    /// Seeded sampling: an xorshift64* stream picks uniformly.
    Seeded {
        /// RNG state (never zero).
        rng: u64,
    },
    /// Systematic exploration: a branch script drives the choices and
    /// every branch point is recorded for DFS backtracking.
    Scripted {
        /// Branch indices (into each decision's `allowed` list) to take;
        /// past the end, the first allowed branch is taken.
        script: Vec<usize>,
        pos: usize,
        decisions: Vec<Decision>,
        /// Remaining preemption budget (`usize::MAX` when unbounded).
        preemptions_left: usize,
        /// Workers already granted in the current phase (a worker never
        /// granted is interchangeable with any other such worker — the
        /// pools assign tasks through shared claim counters, not ids).
        granted_in_phase: Vec<bool>,
        /// Previous grantee of the current phase.
        last_grant: Option<usize>,
    },
}

/// Mutable sequencer state, under the [`SimCtl`] mutex.
struct SimState {
    mode: PickMode,
    /// Workers of the current phase still running (not retired).
    live: usize,
    /// `waiting[w]` — worker `w` is parked in [`SimCtl::turn`].
    waiting: Vec<bool>,
    /// The worker currently granted the floor, if any.
    grant: Option<usize>,
    /// Every grant issued so far, across all phases.
    trace: Vec<usize>,
    /// Grants + retirements so far — the watchdog's progress measure.
    events: u64,
}

impl SimState {
    fn next_u64(&mut self) -> u64 {
        let PickMode::Seeded { rng } = &mut self.mode else {
            return 0;
        };
        // xorshift64* (Vigna): full 2^64−1 period, passes the pick-an-
        // index use here easily.
        let mut x = *rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Picks the next grantee among the currently waiting workers, per
    /// the active mode.
    fn pick_waiting(&mut self) -> usize {
        let waiting: Vec<usize> = (0..self.waiting.len())
            .filter(|&w| self.waiting[w])
            .collect();
        match &mut self.mode {
            PickMode::Seeded { .. } => {
                let i = (self.next_u64() >> 32) as usize % waiting.len();
                waiting[i]
            }
            PickMode::Scripted {
                script,
                pos,
                decisions,
                preemptions_left,
                granted_in_phase,
                last_grant,
            } => {
                // Symmetry reduction: among the waiting workers never yet
                // granted in this phase, keep only the smallest — the
                // others are interchangeable until their first grant.
                let mut allowed: Vec<usize> = Vec::new();
                let mut first_fresh: Option<usize> = None;
                for &w in &waiting {
                    if granted_in_phase[w] {
                        allowed.push(w);
                    } else if first_fresh.is_none() {
                        first_fresh = Some(w);
                    }
                }
                if let Some(f) = first_fresh {
                    allowed.push(f);
                }
                allowed.sort_unstable();
                // Bounded preemption: switching away from the previous
                // grantee while it still wants the floor costs one
                // preemption; with the budget spent the incumbent keeps
                // the floor.
                let incumbent = last_grant.filter(|p| waiting.contains(p));
                if let Some(p) = incumbent {
                    if *preemptions_left == 0 {
                        allowed = vec![p];
                    }
                }
                let c = script.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                let c = c.min(allowed.len() - 1);
                let pick = allowed[c];
                if incumbent.is_some_and(|p| p != pick) {
                    *preemptions_left = preemptions_left.saturating_sub(1);
                }
                decisions.push(Decision {
                    allowed_len: allowed.len(),
                    chosen: c,
                });
                granted_in_phase[pick] = true;
                *last_grant = Some(pick);
                pick
            }
        }
    }
}

/// The sequencer handle shared by the pool workers of a scheduled run.
///
/// One `SimCtl` lives for the whole mining call and is re-armed with
/// [`SimCtl::phase`] before each scoped pool (the parallel miner's L2
/// and L3 scopes, each `par_for_each` round of the exchange executor).
pub(crate) struct SimCtl {
    m: Mutex<SimState>,
    cv: Condvar,
}

/// How long the sequencer may sit with zero grant/retire progress
/// before a parked worker declares the run wedged. The scheduled
/// workloads claim tasks in microseconds; half a minute of silence is a
/// deadlock, not a slow task.
const WATCHDOG: Duration = Duration::from_secs(30);

impl SimCtl {
    pub(crate) fn new(seed: u64) -> SimCtl {
        SimCtl::with_mode(PickMode::Seeded {
            rng: splitmix64(seed).max(1),
        })
    }

    /// A sequencer driven by a branch script (see [`Explorer`]).
    fn scripted(script: Vec<usize>, preemption_bound: Option<usize>) -> SimCtl {
        SimCtl::with_mode(PickMode::Scripted {
            script,
            pos: 0,
            decisions: Vec::new(),
            preemptions_left: preemption_bound.unwrap_or(usize::MAX),
            granted_in_phase: Vec::new(),
            last_grant: None,
        })
    }

    fn with_mode(mode: PickMode) -> SimCtl {
        SimCtl {
            m: Mutex::new(SimState {
                mode,
                live: 0,
                waiting: Vec::new(),
                grant: None,
                trace: Vec::new(),
                events: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Recovers the state even if a worker panicked while holding the
    /// lock — the sequencer must keep granting so surviving workers can
    /// finish and the panic can propagate at join.
    fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms the sequencer for a pool of `workers` threads (ids
    /// `0..workers`). Must happen before the pool spawns so the first
    /// grant waits for every worker — spawn order stays invisible.
    pub(crate) fn phase(&self, workers: usize) {
        let mut st = self.lock();
        st.live = workers;
        st.waiting = vec![false; workers];
        st.grant = None;
        if let PickMode::Scripted {
            granted_in_phase,
            last_grant,
            ..
        } = &mut st.mode
        {
            *granted_in_phase = vec![false; workers];
            *last_grant = None;
        }
    }

    /// Blocks until the sequencer grants `worker` the floor. Called by
    /// pool workers immediately before each task claim.
    pub(crate) fn turn(&self, worker: usize) {
        let mut st = self.lock();
        st.waiting[worker] = true;
        loop {
            if st.grant.is_none() && st.live > 0 {
                let parked = st.waiting.iter().filter(|&&w| w).count();
                if parked == st.live {
                    let pick = st.pick_waiting();
                    st.grant = Some(pick);
                    st.trace.push(pick);
                    st.events += 1;
                    self.cv.notify_all();
                }
            }
            if st.grant == Some(worker) {
                st.grant = None;
                st.waiting[worker] = false;
                return;
            }
            let events_before = st.events;
            let (guard, timeout) = self
                .cv
                .wait_timeout(st, WATCHDOG)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            if timeout.timed_out() && st.events == events_before {
                // No grant and no retirement for the whole window: a
                // worker is wedged outside the sequencer. Fail the run
                // loudly instead of hanging the harness.
                // lint: allow(panic, deadlock watchdog — a wedged schedule must fail the test run, not hang it)
                panic!(
                    "schedule sequencer watchdog: no progress in {WATCHDOG:?} \
                     (worker {worker} parked, {} live, trace length {})",
                    st.live,
                    st.trace.len()
                );
            }
        }
    }

    /// Removes `worker` from the phase: the all-parked barrier shrinks
    /// so the remaining workers keep being sequenced.
    fn retire(&self, worker: usize) {
        let mut st = self.lock();
        st.live -= 1;
        st.waiting[worker] = false;
        st.events += 1;
        self.cv.notify_all();
    }

    fn trace(&self) -> Vec<usize> {
        self.lock().trace.clone()
    }

    /// The branch points of a scripted run (empty in seeded mode).
    fn decisions(&self) -> Vec<Decision> {
        match &self.lock().mode {
            PickMode::Scripted { decisions, .. } => decisions.clone(),
            PickMode::Seeded { .. } => Vec::new(),
        }
    }
}

/// Drop guard retiring a worker from its [`SimCtl`] phase — on normal
/// exit *and* on unwind, so a panicking task can never leave the other
/// workers parked forever.
pub(crate) struct Retire<'a> {
    ctl: &'a SimCtl,
    worker: usize,
}

impl<'a> Retire<'a> {
    pub(crate) fn new(ctl: &'a SimCtl, worker: usize) -> Retire<'a> {
        Retire { ctl, worker }
    }
}

impl Drop for Retire<'_> {
    fn drop(&mut self) {
        self.ctl.retire(self.worker);
    }
}

/// One seeded worker interleaving for the parallel miners.
///
/// ```no_run
/// use ftpm_core::{mine_exact, MinerConfig, Schedule};
///
/// let seq = ftpm_datagen::smartcity_like(0.05).seq;
/// let cfg = MinerConfig::new(0.5, 0.7);
/// let baseline = mine_exact(&seq, &cfg);
/// for seed in 0..4 {
///     let sched = Schedule::new(seed, 4);
///     let run = sched.mine_parallel(&seq, &cfg);
///     assert_eq!(run.patterns.len(), baseline.patterns.len());
///     println!("seed {seed}: interleaving {:?}", sched.trace());
/// }
/// ```
pub struct Schedule {
    ctl: SimCtl,
    workers: usize,
}

impl Schedule {
    /// A schedule driving `workers` simulated workers under `seed`.
    /// `workers` is clamped to at least 1 (with one worker there is only
    /// one schedule, so nothing is explored — use ≥ 2).
    pub fn new(seed: u64, workers: usize) -> Schedule {
        Schedule {
            ctl: SimCtl::new(seed),
            workers: workers.max(1),
        }
    }

    /// Number of simulated workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The grant sequence of every scheduled pool so far: which worker
    /// claimed a task, in claim order. Two runs with equal traces
    /// executed the same interleaving.
    pub fn trace(&self) -> Vec<usize> {
        self.ctl.trace()
    }

    /// [`crate::mine_exact_parallel`] under this schedule: same output
    /// contract, but the L2/L3 claim order is the seeded interleaving
    /// instead of whatever the OS produces.
    pub fn mine_parallel(&self, db: &SequenceDatabase, cfg: &MinerConfig) -> MiningResult {
        let mut sink = CollectSink::new();
        let stats = crate::parallel::mine_parallel_internal(
            db,
            cfg,
            self.workers,
            None,
            None,
            &mut sink,
            Some(&self.ctl),
        );
        sink.into_result(stats)
    }

    /// [`ShardPlan::mine_exchange`] under this schedule: the shard
    /// workers' propose → gate → expand rounds run in the seeded
    /// interleaving. Intra-shard parallelism is forced to 1 so the
    /// schedule fully determines the execution (the exchange protocol's
    /// concurrency story *is* the shard-level round loop).
    pub fn mine_exchange(
        &self,
        plan: &ShardPlan,
        cfg: &MinerConfig,
    ) -> (MiningResult, Vec<ShardReport>) {
        let mut sink = CollectSink::new();
        let (stats, reports) =
            mine_exchange_internal(plan, cfg, self.workers, None, &mut sink, Some(&self.ctl));
        (sink.into_result(stats), reports)
    }

    /// A schedule replaying `script` branch choices (see [`Explorer`]).
    fn from_script(workers: usize, script: Vec<usize>, preemption_bound: Option<usize>) -> Schedule {
        Schedule {
            ctl: SimCtl::scripted(script, preemption_bound),
            workers: workers.max(1),
        }
    }
}

/// Result of one [`Explorer::explore`] sweep.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Interleavings executed.
    pub schedules: usize,
    /// Distinct grant traces among them (state-hash deduplicated); with
    /// symmetry reduction on, every schedule should be a fresh trace.
    pub distinct_traces: usize,
    /// Longest decision sequence seen (the branching depth of the run).
    pub max_decisions: usize,
    /// The DFS visited every interleaving within the preemption bound.
    pub exhausted: bool,
    /// The sweep stopped at the schedule cap instead.
    pub capped: bool,
}

/// Systematic depth-first exploration of worker interleavings.
///
/// Where [`Schedule::new`] samples one seeded interleaving, an
/// `Explorer` enumerates them: it runs the workload under an empty
/// branch script, records every grant-point decision, then backtracks
/// over the deepest decision with an untried branch until the space is
/// exhausted (or a preemption bound / schedule cap stops it). Grant
/// prefixes replay deterministically, so each re-run reaches the flipped
/// branch exactly.
///
/// The decision space is pre-pruned at each grant point — workers never
/// yet granted in a phase are interchangeable (the pools hand out tasks
/// through shared claim counters, so ids carry no meaning until first
/// granted) and only the smallest is tried; an optional CHESS-style
/// preemption bound caps how often the floor may switch away from a
/// still-running incumbent, which keeps K=4 tractable while covering
/// every low-preemption interleaving — the regime where real scheduler
/// bugs live.
///
/// ```no_run
/// use ftpm_core::{mine_exact, Explorer, MinerConfig};
///
/// let seq = ftpm_datagen::smartcity_like(0.05).seq;
/// let cfg = MinerConfig::new(0.5, 0.7);
/// let baseline = mine_exact(&seq, &cfg);
/// let stats = Explorer::new(2)
///     .explore(|sched| {
///         let run = sched.mine_parallel(&seq, &cfg);
///         if run.patterns.len() == baseline.patterns.len() {
///             Ok(())
///         } else {
///             Err(format!("diverged on trace {:?}", sched.trace()))
///         }
///     })
///     .unwrap();
/// assert!(stats.exhausted);
/// ```
pub struct Explorer {
    workers: usize,
    preemption_bound: Option<usize>,
    max_schedules: usize,
}

impl Explorer {
    /// An exhaustive explorer over `workers` simulated workers (clamped
    /// to at least 1; with one worker there is exactly one schedule).
    /// Default bounds: unlimited preemptions, 100 000 schedules.
    pub fn new(workers: usize) -> Explorer {
        Explorer {
            workers: workers.max(1),
            preemption_bound: None,
            max_schedules: 100_000,
        }
    }

    /// Bounds the number of preemptions per schedule (CHESS-style).
    /// `explore` is then exhaustive *within the bound*: every
    /// interleaving with at most `bound` preemptions is visited.
    pub fn with_preemption_bound(mut self, bound: usize) -> Explorer {
        self.preemption_bound = Some(bound);
        self
    }

    /// Caps the total number of schedules executed; hitting the cap sets
    /// [`ExploreStats::capped`] instead of `exhausted`.
    pub fn with_max_schedules(mut self, max: usize) -> Explorer {
        self.max_schedules = max.max(1);
        self
    }

    /// Runs `run` once per interleaving, depth-first, until the space is
    /// exhausted or a bound is hit. The closure's error short-circuits
    /// the sweep (the failing schedule's trace identifies the
    /// interleaving); deadlocks surface as watchdog panics from the
    /// worker threads.
    pub fn explore<E>(
        &self,
        mut run: impl FnMut(&Schedule) -> Result<(), E>,
    ) -> Result<ExploreStats, E> {
        let mut stats = ExploreStats::default();
        let mut trace_hashes: HashSet<u64> = HashSet::new();
        let mut script: Vec<usize> = Vec::new();
        loop {
            let sched = Schedule::from_script(self.workers, script, self.preemption_bound);
            run(&sched)?;
            stats.schedules += 1;
            if trace_hashes.insert(hash_trace(&sched.trace())) {
                stats.distinct_traces += 1;
            }
            let decisions = sched.ctl.decisions();
            stats.max_decisions = stats.max_decisions.max(decisions.len());
            // Backtrack: deepest decision with an untried branch.
            let next = decisions
                .iter()
                .rposition(|d| d.chosen + 1 < d.allowed_len)
                .map(|i| {
                    let mut s: Vec<usize> =
                        decisions[..i].iter().map(|d| d.chosen).collect();
                    s.push(decisions[i].chosen + 1);
                    s
                });
            match next {
                None => {
                    stats.exhausted = true;
                    return Ok(stats);
                }
                Some(_) if stats.schedules >= self.max_schedules => {
                    stats.capped = true;
                    return Ok(stats);
                }
                Some(s) => script = s,
            }
        }
    }
}

/// FNV-1a over a grant trace — the state hash the explorer deduplicates
/// visited interleavings by.
fn hash_trace(trace: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in trace {
        h ^= w as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_scrambles_zero() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn sequencer_is_deterministic_per_seed() {
        // Four workers, each claiming from a shared counter through the
        // sequencer; the grant trace must replay exactly for one seed
        // and differ across seeds.
        fn run(seed: u64) -> Vec<usize> {
            let ctl = SimCtl::new(seed);
            ctl.phase(4);
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for w in 0..4 {
                    let ctl = &ctl;
                    let next = &next;
                    scope.spawn(move || {
                        let _retire = Retire::new(ctl, w);
                        loop {
                            ctl.turn(w);
                            if next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) >= 40 {
                                break;
                            }
                        }
                    });
                }
            });
            ctl.trace()
        }
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same interleaving");
        assert_ne!(a, run(8), "different seed, different interleaving");
        assert!(a.len() >= 40, "every claim goes through the sequencer");
    }

    /// The shared claim-counter workload the explorer tests drive:
    /// `workers` threads pull from one atomic counter until `tasks`
    /// claims have happened, every claim sequenced through the ctl.
    fn counter_workload(sched: &Schedule, tasks: usize) -> Vec<usize> {
        let workers = sched.workers();
        sched.ctl.phase(workers);
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let ctl = &sched.ctl;
                let next = &next;
                scope.spawn(move || {
                    let _retire = Retire::new(ctl, w);
                    loop {
                        ctl.turn(w);
                        if next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) >= tasks {
                            break;
                        }
                    }
                });
            }
        });
        sched.trace()
    }

    #[test]
    fn explorer_exhausts_the_interleaving_space() {
        let mut traces = Vec::new();
        let stats = Explorer::new(2)
            .explore(|sched| {
                traces.push(counter_workload(sched, 3));
                Ok::<(), ()>(())
            })
            .unwrap_or_default();
        assert!(stats.exhausted, "{stats:?}");
        assert!(!stats.capped);
        assert!(stats.schedules > 1, "two workers branch: {stats:?}");
        assert_eq!(
            stats.distinct_traces, stats.schedules,
            "symmetry reduction never revisits a trace: {stats:?}"
        );
        // Every executed trace really is distinct.
        let unique: std::collections::HashSet<&Vec<usize>> = traces.iter().collect();
        assert_eq!(unique.len(), traces.len());
        // The first schedule (empty script) is the all-first-branch run:
        // worker 0 keeps the floor until it retires, then worker 1
        // drains — a sorted trace.
        assert_eq!(traces[0][0], 0);
        assert!(
            traces[0].windows(2).all(|w| w[0] <= w[1]),
            "{:?}",
            traces[0]
        );
    }

    #[test]
    fn explorer_preemption_bound_prunes_the_space() {
        let run_count = |bound: Option<usize>| {
            let mut e = Explorer::new(3);
            if let Some(b) = bound {
                e = e.with_preemption_bound(b);
            }
            e.explore(|sched| {
                counter_workload(sched, 4);
                Ok::<(), ()>(())
            })
            .unwrap_or_default()
        };
        let unbounded = run_count(None);
        let bounded = run_count(Some(1));
        let none = run_count(Some(0));
        assert!(unbounded.exhausted && bounded.exhausted && none.exhausted);
        assert!(
            none.schedules < bounded.schedules && bounded.schedules < unbounded.schedules,
            "bound must prune monotonically: {none:?} {bounded:?} {unbounded:?}"
        );
    }

    #[test]
    fn explorer_schedule_cap_reports_capped() {
        let stats = Explorer::new(3)
            .with_max_schedules(2)
            .explore(|sched| {
                counter_workload(sched, 4);
                Ok::<(), ()>(())
            })
            .unwrap_or_default();
        assert_eq!(stats.schedules, 2);
        assert!(stats.capped && !stats.exhausted, "{stats:?}");
    }

    #[test]
    fn explorer_propagates_the_first_failure() {
        let mut runs = 0;
        let err = Explorer::new(2).explore(|sched| {
            counter_workload(sched, 3);
            runs += 1;
            if runs == 2 {
                Err("boom")
            } else {
                Ok(())
            }
        });
        assert_eq!(err.unwrap_err(), "boom");
        assert_eq!(runs, 2, "sweep short-circuits on the failing schedule");
    }

    #[test]
    fn single_worker_has_exactly_one_schedule() {
        let stats = Explorer::new(1)
            .explore(|sched| {
                counter_workload(sched, 3);
                Ok::<(), ()>(())
            })
            .unwrap_or_default();
        assert_eq!(stats.schedules, 1);
        assert!(stats.exhausted);
    }

    #[test]
    fn retiring_workers_shrink_the_barrier() {
        // One worker retires immediately; the other two must still be
        // granted turns rather than deadlocking on the 3-worker barrier.
        let ctl = SimCtl::new(1);
        ctl.phase(3);
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..3 {
                let ctl = &ctl;
                let next = &next;
                scope.spawn(move || {
                    let _retire = Retire::new(ctl, w);
                    if w == 0 {
                        return; // retires without ever taking a turn
                    }
                    loop {
                        ctl.turn(w);
                        if next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) >= 10 {
                            break;
                        }
                    }
                });
            }
        });
        let trace = ctl.trace();
        assert!(trace.len() >= 10);
        assert!(!trace.contains(&0), "worker 0 never claimed");
    }
}
