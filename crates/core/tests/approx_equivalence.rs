//! A-HTPGM must be *one plan*, not a separate code path: the same
//! [`CorrelationFilter`] gates L1 (events of correlated series) and L2
//! (pairs with a `G_C` edge) in every miner, so composing the
//! approximate miner with any execution axis — worker threads, shard
//! plans, the candidate-exchange executor — yields the *identical*
//! pattern set (labels, supports, confidences, clipped counts) as plain
//! single-threaded `mine_approximate`. This suite pins that identity
//! across shard counts, boundary policies and both graph
//! parameterizations (μ and edge density), checks the brute-force
//! reference oracle under the same filter, and asserts the exchange
//! coordinator's MI-at-propose gate generates strictly fewer candidates
//! than mining exactly and filtering post hoc.
//!
//! Event ids differ across conversions (intern order), so everything
//! compares by label.

use std::collections::HashMap;

use ftpm_core::{
    correlation_filter, mine_approximate, mine_approximate_parallel,
    mine_approximate_sharded_exchange, mine_approximate_with_density, mine_reference_filtered,
    CollectSink, MinerConfig, MiningResult, ShardPlanner,
};
use ftpm_events::{
    to_sequence_database, BoundaryPolicy, EventRegistry, RelationConfig, SplitConfig,
};
use ftpm_mi::{mu_for_density, CorrelationGraph};
use ftpm_timeseries::{Alphabet, SymbolId, SymbolicDatabase, SymbolicSeries, VariableId};

/// Deterministic pseudo-random on/off symbolic database with run lengths
/// in `1..=max_run` — long runs cross window and shard boundaries, which
/// is exactly what the shard pads and the exchange must survive.
fn random_syb(seed: u64, vars: usize, n_steps: usize, step: i64, max_run: u64) -> SymbolicDatabase {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545f4914f6cdd1d)
    };
    let mut db = SymbolicDatabase::new(0, step, n_steps);
    for v in 0..vars {
        let mut symbols = Vec::with_capacity(n_steps);
        let mut sym = SymbolId((next() % 2) as u16);
        while symbols.len() < n_steps {
            let run = 1 + (next() % max_run) as usize;
            for _ in 0..run.min(n_steps - symbols.len()) {
                symbols.push(sym);
            }
            sym = SymbolId(1 - sym.0);
        }
        db.push(SymbolicSeries::new(
            format!("V{v}"),
            Alphabet::on_off(),
            symbols,
        ));
    }
    db
}

type Labelled = HashMap<String, (usize, f64, usize)>;

fn labelled(result: &MiningResult, reg: &EventRegistry) -> Labelled {
    result
        .patterns
        .iter()
        .map(|p| {
            (
                p.pattern.display(reg).to_string(),
                (p.support, p.confidence, p.clipped_occurrences),
            )
        })
        .collect()
}

fn assert_equivalent(base: &Labelled, other: &Labelled, context: &str) {
    for (label, (supp, conf, clipped)) in base {
        match other.get(label) {
            None => panic!("{context}: lost {label}"),
            Some((s, c, cl)) => {
                assert_eq!(supp, s, "{context}: support mismatch on {label}");
                assert!(
                    (conf - c).abs() < 1e-9,
                    "{context}: confidence mismatch on {label}"
                );
                assert_eq!(clipped, cl, "{context}: clipped count mismatch on {label}");
            }
        }
    }
    assert_eq!(base.len(), other.len(), "{context}: fabricated patterns");
}

fn policy_cfg(sigma: f64, delta: f64, t_max: i64, policy: BoundaryPolicy) -> MinerConfig {
    MinerConfig::new(sigma, delta)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, t_max).with_boundary(policy))
}

/// The full composition check for one (data, split, cfg, μ, K): the
/// single-threaded unsharded approximate run is the baseline, and the
/// parallel, sharded support-complete and sharded candidate-exchange
/// compositions must all reproduce it exactly.
fn check_compositions(
    syb: &SymbolicDatabase,
    split: SplitConfig,
    cfg: &MinerConfig,
    mu: f64,
    shards: usize,
    threads: usize,
    context: &str,
) {
    let seq = to_sequence_database(syb, split);
    let base = mine_approximate(syb, &seq, mu, cfg);
    let base_l = labelled(&base.result, seq.registry());

    let par = mine_approximate_parallel(syb, &seq, mu, cfg, threads);
    assert_equivalent(
        &base_l,
        &labelled(&par.result, seq.registry()),
        &format!("{context} [parallel]"),
    );
    assert_eq!(
        base.result.frequent_events.len(),
        par.result.frequent_events.len(),
        "{context}: parallel L1 count"
    );

    let graph = CorrelationGraph::build(syb, mu);
    let plan = ShardPlanner::new(shards)
        .plan(syb, split, cfg.relation.t_max)
        .unwrap_or_else(|e| panic!("{context}: shard plan failed: {e}"));

    let mut sink = CollectSink::new();
    let (stats, _) = plan.mine_approximate_into(&graph, cfg, threads, &mut sink);
    let complete = sink.into_result(stats);
    assert_equivalent(
        &base_l,
        &labelled(&complete, plan.registry()),
        &format!("{context} [sharded support-complete]"),
    );
    assert_eq!(
        base.result.frequent_events.len(),
        complete.frequent_events.len(),
        "{context}: support-complete L1 count"
    );

    let (exchanged, reports) =
        mine_approximate_sharded_exchange(syb, split, &graph, cfg, shards, threads)
            .unwrap_or_else(|e| panic!("{context}: exchange plan failed: {e}"));
    assert_equivalent(
        &base_l,
        &labelled(&exchanged.result, &exchanged.registry),
        &format!("{context} [sharded exchange]"),
    );
    assert_eq!(
        base.result.frequent_events.len(),
        exchanged.result.frequent_events.len(),
        "{context}: exchange L1 count"
    );
    assert_eq!(reports.len(), plan.shards().len());
    for r in &reports {
        assert!(
            r.candidates_pruned <= r.candidates_proposed,
            "{context}: shard {} pruned more than it proposed",
            r.shard
        );
    }
}

#[test]
fn approx_compositions_agree_across_policies_and_shard_counts() {
    let syb = random_syb(42, 3, 96, 5, 8);
    let split = SplitConfig::new(40, 20);
    let mu = mu_for_density(&syb, 0.6);
    for policy in [
        BoundaryPolicy::TrueExtent,
        BoundaryPolicy::Clip,
        BoundaryPolicy::Discard,
    ] {
        let cfg = policy_cfg(0.25, 0.25, 20, policy);
        for shards in [1usize, 2, 4] {
            check_compositions(
                &syb,
                split,
                &cfg,
                mu,
                shards,
                2,
                &format!("{policy} K={shards}"),
            );
        }
    }
}

/// The density parameterization is the μ parameterization: A-HTPGM with
/// a density target must equal A-HTPGM at the μ the target resolves to.
#[test]
fn density_parameterization_matches_explicit_mu() {
    let syb = random_syb(7, 4, 96, 5, 7);
    let split = SplitConfig::new(40, 20);
    let seq = to_sequence_database(&syb, split);
    let cfg = policy_cfg(0.2, 0.2, 20, BoundaryPolicy::TrueExtent);
    for density in [0.3, 0.6, 0.9] {
        let mu = mu_for_density(&syb, density);
        let by_density = mine_approximate_with_density(&syb, &seq, density, &cfg);
        let by_mu = mine_approximate(&syb, &seq, mu, &cfg);
        assert!(
            (by_density.mu - mu).abs() < 1e-12,
            "density {density} resolved to mu {} not {mu}",
            by_density.mu
        );
        assert_equivalent(
            &labelled(&by_mu.result, seq.registry()),
            &labelled(&by_density.result, seq.registry()),
            &format!("density {density}"),
        );
    }
}

/// The brute-force oracle under the same filter: A-HTPGM (with
/// transitivity pruning, the default) equals the reference miner gated
/// by the filter built from the same graph.
#[test]
fn reference_oracle_agrees_under_the_same_filter() {
    let syb = random_syb(3, 3, 64, 5, 6);
    let split = SplitConfig::new(40, 20);
    let seq = to_sequence_database(&syb, split);
    let cfg = policy_cfg(0.2, 0.2, 20, BoundaryPolicy::TrueExtent);
    let mu = mu_for_density(&syb, 0.5);
    let graph = CorrelationGraph::build(&syb, mu);
    let filter = correlation_filter(&graph, seq.registry());
    let oracle = mine_reference_filtered(&seq, &cfg, Some(&filter));
    let approx = mine_approximate(&syb, &seq, mu, &cfg);
    assert_equivalent(
        &labelled(&approx.result, seq.registry()),
        &labelled(&oracle, seq.registry()),
        "reference oracle",
    );
    assert_eq!(
        approx.result.frequent_events.len(),
        oracle.frequent_events.len(),
        "oracle L1 count"
    );
}

/// The headline of propose-time gating: pairs the coordinator's `G_C`
/// gate rejects are never enumerated, so the approximate exchange
/// generates strictly fewer candidates than the exact exchange on the
/// same plan — and its output equals filtering the exact output post
/// hoc (every pattern whose events are all correlated and pairwise
/// edge-connected).
#[test]
fn mi_at_propose_beats_post_hoc_filtering_on_the_energy_demo() {
    let data = ftpm_datagen::nist_like(0.01).project_variables(6);
    let t_max = 3 * 60;
    let cfg = MinerConfig::new(0.25, 0.25)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, t_max).with_boundary(BoundaryPolicy::TrueExtent));
    let graph = CorrelationGraph::build_with_density(&data.syb, 0.8);
    let plan = ShardPlanner::new(4)
        .plan(&data.syb, data.split, t_max)
        .expect("plan");

    let (exact_result, exact_reports) = plan.mine_exchange(&cfg, 1);
    let (approx_result, approx_reports) = plan.mine_approximate_exchange(&graph, &cfg, 1);

    let exact_total: usize = exact_reports.iter().map(|r| r.candidates_proposed).sum();
    let approx_total: usize = approx_reports.iter().map(|r| r.candidates_proposed).sum();
    assert!(
        approx_total < exact_total,
        "MI at propose time must generate strictly fewer exchange candidates \
         ({approx_total} vs {exact_total})"
    );

    // Post-hoc baseline: keep exactly the exact-exchange patterns whose
    // events all lie in X_C and are pairwise connected in G_C.
    let registry = plan.registry();
    let mut in_xc = vec![false; graph.n_vertices()];
    for var in graph.correlated_variables() {
        in_xc[var.0 as usize] = true;
    }
    let var_of = |e: ftpm_events::EventId| -> VariableId { registry.variable(e) };
    let post_hoc: Labelled = exact_result
        .patterns
        .iter()
        .filter(|p| {
            let events = p.pattern.events();
            events.iter().all(|&e| in_xc[var_of(e).0 as usize])
                && events.iter().enumerate().all(|(i, &ei)| {
                    events[i + 1..]
                        .iter()
                        .all(|&ej| graph.has_edge(var_of(ei), var_of(ej)))
                })
        })
        .map(|p| {
            (
                p.pattern.display(registry).to_string(),
                (p.support, p.confidence, p.clipped_occurrences),
            )
        })
        .collect();
    assert_equivalent(
        &post_hoc,
        &labelled(&approx_result, registry),
        "post-hoc filter of the exact exchange",
    );
    assert!(
        !approx_result.patterns.is_empty(),
        "the energy demo at density 0.8 must keep patterns — otherwise the \
         equality above is vacuous"
    );
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random series, random σ/δ, random density, K in {1, 2, 4},
        /// every boundary policy, both parameterizations: approximate
        /// sharded-exchange == approximate parallel == approximate
        /// sequential (labels, supports, confidences, clipped counts).
        #[test]
        fn approx_sharded_exchange_equals_parallel_equals_sequential(
            seed in 0u64..24,
            vars in 2usize..4,
            sigma in 0.15f64..0.7,
            delta in 0.15f64..0.7,
            density in 0.25f64..1.0,
            shard_choice in 0usize..3,
            policy_choice in 0usize..3,
            t_max_steps in 2i64..8,
        ) {
            let shards = [1usize, 2, 4][shard_choice];
            let policy = [
                BoundaryPolicy::TrueExtent,
                BoundaryPolicy::Clip,
                BoundaryPolicy::Discard,
            ][policy_choice];
            let step = 5i64;
            let syb = random_syb(seed, vars, 64, step, 7);
            let split = SplitConfig::new(8 * step, 2 * step);
            let cfg = MinerConfig::new(sigma, delta)
                .with_max_events(3)
                .with_relation(
                    RelationConfig::new(0, 1, t_max_steps * step).with_boundary(policy),
                );
            let mu = mu_for_density(&syb, density);
            let seq = to_sequence_database(&syb, split);
            let base = labelled(
                &mine_approximate_with_density(&syb, &seq, density, &cfg).result,
                seq.registry(),
            );
            let par = labelled(
                &mine_approximate_parallel(&syb, &seq, mu, &cfg, 2).result,
                seq.registry(),
            );
            let graph = CorrelationGraph::build(&syb, mu);
            let (exchanged, _) =
                mine_approximate_sharded_exchange(&syb, split, &graph, &cfg, shards, 1)
                    .expect("plan");
            let em = labelled(&exchanged.result, &exchanged.registry);
            for (label, (supp, conf, clipped)) in &base {
                for (name, m) in [("parallel", &par), ("exchange", &em)] {
                    let (s, c, cl) = m.get(label).unwrap_or_else(|| {
                        panic!("{name} lost {label} (K={shards}, {policy})")
                    });
                    prop_assert_eq!(supp, s, "{} support of {}", name, label);
                    prop_assert!((conf - c).abs() < 1e-9, "{} confidence of {}", name, label);
                    prop_assert_eq!(clipped, cl, "{} clipped of {}", name, label);
                }
            }
            prop_assert_eq!(base.len(), par.len(), "parallel pattern count");
            prop_assert_eq!(base.len(), em.len(), "exchange pattern count");
        }
    }
}
