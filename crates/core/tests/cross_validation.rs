//! The strongest correctness checks in the repository: E-HTPGM must agree
//! exactly — same patterns, same supports, same confidences — with a
//! brute-force enumeration, under every pruning configuration, on many
//! random databases. A-HTPGM must always return a subset of E-HTPGM and
//! converge to it as μ → 0.

use std::collections::HashMap;

use ftpm_core::{
    mine_approximate, mine_exact, mine_reference, MinerConfig, MiningResult, Pattern,
    PruningConfig,
};
use ftpm_datagen::random_sequence_database;
use ftpm_events::RelationConfig;

fn as_map(result: &MiningResult) -> HashMap<Pattern, (usize, f64)> {
    result
        .patterns
        .iter()
        .map(|p| (p.pattern.clone(), (p.support, p.confidence)))
        .collect()
}

fn assert_same_patterns(a: &MiningResult, b: &MiningResult, context: &str) {
    let ma = as_map(a);
    let mb = as_map(b);
    for (pat, (supp, conf)) in &ma {
        match mb.get(pat) {
            None => panic!("{context}: pattern {pat:?} missing from second result"),
            Some((s2, c2)) => {
                assert_eq!(supp, s2, "{context}: support mismatch for {pat:?}");
                assert!(
                    (conf - c2).abs() < 1e-9,
                    "{context}: confidence mismatch for {pat:?}: {conf} vs {c2}"
                );
            }
        }
    }
    for pat in mb.keys() {
        assert!(
            ma.contains_key(pat),
            "{context}: extra pattern {pat:?} in second result"
        );
    }
}

#[test]
fn exact_matches_reference_on_many_random_databases() {
    for seed in 0..25u64 {
        let db = random_sequence_database(seed, 6, 3, 2, 40);
        for &(sigma, delta) in &[(0.3, 0.3), (0.5, 0.5), (0.2, 0.8)] {
            let cfg = MinerConfig::new(sigma, delta).with_max_events(4);
            let exact = mine_exact(&db, &cfg);
            let reference = mine_reference(&db, &cfg);
            assert_same_patterns(
                &exact,
                &reference,
                &format!("seed={seed} sigma={sigma} delta={delta}"),
            );
        }
    }
}

#[test]
fn exact_matches_reference_with_nontrivial_relation_config() {
    // Buffer epsilon = 2, min overlap 3, tight t_max: exercises every
    // branch of the relation model and the duration constraint.
    let relation = RelationConfig::new(2, 3, 25);
    for seed in 100..115u64 {
        let db = random_sequence_database(seed, 5, 3, 2, 40);
        let cfg = MinerConfig::new(0.3, 0.3)
            .with_relation(relation)
            .with_max_events(4);
        let exact = mine_exact(&db, &cfg);
        let reference = mine_reference(&db, &cfg);
        assert_same_patterns(&exact, &reference, &format!("seed={seed} buffered"));
    }
}

#[test]
fn exact_matches_reference_under_every_boundary_policy() {
    use ftpm_core::mine_exact_parallel;
    use ftpm_events::{to_sequence_database, BoundaryPolicy, SplitConfig};

    // An overlapped split of real-shaped data, so plenty of instances
    // are boundary-clipped and the policies actually disagree.
    let data = ftpm_datagen::nist_like(0.005).project_variables(5);
    let seq = to_sequence_database(&data.syb, SplitConfig::new(360, 180));
    assert!(
        seq.sequences()
            .iter()
            .flat_map(|s| s.instances())
            .any(|i| i.is_clipped()),
        "test needs clipped instances"
    );
    for policy in [
        BoundaryPolicy::Clip,
        BoundaryPolicy::TrueExtent,
        BoundaryPolicy::Discard,
    ] {
        let cfg = MinerConfig::new(0.2, 0.2)
            .with_max_events(3)
            .with_relation(RelationConfig::new(0, 1, 180).with_boundary(policy));
        let exact = mine_exact(&seq, &cfg);
        let reference = mine_reference(&seq, &cfg);
        assert_same_patterns(&exact, &reference, &format!("policy={policy}"));
        let parallel = mine_exact_parallel(&seq, &cfg, 3);
        assert_same_patterns(&exact, &parallel, &format!("policy={policy} parallel"));
        // Both miners enumerate every occurrence exactly once, so the
        // per-pattern boundary-artifact counts must agree too.
        let clipped: HashMap<&Pattern, usize> = reference
            .patterns
            .iter()
            .map(|p| (&p.pattern, p.clipped_occurrences))
            .collect();
        for p in &exact.patterns {
            assert_eq!(
                p.clipped_occurrences,
                clipped[&p.pattern],
                "policy={policy}: clipped_occurrences mismatch for {:?}",
                p.pattern
            );
        }
        if policy == BoundaryPolicy::Discard {
            assert!(
                exact.patterns.iter().all(|p| p.clipped_occurrences == 0),
                "discard must never bind clipped instances"
            );
        }
    }
}

#[test]
fn all_pruning_configurations_agree() {
    // Pruning changes the work done, never the answer (Lemmas 2-7 are
    // lossless for the exact miner).
    let configs = [
        PruningConfig::NO_PRUNE,
        PruningConfig::APRIORI,
        PruningConfig::TRANSITIVITY,
        PruningConfig::ALL,
    ];
    for seed in 200..215u64 {
        let db = random_sequence_database(seed, 6, 3, 2, 40);
        let base = MinerConfig::new(0.3, 0.4).with_max_events(4);
        let baseline = mine_exact(&db, &base.with_pruning(PruningConfig::NO_PRUNE));
        for pruning in configs {
            let got = mine_exact(&db, &base.with_pruning(pruning));
            assert_same_patterns(&baseline, &got, &format!("seed={seed} {pruning:?}"));
        }
    }
}

#[test]
fn pruning_reduces_work_not_output() {
    // On a structured dataset the pruned runs must check strictly fewer
    // candidates while finding the same patterns.
    let data = ftpm_datagen::nist_like(0.01);
    let base = MinerConfig::new(0.4, 0.4).with_max_events(3);
    let no_prune = mine_exact(&data.seq, &base.with_pruning(PruningConfig::NO_PRUNE));
    let all = mine_exact(&data.seq, &base.with_pruning(PruningConfig::ALL));
    assert_same_patterns(&no_prune, &all, "nist-like pruning equivalence");
    assert!(
        all.stats.instance_checks < no_prune.stats.instance_checks,
        "pruning should reduce instance checks: {} vs {}",
        all.stats.instance_checks,
        no_prune.stats.instance_checks
    );
}

#[test]
fn approximate_is_subset_of_exact() {
    let data = ftpm_datagen::dataport_like(0.02);
    let cfg = MinerConfig::new(0.3, 0.3).with_max_events(3);
    let exact = mine_exact(&data.seq, &cfg);
    for mu in [0.2, 0.5, 0.8] {
        let approx = mine_approximate(&data.syb, &data.seq, mu, &cfg);
        let exact_keys = exact.pattern_keys();
        for p in &approx.result.patterns {
            assert!(
                exact_keys.contains(&p.pattern),
                "mu={mu}: approximate found pattern not in exact output"
            );
        }
    }
}

#[test]
fn approximate_accuracy_monotone_in_mu() {
    let data = ftpm_datagen::dataport_like(0.02);
    let cfg = MinerConfig::new(0.3, 0.3).with_max_events(3);
    let exact = mine_exact(&data.seq, &cfg);
    assert!(!exact.is_empty(), "need patterns for the accuracy test");
    // A lower raw NMI threshold keeps more correlation-graph edges, so
    // accuracy grows as mu decreases. (The paper's "A-HTPGM (80%)" labels
    // are graph-density targets, i.e. the opposite axis direction.)
    let mut prev = -1.0f64;
    for mu in [0.8, 0.5, 0.2, 0.01] {
        let approx = mine_approximate(&data.syb, &data.seq, mu, &cfg);
        let acc = approx.result.accuracy_against(&exact);
        assert!(
            acc >= prev - 1e-12,
            "accuracy should not drop as mu decreases: mu={mu} acc={acc} prev={prev}"
        );
        prev = acc;
    }
    // With a negligible mu every variable pair is correlated: exact match.
    let approx = mine_approximate(&data.syb, &data.seq, 1e-12_f64.max(f64::MIN_POSITIVE), &cfg);
    assert_eq!(approx.result.len(), exact.len());
}

#[test]
fn support_and_confidence_satisfy_thresholds() {
    for seed in 300..310u64 {
        let db = random_sequence_database(seed, 8, 4, 2, 50);
        let cfg = MinerConfig::new(0.25, 0.4).with_max_events(4);
        let sigma_abs = cfg.absolute_support(db.len());
        let result = mine_exact(&db, &cfg);
        for p in &result.patterns {
            assert!(p.support >= sigma_abs);
            assert!(p.confidence + 1e-9 >= cfg.delta);
            assert!((0.0..=1.0).contains(&p.rel_support));
            assert!(p.confidence <= 1.0 + 1e-9);
        }
    }
}

#[test]
fn lemma2_pattern_support_bounded_by_event_support() {
    for seed in 400..408u64 {
        let db = random_sequence_database(seed, 8, 3, 2, 40);
        let cfg = MinerConfig::new(0.2, 0.2).with_max_events(3);
        let result = mine_exact(&db, &cfg);
        let event_supp: HashMap<_, _> = result.frequent_events.iter().copied().collect();
        for p in &result.patterns {
            for e in p.pattern.events() {
                assert!(
                    p.support <= event_supp[e],
                    "seed={seed}: supp(P) must be <= supp(E) (Lemma 2)"
                );
            }
        }
    }
}

#[test]
fn lemma6_prefix_confidence_at_least_pattern_confidence() {
    for seed in 500..506u64 {
        let db = random_sequence_database(seed, 7, 3, 2, 40);
        let cfg = MinerConfig::new(0.2, 0.2).with_max_events(4);
        let result = mine_exact(&db, &cfg);
        let by_key = as_map(&result);
        for p in &result.patterns {
            for other in &result.patterns {
                if other.pattern.len() < p.pattern.len()
                    && p.pattern.has_prefix(&other.pattern)
                {
                    let (_, prefix_conf) = by_key[&other.pattern];
                    assert!(
                        prefix_conf + 1e-9 >= p.confidence,
                        "seed={seed}: Lemma 6 violated"
                    );
                }
            }
        }
    }
}

#[test]
fn event_level_approximate_is_subset_of_exact() {
    use ftpm_core::mine_approximate_event_level;
    let data = ftpm_datagen::dataport_like(0.02);
    let cfg = MinerConfig::new(0.3, 0.3).with_max_events(3);
    let exact = mine_exact(&data.seq, &cfg);
    let exact_keys = exact.pattern_keys();
    for mu in [0.1, 0.4, 0.7] {
        let approx = mine_approximate_event_level(&data.syb, &data.seq, mu, &cfg);
        for p in &approx.result.patterns {
            assert!(
                exact_keys.contains(&p.pattern),
                "mu={mu}: event-level approx invented a pattern"
            );
        }
    }
}

#[test]
fn event_indicator_database_matches_symbols() {
    use ftpm_core::event_indicator_database;
    let data = ftpm_datagen::dataport_like(0.01);
    let ind = event_indicator_database(&data.syb, &data.seq);
    assert_eq!(ind.n_variables(), data.seq.registry().len());
    assert_eq!(ind.n_steps(), data.syb.n_steps());
    // Spot check: the indicator of event e is On exactly where the
    // source series carries e's symbol.
    let reg = data.seq.registry();
    let e = ftpm_events::EventId(0);
    let var = reg.variable(e);
    let sym = reg.symbol(e);
    let src = data.syb.series(var);
    let indicator = ind.series(ftpm_timeseries::VariableId(0));
    for (a, b) in src.symbols().iter().zip(indicator.symbols()) {
        assert_eq!(*a == sym, b.0 == 1);
    }
}

#[test]
fn parallel_matches_sequential() {
    use ftpm_core::mine_exact_parallel;
    for seed in 600..606u64 {
        let db = random_sequence_database(seed, 8, 4, 2, 50);
        let cfg = MinerConfig::new(0.25, 0.3).with_max_events(4);
        let sequential = mine_exact(&db, &cfg);
        for threads in [1, 2, 4] {
            let parallel = mine_exact_parallel(&db, &cfg, threads);
            assert_same_patterns(
                &sequential,
                &parallel,
                &format!("seed={seed} threads={threads}"),
            );
            assert_eq!(
                parallel.stats.instance_checks, sequential.stats.instance_checks,
                "same work regardless of thread count"
            );
        }
    }
    let data = ftpm_datagen::dataport_like(0.01);
    let cfg = MinerConfig::new(0.3, 0.3).with_max_events(3);
    let sequential = mine_exact(&data.seq, &cfg);
    let parallel = mine_exact_parallel(&data.seq, &cfg, 4);
    assert_same_patterns(&sequential, &parallel, "structured parallel");
}
