//! Schedule invariance: the parallel miners' output must not depend on
//! the worker interleaving. An ordinary test run only ever sees the few
//! schedules the OS happens to produce; the [`ftpm_core::Schedule`]
//! harness instead *drives* the interleaving — each seed serializes the
//! pools at task-claim granularity under a seeded sequencer — so this
//! test sweeps ≥ 50 distinct interleavings at 2 and 4 simulated workers
//! and asserts the merged output of both `mine_exact_parallel` and the
//! candidate-exchange executor equals the single-threaded baseline on
//! every one of them. Any failure names the seed that reproduces it.

use std::collections::{HashMap, HashSet};

use ftpm_core::{mine_exact, Explorer, MinerConfig, MiningResult, Schedule, ShardPlanner};
use ftpm_events::{
    to_sequence_database, BoundaryPolicy, EventRegistry, RelationConfig, SplitConfig,
};
use ftpm_timeseries::{Alphabet, SymbolId, SymbolicDatabase, SymbolicSeries};

/// Deterministic pseudo-random on/off symbolic database (xorshift64*),
/// the same generator idiom the equivalence tests use: run lengths in
/// `1..=max_run` so runs cross window and shard boundaries.
fn random_syb(seed: u64, vars: usize, n_steps: usize, step: i64, max_run: u64) -> SymbolicDatabase {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545f4914f6cdd1d)
    };
    let mut db = SymbolicDatabase::new(0, step, n_steps);
    for v in 0..vars {
        let mut symbols = Vec::with_capacity(n_steps);
        let mut sym = SymbolId((next() % 2) as u16);
        while symbols.len() < n_steps {
            let run = 1 + (next() % max_run) as usize;
            for _ in 0..run.min(n_steps - symbols.len()) {
                symbols.push(sym);
            }
            sym = SymbolId(1 - sym.0);
        }
        db.push(SymbolicSeries::new(
            format!("V{v}"),
            Alphabet::on_off(),
            symbols,
        ));
    }
    db
}

type Labelled = HashMap<String, (usize, f64, usize)>;

fn labelled(result: &MiningResult, reg: &EventRegistry) -> Labelled {
    result
        .patterns
        .iter()
        .map(|p| {
            (
                p.pattern.display(reg).to_string(),
                (p.support, p.confidence, p.clipped_occurrences),
            )
        })
        .collect()
}

fn assert_equivalent(base: &Labelled, other: &Labelled, context: &str) {
    for (label, (supp, conf, clipped)) in base {
        match other.get(label) {
            None => panic!("{context}: lost {label}"),
            Some((s, c, cl)) => {
                assert_eq!(supp, s, "{context}: support mismatch on {label}");
                assert!(
                    (conf - c).abs() < 1e-9,
                    "{context}: confidence mismatch on {label}"
                );
                assert_eq!(clipped, cl, "{context}: clipped count mismatch on {label}");
            }
        }
    }
    assert_eq!(base.len(), other.len(), "{context}: fabricated patterns");
}

fn cfg() -> MinerConfig {
    MinerConfig::new(0.3, 0.4)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, 60).with_boundary(BoundaryPolicy::TrueExtent))
}

/// Seeds per worker count; 2 counts × 25 seeds = 50 interleavings per
/// miner, with the distinct-trace assertion proving they really differ.
const SEEDS_PER_WIDTH: u64 = 25;
const WIDTHS: [usize; 2] = [2, 4];

#[test]
fn parallel_miner_output_is_schedule_invariant() {
    let syb = random_syb(42, 6, 240, 5, 7);
    let split = SplitConfig::new(100, 0);
    let seq = to_sequence_database(&syb, split);
    let cfg = cfg();
    let base = labelled(&mine_exact(&seq, &cfg), seq.registry());
    assert!(!base.is_empty(), "baseline must find patterns to compare");

    let mut traces: HashSet<Vec<usize>> = HashSet::new();
    for workers in WIDTHS {
        for seed in 0..SEEDS_PER_WIDTH {
            let sched = Schedule::new(seed, workers);
            let run = sched.mine_parallel(&seq, &cfg);
            assert_equivalent(
                &base,
                &labelled(&run, seq.registry()),
                &format!("parallel seed={seed} workers={workers}"),
            );
            let trace = sched.trace();
            assert!(
                !trace.is_empty(),
                "seed={seed} workers={workers}: claims must go through the sequencer"
            );
            traces.insert(trace);
        }
    }
    assert!(
        traces.len() >= 50,
        "expected >= 50 distinct interleavings, got {}",
        traces.len()
    );
}

#[test]
fn exchange_executor_output_is_schedule_invariant() {
    let syb = random_syb(7, 6, 240, 5, 7);
    let split = SplitConfig::new(100, 0);
    let seq = to_sequence_database(&syb, split);
    let cfg = cfg();
    let base = labelled(&mine_exact(&seq, &cfg), seq.registry());
    assert!(!base.is_empty(), "baseline must find patterns to compare");

    // One plan, many schedules: the exchange rounds re-run under each
    // seeded interleaving of the shard workers.
    let plan = ShardPlanner::new(3)
        .plan(&syb, split, cfg.relation.t_max)
        .expect("valid shard geometry");

    let mut traces: HashSet<Vec<usize>> = HashSet::new();
    for workers in WIDTHS {
        for seed in 0..SEEDS_PER_WIDTH {
            let sched = Schedule::new(seed, workers);
            let (run, reports) = sched.mine_exchange(&plan, &cfg);
            assert_equivalent(
                &base,
                &labelled(&run, plan.registry()),
                &format!("exchange seed={seed} workers={workers}"),
            );
            assert_eq!(
                reports.iter().map(|r| r.windows_owned).sum::<usize>(),
                seq.len(),
                "seed={seed} workers={workers}: ownership must tile the windows"
            );
            let trace = sched.trace();
            assert!(
                !trace.is_empty(),
                "seed={seed} workers={workers}: claims must go through the sequencer"
            );
            traces.insert(trace);
        }
    }
    assert!(
        traces.len() >= 50,
        "expected >= 50 distinct interleavings, got {}",
        traces.len()
    );
}

/// K=2 is small enough to visit *every* interleaving: the explorer's
/// DFS must exhaust the space (not hit its schedule cap) with the output
/// bit-identical to the single-threaded baseline on every trace.
#[test]
fn explorer_exhausts_two_worker_parallel_interleavings() {
    let syb = random_syb(42, 2, 60, 5, 5);
    let seq = to_sequence_database(&syb, SplitConfig::new(30, 0));
    let cfg = cfg();
    let base = labelled(&mine_exact(&seq, &cfg), seq.registry());
    assert!(!base.is_empty(), "baseline must find patterns to compare");

    let stats = Explorer::new(2)
        .with_max_schedules(20_000)
        .explore(|sched| {
            let run = sched.mine_parallel(&seq, &cfg);
            assert_equivalent(
                &base,
                &labelled(&run, seq.registry()),
                &format!("exhaustive parallel trace={:?}", sched.trace()),
            );
            Ok::<(), String>(())
        })
        .expect("every interleaving matches the baseline");
    eprintln!("parallel K=2 exhaustive: {stats:?}");
    assert!(stats.exhausted && !stats.capped, "{stats:?}");
    assert!(stats.schedules > 10, "space must branch: {stats:?}");
    assert_eq!(
        stats.distinct_traces, stats.schedules,
        "symmetry reduction never replays a trace: {stats:?}"
    );
}

/// Same exhaustive sweep over the candidate-exchange executor's
/// propose → gate → expand rounds at K=2 shard workers.
#[test]
fn explorer_exhausts_two_worker_exchange_interleavings() {
    let syb = random_syb(7, 2, 100, 5, 6);
    let split = SplitConfig::new(50, 0);
    let seq = to_sequence_database(&syb, split);
    let cfg = cfg();
    let base = labelled(&mine_exact(&seq, &cfg), seq.registry());
    assert!(!base.is_empty(), "baseline must find patterns to compare");
    let plan = ShardPlanner::new(2)
        .plan(&syb, split, cfg.relation.t_max)
        .expect("valid shard geometry");

    let stats = Explorer::new(2)
        .with_max_schedules(20_000)
        .explore(|sched| {
            let (run, _) = sched.mine_exchange(&plan, &cfg);
            assert_equivalent(
                &base,
                &labelled(&run, plan.registry()),
                &format!("exhaustive exchange trace={:?}", sched.trace()),
            );
            Ok::<(), String>(())
        })
        .expect("every interleaving matches the baseline");
    eprintln!("exchange K=2 exhaustive: {stats:?}");
    assert!(stats.exhausted && !stats.capped, "{stats:?}");
    assert!(stats.schedules > 10, "space must branch: {stats:?}");
}

/// K=4 is too wide to exhaust outright; a preemption bound of 1 keeps
/// the sweep exhaustive *within the bound* — every at-most-one-switch
/// interleaving — which is the regime scheduler bugs live in.
#[test]
fn explorer_bounded_preemption_covers_four_workers() {
    let syb = random_syb(42, 2, 60, 5, 5);
    let seq = to_sequence_database(&syb, SplitConfig::new(30, 0));
    let cfg = cfg();
    let base = labelled(&mine_exact(&seq, &cfg), seq.registry());

    let stats = Explorer::new(4)
        .with_preemption_bound(1)
        .with_max_schedules(20_000)
        .explore(|sched| {
            let run = sched.mine_parallel(&seq, &cfg);
            assert_equivalent(
                &base,
                &labelled(&run, seq.registry()),
                &format!("bounded parallel trace={:?}", sched.trace()),
            );
            Ok::<(), String>(())
        })
        .expect("every bounded interleaving matches the baseline");
    eprintln!("parallel K=4 bounded: {stats:?}");
    assert!(stats.exhausted && !stats.capped, "{stats:?}");
    assert!(stats.schedules > 10, "space must branch: {stats:?}");
}

#[test]
fn same_seed_replays_the_same_interleaving() {
    let syb = random_syb(11, 4, 160, 5, 6);
    let seq = to_sequence_database(&syb, SplitConfig::new(100, 0));
    let cfg = cfg();
    let a = Schedule::new(3, 4);
    let b = Schedule::new(3, 4);
    let ra = a.mine_parallel(&seq, &cfg);
    let rb = b.mine_parallel(&seq, &cfg);
    assert_eq!(a.trace(), b.trace(), "same seed must replay the schedule");
    assert_eq!(ra.patterns.len(), rb.patterns.len());
}
