//! Property tests for the hash-consed pattern pool: over random pattern
//! batches, interning round-trips bit-identically, parent-delta chain
//! construction agrees with flat construction, hash-consing never grows
//! the pool for a known pattern, and the base-plus-delta `PoolView`
//! layering at the shard seam (including registry remaps and `absorb`
//! translation) preserves every pattern exactly.

use std::collections::HashMap;

use ftpm_core::{DeltaKey, Pattern, PatternPool, PoolView};
use ftpm_events::{EventId, TemporalRelation};

/// xorshift64* — the workspace's deterministic test RNG idiom.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A random pattern of `len` events drawn from `n_events` registry ids
/// (repeats allowed — the miner produces them) with uniformly random
/// relations in the flat upper-triangular layout.
fn random_pattern(rng: &mut Rng, n_events: usize, len: usize) -> Pattern {
    let events = (0..len)
        .map(|_| EventId(rng.below(n_events) as u32))
        .collect();
    let relations = (0..len * (len - 1) / 2)
        .map(|_| TemporalRelation::ALL[rng.below(3)])
        .collect();
    Pattern::new(events, relations)
}

/// A batch of random patterns with mixed lengths (2..=5 events —
/// `Pattern` itself starts at two).
fn random_batch(seed: u64, n_events: usize, count: usize) -> Vec<Pattern> {
    let mut rng = Rng::new(seed);
    (0..count)
        .map(|_| {
            let len = 2 + rng.below(4);
            random_pattern(&mut rng, n_events, len)
        })
        .collect()
}

/// Packs a delta relation column the way the candidate engine does:
/// two bits per relation, first relation in the high bits.
fn pack(delta: &[TemporalRelation]) -> u64 {
    delta
        .iter()
        .fold(0u64, |code, r| (code << 2) | (r.index() as u64 + 1))
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `resolve(intern(&p))` is bit-identical to the original
        /// `Pattern::new` value, and the accessor surface (event count,
        /// last event, reverse event walk, parent-as-prefix) agrees
        /// with the flat representation.
        #[test]
        fn intern_resolve_round_trips(seed in 0u64..64, n_events in 2usize..9) {
            let mut pool = PatternPool::with_roots(n_events);
            for p in random_batch(seed, n_events, 40) {
                let id = pool.intern(&p);
                prop_assert_eq!(pool.resolve(id), p.clone());
                prop_assert_eq!(pool.event_count(id), p.len());
                prop_assert_eq!(pool.last_event(id), p.events()[p.len() - 1]);
                let mut rev: Vec<EventId> = pool.events_rev(id).collect();
                rev.reverse();
                prop_assert_eq!(&rev[..], p.events());
                if p.len() > 2 {
                    let k = p.len();
                    let prefix = Pattern::new(
                        p.events()[..k - 1].to_vec(),
                        p.relations()[..(k - 1) * (k - 2) / 2].to_vec(),
                    );
                    prop_assert_eq!(pool.parent(id), pool.intern(&prefix));
                } else {
                    prop_assert_eq!(pool.parent(id), pool.root(p.events()[0]));
                }
            }
        }

        /// Growing a pattern level by level through `intern_child` /
        /// `intern_packed` (the exchange gate's `DeltaKey` path) lands
        /// on the same id as interning the flat pattern in one call.
        #[test]
        fn chained_construction_matches_flat(seed in 0u64..64, n_events in 2usize..9) {
            let mut pool = PatternPool::with_roots(n_events);
            for p in random_batch(seed, n_events, 30) {
                let events = p.events();
                let relations = p.relations();
                let mut by_child = pool.root(events[0]);
                let mut by_packed = pool.root(events[0]);
                for k in 2..=events.len() {
                    let delta = &relations[(k - 1) * (k - 2) / 2..k * (k - 1) / 2];
                    by_child = pool.intern_child(by_child, events[k - 1], delta);
                    by_packed = pool.intern_packed(DeltaKey {
                        parent: by_packed,
                        last: events[k - 1],
                        code: pack(delta),
                    });
                    prop_assert_eq!(by_child, by_packed);
                }
                prop_assert_eq!(pool.intern(&p), by_child);
            }
        }

        /// Hash-consing: re-interning a known batch (in reverse order,
        /// and through a permuting identity map) returns the same ids
        /// without growing the pool, and distinct patterns never share
        /// an id.
        #[test]
        fn hash_consing_dedups(seed in 0u64..64, n_events in 2usize..9) {
            let mut pool = PatternPool::with_roots(n_events);
            let batch = random_batch(seed, n_events, 40);
            let ids: Vec<_> = batch.iter().map(|p| pool.intern(p)).collect();
            let len = pool.len();
            let identity: Vec<EventId> = (0..n_events as u32).map(EventId).collect();
            for (p, &id) in batch.iter().zip(&ids).rev() {
                prop_assert_eq!(pool.intern(p), id);
                prop_assert_eq!(pool.intern_mapped(p, &identity), id);
            }
            prop_assert_eq!(pool.len(), len, "re-interning must not grow the pool");
            let mut by_id = HashMap::new();
            for (p, &id) in batch.iter().zip(&ids) {
                let prev = by_id.insert(id, p.clone());
                if let Some(prev) = prev {
                    prop_assert_eq!(&prev, p, "one id, one pattern");
                }
            }
        }

        /// The shard seam: a `PoolView` over a frozen base resolves
        /// every pattern identically, base hits keep their base ids,
        /// and `absorb` translates each delta id to a master id that
        /// direct interning agrees with.
        #[test]
        fn view_layering_matches_direct_intern(seed in 0u64..64, n_events in 2usize..9) {
            let batch = random_batch(seed, n_events, 30);
            let mut base = PatternPool::with_roots(n_events);
            // The coordinator has already seen every other pattern.
            let base_ids: Vec<_> = batch
                .iter()
                .step_by(2)
                .map(|p| base.intern(p))
                .collect();
            let snapshot = base.clone();
            let mut view = PoolView::new(&snapshot);
            let view_ids: Vec<_> = batch.iter().map(|p| view.intern(p)).collect();
            for (p, &id) in batch.iter().zip(&view_ids) {
                prop_assert_eq!(view.resolve(id), p.clone());
            }
            for (&base_id, &view_id) in base_ids.iter().zip(view_ids.iter().step_by(2)) {
                prop_assert_eq!(view_id, base_id, "base hits keep base ids");
            }
            let translate = view.absorb(&mut base);
            for (p, &id) in batch.iter().zip(&view_ids) {
                let master = if (id.0 as usize) < snapshot.len() {
                    id
                } else {
                    translate[id.0 as usize - snapshot.len()]
                };
                prop_assert_eq!(base.resolve(master), p.clone());
                prop_assert_eq!(base.intern(p), master, "absorb agrees with direct intern");
            }
        }

        /// `intern_mapped` under a registry permutation equals interning
        /// the hand-translated pattern — the id-translation seam a shard
        /// with a foreign registry crosses on merge.
        #[test]
        fn mapped_intern_translates_like_rewriting(seed in 0u64..64, n_events in 2usize..9) {
            // A deterministic permutation of the master event space.
            let mut rng = Rng::new(seed ^ 0xabcd);
            let mut map: Vec<EventId> = (0..n_events as u32).map(EventId).collect();
            for i in (1..map.len()).rev() {
                map.swap(i, rng.below(i + 1));
            }
            let mut pool = PatternPool::with_roots(n_events);
            for p in random_batch(seed, n_events, 30) {
                let rewritten = Pattern::new(
                    p.events().iter().map(|e| map[e.0 as usize]).collect(),
                    p.relations().to_vec(),
                );
                prop_assert_eq!(pool.intern_mapped(&p, &map), pool.intern(&rewritten));
            }
        }
    }
}
