//! Shard-by-time-range mining must be lossless: for any data, any split,
//! and any shard count, the merged output of `mine_sharded` (shards cut
//! with `t_ov = t_max`, mined independently on their own slices) equals
//! the unsharded `mine_exact` baseline on the same split — same pattern
//! labels, supports, confidences and clipped-occurrence counts. Event ids
//! differ across conversions (intern order), so everything compares by
//! label.

use std::collections::HashMap;

use ftpm_core::{mine_exact, mine_sharded, MinerConfig, MiningResult, ShardPlanner};
use ftpm_events::{
    to_sequence_database, BoundaryPolicy, EventRegistry, RelationConfig, SplitConfig,
};
use ftpm_timeseries::{Alphabet, SymbolId, SymbolicDatabase, SymbolicSeries};

/// Deterministic pseudo-random on/off symbolic database with run lengths
/// in `1..=max_run` — long runs cross window and shard boundaries, which
/// is exactly what the shard pads must survive.
fn random_syb(seed: u64, vars: usize, n_steps: usize, step: i64, max_run: u64) -> SymbolicDatabase {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545f4914f6cdd1d)
    };
    let mut db = SymbolicDatabase::new(0, step, n_steps);
    for v in 0..vars {
        let mut symbols = Vec::with_capacity(n_steps);
        let mut sym = SymbolId((next() % 2) as u16);
        while symbols.len() < n_steps {
            let run = 1 + (next() % max_run) as usize;
            for _ in 0..run.min(n_steps - symbols.len()) {
                symbols.push(sym);
            }
            sym = SymbolId(1 - sym.0);
        }
        db.push(SymbolicSeries::new(
            format!("V{v}"),
            Alphabet::on_off(),
            symbols,
        ));
    }
    db
}

type Labelled = HashMap<String, (usize, f64, usize)>;

fn labelled(result: &MiningResult, reg: &EventRegistry) -> Labelled {
    result
        .patterns
        .iter()
        .map(|p| {
            (
                p.pattern.display(reg).to_string(),
                (p.support, p.confidence, p.clipped_occurrences),
            )
        })
        .collect()
}

fn assert_equivalent(base: &Labelled, sharded: &Labelled, context: &str) {
    for (label, (supp, conf, clipped)) in base {
        match sharded.get(label) {
            None => panic!("{context}: sharded run lost {label}"),
            Some((s, c, cl)) => {
                assert_eq!(supp, s, "{context}: support mismatch on {label}");
                assert!(
                    (conf - c).abs() < 1e-9,
                    "{context}: confidence mismatch on {label}"
                );
                assert_eq!(clipped, cl, "{context}: clipped count mismatch on {label}");
            }
        }
    }
    assert_eq!(
        base.len(),
        sharded.len(),
        "{context}: sharded run fabricated patterns"
    );
}

fn check(
    syb: &SymbolicDatabase,
    split: SplitConfig,
    cfg: &MinerConfig,
    shards: usize,
    context: &str,
) {
    let seq = to_sequence_database(syb, split);
    let base = mine_exact(&seq, cfg);
    let sharded = mine_sharded(syb, split, cfg, shards, 1)
        .unwrap_or_else(|e| panic!("{context}: plan failed: {e}"));
    assert_equivalent(
        &labelled(&base, seq.registry()),
        &labelled(&sharded.result, &sharded.registry),
        context,
    );
    // Frequent single events agree too (by label).
    let base_l1: HashMap<&str, usize> = base
        .frequent_events
        .iter()
        .map(|&(e, s)| (seq.registry().label(e), s))
        .collect();
    let sharded_l1: HashMap<&str, usize> = sharded
        .result
        .frequent_events
        .iter()
        .map(|&(e, s)| (sharded.registry.label(e), s))
        .collect();
    assert_eq!(base_l1, sharded_l1, "{context}: L1 events");
    // Boundary observability survives the merge.
    assert_eq!(
        base.stats.clipped_instances, sharded.result.stats.clipped_instances,
        "{context}: clipped_instances"
    );
    assert_eq!(
        base.stats.discarded_instances, sharded.result.stats.discarded_instances,
        "{context}: discarded_instances"
    );
}

fn true_extent_cfg(t_max: i64) -> MinerConfig {
    MinerConfig::new(0.3, 0.3)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, t_max).with_boundary(BoundaryPolicy::TrueExtent))
}

#[test]
fn k1_degenerate_case_matches_mine_exact_bit_for_bit() {
    let syb = random_syb(7, 3, 64, 5, 6);
    let split = SplitConfig::new(40, 20);
    let cfg = true_extent_cfg(20);
    let seq = to_sequence_database(&syb, split);
    let base = mine_exact(&seq, &cfg);
    let sharded = mine_sharded(&syb, split, &cfg, 1, 1).expect("plan");
    assert_eq!(sharded.shards, 1);
    // One shard covering everything: identical content (the merge emits
    // in sorted order, so compare as maps plus exact counts).
    assert_eq!(base.len(), sharded.result.len(), "pattern count");
    assert_equivalent(
        &labelled(&base, seq.registry()),
        &labelled(&sharded.result, &sharded.registry),
        "K=1",
    );
    assert_eq!(
        base.frequent_events.len(),
        sharded.result.frequent_events.len()
    );
}

#[test]
fn sharded_equals_unsharded_across_policies_and_shard_counts() {
    let syb = random_syb(42, 3, 96, 5, 8);
    let split = SplitConfig::new(40, 20);
    for policy in [
        BoundaryPolicy::TrueExtent,
        BoundaryPolicy::Clip,
        BoundaryPolicy::Discard,
    ] {
        let cfg = MinerConfig::new(0.25, 0.25)
            .with_max_events(3)
            .with_relation(RelationConfig::new(0, 1, 20).with_boundary(policy));
        for shards in [2usize, 3, 4] {
            check(&syb, split, &cfg, shards, &format!("{policy} K={shards}"));
        }
    }
}

/// Regression: two instances tying on (start, end) break chronological
/// order by EventId, and a shard slice interns events in a different
/// order than the global conversion — so before shard databases were
/// remapped onto the global registry, the shard could bind the tied
/// pair in the opposite orientation and emit the mirrored pattern.
#[test]
fn tied_instances_bind_in_the_global_intern_order() {
    // 16 steps of 5 ticks, windows of 4 steps. V1=On shows up already in
    // window 0 while V0=On first appears in window 2 — so globally
    // id(V1=On) < id(V0=On), but shard 1's slice (starting at window 1)
    // meets V0=On first and would intern the ids the other way around.
    // Both are On exactly over steps 9..=10: identical extents [45, 55).
    let mut syb = SymbolicDatabase::new(0, 5, 16);
    let on_at = |steps: &[usize]| {
        (0..16)
            .map(|i| if steps.contains(&i) { "On" } else { "Off" })
            .collect::<Vec<_>>()
    };
    syb.push(SymbolicSeries::from_labels(
        "V0",
        Alphabet::on_off(),
        on_at(&[9, 10]),
    ));
    syb.push(SymbolicSeries::from_labels(
        "V1",
        Alphabet::on_off(),
        on_at(&[1, 9, 10]),
    ));
    let split = SplitConfig::new(20, 0);
    // sigma low enough that the single tied co-occurrence survives.
    let cfg = MinerConfig::new(0.2, 0.2)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, 20).with_boundary(BoundaryPolicy::TrueExtent));
    let seq = to_sequence_database(&syb, split);
    let tied = "(V1=On Contain V0=On)";
    let base = labelled(&mine_exact(&seq, &cfg), seq.registry());
    assert!(
        base.contains_key(tied),
        "baseline must bind the tie as {tied}: {base:?}"
    );
    for shards in [2usize, 4] {
        let sharded = mine_sharded(&syb, split, &cfg, shards, 1).expect("plan");
        assert_equivalent(
            &base,
            &labelled(&sharded.result, &sharded.registry),
            &format!("tied instances K={shards}"),
        );
    }
}

#[test]
fn overlap_dedup_never_under_counts_and_naive_merge_over_counts() {
    // A=On [0,2), B=On [2,4) in every 4-step window: (A=On Follow B=On)
    // is supported by every window, so every duplicated overlap window
    // would be double-counted by a naive (ownership-blind) union.
    let mut syb = SymbolicDatabase::new(0, 5, 48);
    let a: Vec<&str> = ["On", "On", "Off", "Off"].repeat(12);
    let b: Vec<&str> = ["Off", "Off", "On", "On"].repeat(12);
    syb.push(SymbolicSeries::from_labels("A", Alphabet::on_off(), a));
    syb.push(SymbolicSeries::from_labels("B", Alphabet::on_off(), b));
    let split = SplitConfig::new(20, 0);
    let cfg = true_extent_cfg(20);

    let seq = to_sequence_database(&syb, split);
    let n_windows = seq.len();
    let base = mine_exact(&seq, &cfg);
    let base_map = labelled(&base, seq.registry());
    let follow = "(A=On Follow B=On)";
    assert_eq!(
        base_map
            .get(follow)
            .unwrap_or_else(|| panic!("baseline should find {follow}"))
            .0,
        n_windows,
        "the probe pattern is supported by every window"
    );

    let plan = ShardPlanner::new(3).plan(&syb, split, cfg.relation.t_max).expect("plan");
    // The deduplicating merge reproduces the baseline exactly.
    let merged = plan.mine(&cfg, 1);
    let merged_map = labelled(&merged, plan.registry());
    assert_equivalent(&base_map, &merged_map, "dedup merge");

    // Shards really do hold duplicated overlap windows...
    let duplicated: usize = plan
        .shards()
        .iter()
        .map(|s| s.owned.iter().filter(|&&o| !o).count())
        .sum();
    assert!(duplicated > 0, "overlapping slices must duplicate windows");
    // ...so the naive union (support counted over every window each
    // shard sees, ownership ignored) over-counts the probe pattern by
    // exactly the duplicated windows. This is the latent bug the merge's
    // dedup exists to prevent.
    let support_complete = MinerConfig {
        sigma: f64::MIN_POSITIVE,
        delta: f64::MIN_POSITIVE,
        ..cfg
    };
    let mut naive: HashMap<String, usize> = HashMap::new();
    for shard in plan.shards() {
        let result = mine_exact(&shard.db, &support_complete);
        for p in &result.patterns {
            *naive
                .entry(p.pattern.display(shard.db.registry()).to_string())
                .or_default() += p.support;
        }
    }
    assert_eq!(
        naive[follow],
        n_windows + duplicated,
        "naive ownership-blind union double-counts every overlap window"
    );
    // And dedup never under-counts: merged support matches the baseline
    // for every pattern while the naive union only ever inflates.
    for (label, (supp, _, _)) in &merged_map {
        assert!(
            naive.get(label).copied().unwrap_or(0) >= *supp,
            "naive union under-counted {label}"
        );
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random series, random sigma/delta, K in {1, 2, 4}: sharded
        /// mining with TrueExtent and t_ov = t_max equals the unsharded
        /// baseline (patterns, supports, confidences, clipped counts).
        #[test]
        fn sharded_true_extent_equals_unsharded(
            seed in 0u64..40,
            vars in 2usize..4,
            sigma in 0.15f64..0.7,
            delta in 0.15f64..0.7,
            shard_choice in 0usize..3,
            overlap_steps in 0usize..3,
            t_max_steps in 2i64..8,
        ) {
            let shards = [1usize, 2, 4][shard_choice];
            let step = 5i64;
            let syb = random_syb(seed, vars, 72, step, 7);
            let split = SplitConfig::new(8 * step, overlap_steps as i64 * step);
            let cfg = MinerConfig::new(sigma, delta)
                .with_max_events(3)
                .with_relation(
                    RelationConfig::new(0, 1, t_max_steps * step)
                        .with_boundary(BoundaryPolicy::TrueExtent),
                );
            let seq = to_sequence_database(&syb, split);
            let base = mine_exact(&seq, &cfg);
            let sharded = mine_sharded(&syb, split, &cfg, shards, 1).expect("plan");
            let (bm, sm) = (
                labelled(&base, seq.registry()),
                labelled(&sharded.result, &sharded.registry),
            );
            for (label, (supp, conf, clipped)) in &bm {
                let (s, c, cl) = sm
                    .get(label)
                    .unwrap_or_else(|| panic!("lost {label} (K={shards})"));
                prop_assert_eq!(supp, s, "support of {}", label);
                prop_assert!((conf - c).abs() < 1e-9, "confidence of {}", label);
                prop_assert_eq!(clipped, cl, "clipped count of {}", label);
            }
            prop_assert_eq!(bm.len(), sm.len(), "pattern count");
        }
    }
}
