//! The two-phase candidate-exchange executor must be *exact*: for any
//! data, any split, any shard count and any boundary policy, its merged
//! output equals both the support-complete sharded merge (the PR 4 path
//! it cross-validates against) and the unsharded `mine_exact` baseline —
//! same pattern labels, supports, confidences and clipped-occurrence
//! counts — while generating strictly fewer candidates per shard than
//! support-complete mining whenever the global gate has anything to kill.
//! Event ids differ across conversions (intern order), so everything
//! compares by label.

use std::collections::HashMap;

use ftpm_core::{
    mine_exact, mine_sharded, mine_sharded_exchange, MinerConfig, MiningResult, ShardPlanner,
};
use ftpm_events::{
    to_sequence_database, BoundaryPolicy, EventRegistry, RelationConfig, SplitConfig,
};
use ftpm_timeseries::{Alphabet, SymbolId, SymbolicDatabase, SymbolicSeries};

/// Deterministic pseudo-random on/off symbolic database with run lengths
/// in `1..=max_run` — long runs cross window and shard boundaries, which
/// is exactly what the shard pads and the exchange must survive.
fn random_syb(seed: u64, vars: usize, n_steps: usize, step: i64, max_run: u64) -> SymbolicDatabase {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545f4914f6cdd1d)
    };
    let mut db = SymbolicDatabase::new(0, step, n_steps);
    for v in 0..vars {
        let mut symbols = Vec::with_capacity(n_steps);
        let mut sym = SymbolId((next() % 2) as u16);
        while symbols.len() < n_steps {
            let run = 1 + (next() % max_run) as usize;
            for _ in 0..run.min(n_steps - symbols.len()) {
                symbols.push(sym);
            }
            sym = SymbolId(1 - sym.0);
        }
        db.push(SymbolicSeries::new(
            format!("V{v}"),
            Alphabet::on_off(),
            symbols,
        ));
    }
    db
}

type Labelled = HashMap<String, (usize, f64, usize)>;

fn labelled(result: &MiningResult, reg: &EventRegistry) -> Labelled {
    result
        .patterns
        .iter()
        .map(|p| {
            (
                p.pattern.display(reg).to_string(),
                (p.support, p.confidence, p.clipped_occurrences),
            )
        })
        .collect()
}

fn assert_equivalent(base: &Labelled, other: &Labelled, context: &str) {
    for (label, (supp, conf, clipped)) in base {
        match other.get(label) {
            None => panic!("{context}: lost {label}"),
            Some((s, c, cl)) => {
                assert_eq!(supp, s, "{context}: support mismatch on {label}");
                assert!(
                    (conf - c).abs() < 1e-9,
                    "{context}: confidence mismatch on {label}"
                );
                assert_eq!(clipped, cl, "{context}: clipped count mismatch on {label}");
            }
        }
    }
    assert_eq!(base.len(), other.len(), "{context}: fabricated patterns");
}

fn policy_cfg(sigma: f64, delta: f64, t_max: i64, policy: BoundaryPolicy) -> MinerConfig {
    MinerConfig::new(sigma, delta)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, t_max).with_boundary(policy))
}

/// One full three-way check: unsharded vs support-complete vs exchange.
fn check_three_way(
    syb: &SymbolicDatabase,
    split: SplitConfig,
    cfg: &MinerConfig,
    shards: usize,
    threads: usize,
    context: &str,
) {
    let seq = to_sequence_database(syb, split);
    let base = labelled(&mine_exact(&seq, cfg), seq.registry());
    let complete = mine_sharded(syb, split, cfg, shards, threads)
        .unwrap_or_else(|e| panic!("{context}: support-complete plan failed: {e}"));
    assert_equivalent(
        &base,
        &labelled(&complete.result, &complete.registry),
        &format!("{context} [support-complete]"),
    );
    let (exchange, reports) = mine_sharded_exchange(syb, split, cfg, shards, threads)
        .unwrap_or_else(|e| panic!("{context}: exchange plan failed: {e}"));
    assert_equivalent(
        &base,
        &labelled(&exchange.result, &exchange.registry),
        &format!("{context} [exchange]"),
    );
    // L1 and boundary observability agree too.
    assert_eq!(
        complete.result.frequent_events.len(),
        exchange.result.frequent_events.len(),
        "{context}: L1 count"
    );
    assert_eq!(
        complete.result.stats.clipped_instances, exchange.result.stats.clipped_instances,
        "{context}: clipped_instances"
    );
    assert_eq!(
        complete.result.stats.discarded_instances, exchange.result.stats.discarded_instances,
        "{context}: discarded_instances"
    );
    // Ownership partitions the window space.
    assert_eq!(
        reports.iter().map(|r| r.windows_owned).sum::<usize>(),
        seq.len(),
        "{context}: owned windows must tile the global window space"
    );
    for r in &reports {
        assert!(
            r.candidates_pruned <= r.candidates_proposed,
            "{context}: shard {} pruned more than it proposed",
            r.shard
        );
    }
}

#[test]
fn exchange_equals_baselines_across_policies_and_shard_counts() {
    let syb = random_syb(42, 3, 96, 5, 8);
    let split = SplitConfig::new(40, 20);
    for policy in [
        BoundaryPolicy::TrueExtent,
        BoundaryPolicy::Clip,
        BoundaryPolicy::Discard,
    ] {
        let cfg = policy_cfg(0.25, 0.25, 20, policy);
        for shards in [1usize, 2, 4] {
            check_three_way(&syb, split, &cfg, shards, 1, &format!("{policy} K={shards}"));
        }
    }
}

#[test]
fn concurrent_shards_match_sequential_exchange() {
    let syb = random_syb(11, 3, 96, 5, 7);
    let split = SplitConfig::new(40, 20);
    let cfg = policy_cfg(0.2, 0.2, 20, BoundaryPolicy::TrueExtent);
    let plan = ShardPlanner::new(4).plan(&syb, split, cfg.relation.t_max).expect("plan");
    let (sequential, _) = plan.mine_exchange(&cfg, 1);
    for threads in [2usize, 4, 8] {
        let (concurrent, reports) = plan.mine_exchange(&cfg, threads);
        assert_equivalent(
            &labelled(&sequential, plan.registry()),
            &labelled(&concurrent, plan.registry()),
            &format!("{threads} threads"),
        );
        assert_eq!(reports.len(), plan.shards().len());
    }
}

/// The headline of the exchange: the global gate kills candidates *before*
/// the next level is enumerated, so every shard generates strictly fewer
/// candidates than the support-complete path on the same plan — while the
/// outputs stay identical (asserted above and in `repro_exchange`).
#[test]
fn exchange_prunes_strictly_fewer_candidates_than_support_complete() {
    let data = ftpm_datagen::nist_like(0.01).project_variables(6);
    let t_max = 3 * 60;
    let cfg = MinerConfig::new(0.25, 0.25)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, t_max).with_boundary(BoundaryPolicy::TrueExtent));
    let plan = ShardPlanner::new(4)
        .plan(&data.syb, data.split, t_max)
        .expect("plan");
    let mut sink = ftpm_core::CountingSink::default();
    let (_, complete_reports) = plan.mine_into_reported(&cfg, 1, &mut sink);
    let (exchange_result, exchange_reports) = plan.mine_exchange(&cfg, 1);

    let complete_total: usize = complete_reports.iter().map(|r| r.candidates_proposed).sum();
    let exchange_total: usize = exchange_reports.iter().map(|r| r.candidates_proposed).sum();
    assert!(
        exchange_total < complete_total,
        "exchange must generate strictly fewer candidates \
         ({exchange_total} vs {complete_total})"
    );
    assert!(
        exchange_reports.iter().any(|r| r.candidates_pruned > 0),
        "the global gate must actually kill candidates on the energy demo"
    );
    // And it still finds everything the unsharded baseline finds.
    let base = mine_exact(&data.seq, &cfg);
    assert_equivalent(
        &labelled(&base, data.seq.registry()),
        &labelled(&exchange_result, plan.registry()),
        "energy demo",
    );
}

/// A shard whose slice contains no (visible) instances must propose
/// nothing and not poison the exchange. Variant 1: a database with no
/// variables at all — every window is empty, and asking for more shards
/// than windows clamps to one shard per window.
#[test]
fn empty_shards_propose_nothing() {
    let syb = SymbolicDatabase::new(0, 5, 40); // 10 windows of 4 steps, no series
    let split = SplitConfig::new(20, 0);
    let cfg = policy_cfg(0.3, 0.3, 20, BoundaryPolicy::TrueExtent);
    let plan = ShardPlanner::new(16)
        .plan(&syb, split, cfg.relation.t_max)
        .expect("plan clamps K to the window count");
    assert!(plan.shards().len() <= 10);
    let (result, reports) = plan.mine_exchange(&cfg, 2);
    assert!(result.is_empty(), "no instances, no patterns");
    assert!(result.frequent_events.is_empty());
    for r in &reports {
        assert_eq!(r.candidates_proposed, 0, "shard {} proposed from nothing", r.shard);
        assert_eq!(r.candidates_pruned, 0);
    }
    // The support-complete path agrees.
    let complete = plan.mine(&cfg, 1);
    assert!(complete.is_empty());
}

/// Variant 2: a sparse tail — activity only near the start, then one long
/// constant run. Under `Discard`, tail windows hold only boundary-clipped
/// instances, so with one shard per window the tail shards see an empty
/// masked index. The exchange must still match the unsharded baseline
/// (and the support-complete merge) exactly.
#[test]
fn discard_hidden_tail_shards_do_not_poison_the_exchange() {
    let mut syb = SymbolicDatabase::new(0, 5, 48); // 12 windows of 4 steps
    let active = ["On", "Off", "On", "Off", "On", "On", "Off", "On"];
    let labels: Vec<&str> = active
        .into_iter()
        .chain(std::iter::repeat_n("Off", 40))
        .collect();
    syb.push(SymbolicSeries::from_labels("V0", Alphabet::on_off(), labels.clone()));
    let shifted: Vec<&str> = std::iter::once("Off")
        .chain(active)
        .chain(std::iter::repeat_n("Off", 39))
        .collect();
    syb.push(SymbolicSeries::from_labels("V1", Alphabet::on_off(), shifted));
    let split = SplitConfig::new(20, 0);
    for policy in [BoundaryPolicy::Discard, BoundaryPolicy::TrueExtent] {
        // sigma low enough that head-only patterns survive globally.
        let cfg = policy_cfg(0.05, 0.05, 20, policy);
        let n_windows = to_sequence_database(&syb, split).len();
        check_three_way(
            &syb,
            split,
            &cfg,
            n_windows, // one shard per window: the tail shards are "empty"
            2,
            &format!("sparse tail {policy}"),
        );
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random series, random σ/δ, K in {1, 2, 4}, every boundary
        /// policy: exchange-mode sharded output == support-complete merge
        /// == unsharded `mine_exact` (labels, supports, confidences,
        /// clipped counts).
        #[test]
        fn exchange_equals_support_complete_and_unsharded(
            seed in 0u64..24,
            vars in 2usize..4,
            sigma in 0.15f64..0.7,
            delta in 0.15f64..0.7,
            shard_choice in 0usize..3,
            policy_choice in 0usize..3,
            t_max_steps in 2i64..8,
        ) {
            let shards = [1usize, 2, 4][shard_choice];
            let policy = [
                BoundaryPolicy::TrueExtent,
                BoundaryPolicy::Clip,
                BoundaryPolicy::Discard,
            ][policy_choice];
            let step = 5i64;
            let syb = random_syb(seed, vars, 64, step, 7);
            let split = SplitConfig::new(8 * step, 2 * step);
            let cfg = MinerConfig::new(sigma, delta)
                .with_max_events(3)
                .with_relation(
                    RelationConfig::new(0, 1, t_max_steps * step).with_boundary(policy),
                );
            let seq = to_sequence_database(&syb, split);
            let base = labelled(&mine_exact(&seq, &cfg), seq.registry());
            let complete = mine_sharded(&syb, split, &cfg, shards, 1).expect("plan");
            let (exchange, _) =
                mine_sharded_exchange(&syb, split, &cfg, shards, 1).expect("plan");
            let cm = labelled(&complete.result, &complete.registry);
            let em = labelled(&exchange.result, &exchange.registry);
            for (label, (supp, conf, clipped)) in &base {
                for (name, m) in [("support-complete", &cm), ("exchange", &em)] {
                    let (s, c, cl) = m.get(label).unwrap_or_else(|| {
                        panic!("{name} lost {label} (K={shards}, {policy})")
                    });
                    prop_assert_eq!(supp, s, "{} support of {}", name, label);
                    prop_assert!((conf - c).abs() < 1e-9, "{} confidence of {}", name, label);
                    prop_assert_eq!(clipped, cl, "{} clipped of {}", name, label);
                }
            }
            prop_assert_eq!(base.len(), cm.len(), "support-complete pattern count");
            prop_assert_eq!(base.len(), em.len(), "exchange pattern count");
        }
    }
}
