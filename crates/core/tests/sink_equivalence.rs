//! Equivalence of the three ways a mining run can leave the miner —
//! collected (`mine_exact`), parallel-collected (`mine_exact_parallel`),
//! and streamed through a `PatternSink` — across demo datasets, thread
//! counts, and (via proptest) the σ/δ grid. Same pattern set, same
//! supports, same confidences, same counts; streaming only changes where
//! the patterns go, never what they are.

use std::collections::HashMap;

use ftpm_core::{
    mine_exact, mine_exact_parallel, mine_exact_parallel_with_sink, mine_exact_with_sink,
    CollectSink, CountingSink, CsvSink, JsonlSink, MinerConfig, MiningResult, Pattern,
    PatternSink,
};
use ftpm_datagen::{dataport_like, nist_like, random_sequence_database, ukdale_like, Dataset};

fn as_map(result: &MiningResult) -> HashMap<Pattern, (usize, f64)> {
    result
        .patterns
        .iter()
        .map(|p| (p.pattern.clone(), (p.support, p.confidence)))
        .collect()
}

fn assert_same_patterns(a: &MiningResult, b: &MiningResult, context: &str) {
    let ma = as_map(a);
    let mb = as_map(b);
    assert_eq!(
        a.patterns.len(),
        b.patterns.len(),
        "{context}: pattern count"
    );
    for (pat, (supp, conf)) in &ma {
        let (s2, c2) = mb
            .get(pat)
            .unwrap_or_else(|| panic!("{context}: pattern {pat:?} missing"));
        assert_eq!(supp, s2, "{context}: support mismatch for {pat:?}");
        assert!(
            (conf - c2).abs() < 1e-9,
            "{context}: confidence mismatch for {pat:?}"
        );
    }
}

/// Runs every output path on one database/config and cross-checks them.
fn check_all_paths(seq: &ftpm_events::SequenceDatabase, cfg: &MinerConfig, context: &str) {
    let exact = mine_exact(seq, cfg);

    // Explicit CollectSink: the exact miner is itself sink-driven, so
    // this must be the identical result, order included.
    let mut collect = CollectSink::new();
    let stats = mine_exact_with_sink(seq, cfg, &mut collect);
    let collected = collect.into_result(stats);
    assert_eq!(exact.patterns, collected.patterns, "{context}: collect order");
    assert_eq!(exact.graph, collected.graph, "{context}: collect graph");
    assert_eq!(exact.stats, collected.stats, "{context}: collect stats");

    // Counting sink: same totals without materializing anything.
    let mut counting = CountingSink::default();
    mine_exact_with_sink(seq, cfg, &mut counting);
    assert_eq!(counting.patterns(), exact.len(), "{context}: count");
    assert_eq!(
        counting.frequent_events(),
        exact.frequent_events.len(),
        "{context}: L1 count"
    );
    assert_eq!(counting.nodes(), exact.graph.n_nodes(), "{context}: nodes");

    // Writer sinks: one row/line per pattern.
    let mut csv = Vec::new();
    let mut csv_sink = CsvSink::new(&mut csv, seq.registry());
    mine_exact_with_sink(seq, cfg, &mut csv_sink);
    assert_eq!(csv_sink.written() as usize, exact.len(), "{context}: csv rows");
    csv_sink.finish().expect("vec write");
    drop(csv_sink);
    assert_eq!(
        String::from_utf8(csv).expect("utf8").lines().count(),
        exact.len() + 1, // header
        "{context}: csv lines"
    );

    let mut jsonl = Vec::new();
    let mut jsonl_sink = JsonlSink::new(&mut jsonl, seq.registry());
    mine_exact_with_sink(seq, cfg, &mut jsonl_sink);
    jsonl_sink.finish().expect("vec write");
    drop(jsonl_sink);
    let text = String::from_utf8(jsonl).expect("utf8");
    assert_eq!(text.lines().count(), exact.len(), "{context}: jsonl lines");
    for line in text.lines().take(50) {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"support\":"),
            "{context}: malformed jsonl line {line:?}"
        );
    }

    // Parallel, collected and streamed, at several thread counts.
    for threads in [1usize, 2, 4] {
        let par = mine_exact_parallel(seq, cfg, threads);
        assert_same_patterns(&exact, &par, &format!("{context} threads={threads}"));
        assert_eq!(
            par.stats.instance_checks, exact.stats.instance_checks,
            "{context} threads={threads}: same work"
        );

        let mut streamed = CountingSink::default();
        let stats = mine_exact_parallel_with_sink(seq, cfg, threads, &mut streamed);
        assert_eq!(
            streamed.patterns(),
            exact.len(),
            "{context} threads={threads}: streamed count"
        );
        assert_eq!(
            stats.patterns_found.iter().sum::<usize>(),
            exact.len(),
            "{context} threads={threads}: stats count"
        );
    }
}

#[test]
fn all_output_paths_agree_on_demo_datasets() {
    let datasets: [Dataset; 3] = [nist_like(0.008), ukdale_like(0.008), dataport_like(0.01)];
    for data in &datasets {
        let cfg = MinerConfig::new(0.4, 0.4).with_max_events(3);
        check_all_paths(&data.seq, &cfg, &data.name);
    }
}

#[test]
fn top_n_selection_is_stable_across_thread_counts() {
    // `--top N` must be a total order: parallel discovery order is
    // nondeterministic, so support/confidence ties inside the cut used
    // to make the same command print different pattern sets run to run.
    use ftpm_core::{rank_patterns, PatternSort};
    let data = nist_like(0.01);
    let cfg = MinerConfig::new(0.4, 0.4).with_max_events(3);
    let mut selections: Vec<Vec<(ftpm_core::Pattern, usize, f64)>> = Vec::new();
    for threads in [1usize, 2, 4] {
        let result = if threads == 1 {
            mine_exact(&data.seq, &cfg)
        } else {
            mine_exact_parallel(&data.seq, &cfg, threads)
        };
        for sort in [PatternSort::Support, PatternSort::Confidence] {
            let top = rank_patterns(&result, Some(sort), Some(25));
            // The cut must fall inside a tie group for this test to mean
            // anything: the boundary pair agrees on the sort key.
            let full = rank_patterns(&result, Some(sort), None);
            assert!(full.len() > 25, "need enough patterns to truncate");
            let key = |p: &ftpm_core::FrequentPattern| (p.support, p.confidence.to_bits());
            assert_eq!(
                key(full[24]),
                key(full[25]),
                "expected a support/confidence tie at the --top boundary"
            );
            selections.push(
                top.iter()
                    .map(|p| (p.pattern.clone(), p.support, p.confidence))
                    .collect(),
            );
        }
    }
    for pair in selections.chunks(2).collect::<Vec<_>>().windows(2) {
        assert_eq!(pair[0][0], pair[1][0], "--top --sort support selection drifted");
        assert_eq!(pair[0][1], pair[1][1], "--top --sort confidence selection drifted");
    }
}

#[test]
fn parallel_collect_sink_merges_graph_consistently() {
    // The shared-sink merge must keep pattern_indices pointing at the
    // right patterns even though nodes interleave across workers.
    let data = nist_like(0.01);
    let cfg = MinerConfig::new(0.4, 0.4).with_max_events(3);
    let par = mine_exact_parallel(&data.seq, &cfg, 4);
    let mut seen = 0usize;
    for (li, level) in par.graph.levels.iter().enumerate() {
        for node in &level.nodes {
            for &pi in &node.pattern_indices {
                let fp = &par.patterns[pi];
                assert_eq!(fp.pattern.len(), li + 2, "level slot vs pattern length");
                assert_eq!(fp.pattern.events(), &node.events[..], "node events");
                seen += 1;
            }
        }
    }
    assert_eq!(seen, par.len(), "every pattern reachable from the graph");
}

#[test]
fn replay_into_collect_roundtrips() {
    let data = ukdale_like(0.01);
    let cfg = MinerConfig::new(0.4, 0.4).with_max_events(3);
    let exact = mine_exact(&data.seq, &cfg);
    let mut sink = CollectSink::new();
    exact.replay_into(&mut sink);
    sink.finish().expect("collect never fails");
    let replayed = sink.into_result(exact.stats.clone());
    // Replay walks the graph level by level, so the pattern order changes
    // from discovery (depth-first) to level order — but the set, the
    // frequent events, and the graph structure survive the round trip.
    assert_same_patterns(&exact, &replayed, "replay");
    assert_eq!(exact.frequent_events, replayed.frequent_events);
    assert_eq!(exact.graph.n_nodes(), replayed.graph.n_nodes());
    for (le, lr) in exact.graph.levels.iter().zip(&replayed.graph.levels) {
        for (ne, nr) in le.nodes.iter().zip(&lr.nodes) {
            assert_eq!(ne.events, nr.events);
            assert_eq!(ne.support, nr.support);
            let pats_e: Vec<_> = ne.pattern_indices.iter().map(|&i| &exact.patterns[i]).collect();
            let pats_r: Vec<_> = nr.pattern_indices.iter().map(|&i| &replayed.patterns[i]).collect();
            assert_eq!(pats_e, pats_r, "per-node patterns survive replay");
        }
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Over random databases and the whole σ/δ square, the parallel
        /// and streaming paths reproduce the sequential pattern set.
        #[test]
        fn exact_parallel_streaming_agree(
            seed in 0u64..12,
            sigma in 0.15f64..0.9,
            delta in 0.15f64..0.9,
        ) {
            let db = random_sequence_database(seed, 6, 3, 2, 40);
            let cfg = MinerConfig::new(sigma, delta).with_max_events(4);
            let exact = mine_exact(&db, &cfg);
            for threads in [2usize, 4] {
                let par = mine_exact_parallel(&db, &cfg, threads);
                prop_assert_eq!(par.len(), exact.len());
                let (ma, mb) = (as_map(&exact), as_map(&par));
                for (pat, (supp, conf)) in &ma {
                    let (s2, c2) = mb[pat];
                    prop_assert_eq!(*supp, s2);
                    prop_assert!((conf - c2).abs() < 1e-9);
                }
                let mut counting = CountingSink::default();
                mine_exact_parallel_with_sink(&db, &cfg, threads, &mut counting);
                prop_assert_eq!(counting.patterns(), exact.len());
            }
        }
    }
}
