//! Small random sequence databases for property-based and
//! cross-validation testing.

use ftpm_events::{EventInstance, EventRegistry, SequenceDatabase, TemporalSequence};
use ftpm_timeseries::{SymbolId, VariableId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random [`SequenceDatabase`] directly (bypassing the time
/// series pipeline): `n_seqs` sequences over `n_vars` binary variables,
/// with up to `max_instances` instances per variable per sequence inside
/// a `[0, horizon)` tick range.
///
/// Instances may overlap arbitrarily — including across symbols of the
/// same variable — which stresses the relation logic harder than
/// pipeline-produced databases (where same-variable instances abut).
/// Duplicate `(event, interval)` pairs are removed so instance identity
/// stays unambiguous.
pub fn random_sequence_database(
    seed: u64,
    n_seqs: usize,
    n_vars: usize,
    max_instances: usize,
    horizon: i64,
) -> SequenceDatabase {
    assert!(horizon >= 4, "horizon too small");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut registry = EventRegistry::new();
    // Intern all events up front so ids are stable across seeds.
    for v in 0..n_vars as u32 {
        for s in 0..2u16 {
            registry.intern(VariableId(v), SymbolId(s), || {
                format!("V{v}={}", if s == 1 { "On" } else { "Off" })
            });
        }
    }
    let sequences = (0..n_seqs)
        .map(|_| {
            let mut instances = Vec::new();
            for v in 0..n_vars as u32 {
                for s in 0..2u16 {
                    let event = registry.get(VariableId(v), SymbolId(s)).expect("interned");
                    for _ in 0..rng.gen_range(0..=max_instances) {
                        let start = rng.gen_range(0..horizon - 1);
                        let end = rng.gen_range(start + 1..=(start + horizon / 2).min(horizon));
                        instances.push(EventInstance::new(event, start, end));
                    }
                }
            }
            instances.sort_by_key(EventInstance::chrono_key);
            instances.dedup();
            TemporalSequence::new(instances)
        })
        .collect();
    SequenceDatabase::new(registry, sequences)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = random_sequence_database(3, 5, 3, 2, 50);
        let b = random_sequence_database(3, 5, 3, 2, 50);
        assert_eq!(a.sequences().len(), b.sequences().len());
        assert_eq!(a.sequences()[0], b.sequences()[0]);
    }

    #[test]
    fn no_duplicate_instances() {
        let db = random_sequence_database(9, 10, 4, 4, 30);
        for seq in db.sequences() {
            let mut seen = std::collections::HashSet::new();
            for inst in seq.instances() {
                assert!(seen.insert((inst.event, inst.interval)), "duplicate {inst:?}");
            }
        }
    }

    #[test]
    fn instances_chronological() {
        let db = random_sequence_database(4, 8, 3, 3, 40);
        for seq in db.sequences() {
            let keys: Vec<_> = seq.instances().iter().map(|i| i.chrono_key()).collect();
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
