//! Smart-city simulator: weather condition series driving vehicle
//! collision series, like the paper's NYC Open Data weather + collision
//! datasets. Weather variables are smooth signals around shared latent
//! factors (so within-factor NMI is high); collision variables respond to
//! the extremes of one factor with a one-step lag (so weather→collision
//! temporal patterns such as the paper's P12–P17 exist).

use ftpm_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the smart-city simulator.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Number of weather variables (temperature/wind/visibility/… style).
    pub n_weather: usize,
    /// Number of collision variables (injury/death counts per group).
    pub n_collision: usize,
    /// Number of simulated days.
    pub days: usize,
    /// Sampling step in minutes (hourly by default).
    pub step_minutes: i64,
    /// Number of latent weather factors; weather variables attach to a
    /// factor round-robin and collision variables respond to the factor
    /// of the same index modulo the factor count.
    pub n_factors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            n_weather: 12,
            n_collision: 6,
            days: 60,
            step_minutes: 60,
            n_factors: 4,
            seed: 11,
        }
    }
}

/// Generates weather and collision time series (weather first, then
/// collision). Weather values are continuous; collision values are small
/// non-negative counts. Symbolize weather with 5 quantile states and
/// collisions with 4, as the paper does (Section VI-A2).
pub fn generate_city(cfg: &CityConfig) -> Vec<TimeSeries> {
    assert!(cfg.n_weather > 0 && cfg.n_collision > 0 && cfg.days > 0 && cfg.n_factors > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let steps_per_day = (24 * 60 / cfg.step_minutes) as usize;
    let n_steps = steps_per_day * cfg.days;

    // Latent factors: AR(1) random walks with a daily cycle.
    let factors: Vec<Vec<f64>> = (0..cfg.n_factors)
        .map(|f| {
            let phase = f as f64 * 1.3;
            let mut value = 0.0f64;
            (0..n_steps)
                .map(|s| {
                    let daily = ((s as f64 / steps_per_day as f64) * std::f64::consts::TAU
                        + phase)
                        .sin();
                    value = 0.85 * value + rng.gen_range(-1.0..1.0);
                    value + 2.0 * daily
                })
                .collect()
        })
        .collect();

    let mut out = Vec::with_capacity(cfg.n_weather + cfg.n_collision);
    for w in 0..cfg.n_weather {
        let factor = &factors[w % cfg.n_factors];
        let gain = rng.gen_range(0.8..1.2);
        let values: Vec<f64> = factor
            .iter()
            .map(|&x| gain * x + rng.gen_range(-0.4..0.4))
            .collect();
        out.push(TimeSeries::new(
            format!("weather_{w:02}"),
            0,
            cfg.step_minutes,
            values,
        ));
    }

    // Collision counts spike one step after their factor is extreme.
    for c in 0..cfg.n_collision {
        let factor = &factors[c % cfg.n_factors];
        let values: Vec<f64> = (0..n_steps)
            .map(|s| {
                let driver = if s == 0 { factor[0] } else { factor[s - 1] };
                let extremeness = (driver.abs() - 2.0).max(0.0);
                let base: f64 = rng.gen_range(0.0..2.0);
                (base + 3.0 * extremeness + rng.gen_range(0.0f64..0.5)).floor()
            })
            .collect();
        out.push(TimeSeries::new(
            format!("collision_{c:02}"),
            0,
            cfg.step_minutes,
            values,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let cfg = CityConfig {
            days: 5,
            ..CityConfig::default()
        };
        let a = generate_city(&cfg);
        let b = generate_city(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.n_weather + cfg.n_collision);
        assert_eq!(a[0].len(), 5 * 24);
    }

    #[test]
    fn collision_counts_nonnegative_integers() {
        let series = generate_city(&CityConfig {
            days: 10,
            ..CityConfig::default()
        });
        for s in series.iter().filter(|s| s.name().starts_with("collision")) {
            for &v in s.values() {
                assert!(v >= 0.0 && v.fract() == 0.0, "{v} in {}", s.name());
            }
        }
    }

    #[test]
    fn same_factor_weather_vars_correlate() {
        use ftpm_mi::normalized_mutual_information;
        use ftpm_timeseries::{QuantileSymbolizer, SymbolicSeries};
        let cfg = CityConfig {
            days: 90,
            ..CityConfig::default()
        };
        let series = generate_city(&cfg);
        let labels = ["VL", "L", "M", "H", "VH"];
        let sym: Vec<SymbolicSeries> = series[..cfg.n_weather]
            .iter()
            .map(|ts| {
                let q = QuantileSymbolizer::from_data(labels, ts.values());
                SymbolicSeries::from_time_series(ts, &q)
            })
            .collect();
        // weather_00 and weather_04 share factor 0; weather_01 uses factor 1.
        let same = normalized_mutual_information(&sym[0], &sym[4]);
        let diff = normalized_mutual_information(&sym[0], &sym[1]);
        assert!(
            same > diff,
            "same-factor NMI {same} should exceed cross-factor {diff}"
        );
    }
}
