//! Smart-home energy simulator: appliances activated in correlated
//! groups following daily routines, producing watt-level time series like
//! the NIST/UKDALE/DataPort smart-meter data.

use ftpm_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the energy simulator.
#[derive(Debug, Clone)]
pub struct EnergyConfig {
    /// Number of appliances (variables).
    pub n_appliances: usize,
    /// Number of simulated days.
    pub days: usize,
    /// Sampling step in minutes (the paper's smart meters report every
    /// few minutes; 5 is a realistic default).
    pub step_minutes: i64,
    /// Appliances per correlated routine group. Groups activate together;
    /// appliances in different groups are (nearly) independent.
    pub group_size: usize,
    /// Probability that a group member joins a given activation of its
    /// group — controls how tight the within-group correlation is.
    pub participation: f64,
    /// Probability per day of a spurious solo activation of an appliance
    /// — uncorrelated noise.
    pub noise_activation: f64,
    /// RNG seed; identical configs generate identical data.
    pub seed: u64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            n_appliances: 24,
            days: 30,
            step_minutes: 5,
            group_size: 4,
            participation: 0.9,
            noise_activation: 0.3,
            seed: 7,
        }
    }
}

/// Generates appliance power-draw time series (watts).
///
/// Each group of appliances has two characteristic activation times per
/// day in distinct occupancy blocks (e.g. a "morning routine" around
/// 06:30 plus a midday one, with per-day jitter). During an activation,
/// participating appliances switch on in a staggered cascade — the first
/// member contains or overlaps the later ones — which is exactly the kind
/// of structure the paper's example patterns (P1–P11) describe. Off
/// periods draw a few milliwatts of standby noise, below the paper's
/// 0.05 W symbolization threshold.
pub fn generate_energy(cfg: &EnergyConfig) -> Vec<TimeSeries> {
    assert!(cfg.n_appliances > 0 && cfg.days > 0 && cfg.group_size > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let steps_per_day = (24 * 60 / cfg.step_minutes) as usize;
    let n_steps = steps_per_day * cfg.days;
    let n_groups = cfg.n_appliances.div_ceil(cfg.group_size);

    // The household has a shared daily rhythm: activity happens inside
    // three occupancy blocks (morning / afternoon / evening) and nothing
    // runs overnight. Every group draws its routine anchors inside two
    // of these blocks. This layering mirrors real smart-home data and
    // gives the MI structure A-HTPGM relies on: same-group pairs
    // correlate most, same-block pairs moderately, and the shared
    // off-hours keep co-occurring events and correlated series aligned.
    // The blocks deliberately sit in distinct quarters of the day: with
    // the common 6-hour analysis window, a group whose two blocks share
    // a window can never exceed ~25% relative support no matter how
    // tightly its appliances correlate.
    const BLOCKS: [(i64, i64); 3] = [
        (6 * 60, 9 * 60),
        (13 * 60, 16 * 60),
        (18 * 60, 22 * 60),
    ];
    // Two anchors per group, in distinct occupancy blocks. Both are
    // always present: a routine firing only once per day sits in 1 of
    // the 4 daily 6-hour windows (~25% relative support, before the
    // participation draw), which is below any useful σ and would leave
    // group structure undetectable — two anchors keep within-group
    // co-occurrence around 40% of windows. Anchors stay at least the
    // maximal day jitter (15) above the block's lower edge: the edges
    // coincide with 6-hour window boundaries, and an activation pushed
    // across a boundary gets its starts clipped to the window edge,
    // destroying the Contain relation the cascade is built to produce.
    let routines: Vec<[i64; 2]> = (0..n_groups)
        .map(|g| {
            // Rotate block pairs so consecutive groups share at most one
            // block: g=0 → {morning, afternoon}, g=1 → {afternoon,
            // evening}, g=2 → {evening, morning}. (A formula that hands
            // two groups the same pair makes their leaders — both
            // long-running and anchored in the same narrow ranges —
            // correlate more strongly across groups than within.)
            let block = BLOCKS[g % BLOCKS.len()];
            let block2 = BLOCKS[(g + 1) % BLOCKS.len()];
            [
                rng.gen_range(block.0 + 15..block.1 - 90),
                rng.gen_range(block2.0 + 15..block2.1 - 90),
            ]
        })
        .collect();

    // on[i][step] — appliance i drawing power at this step.
    let mut on = vec![vec![false; n_steps]; cfg.n_appliances];
    let turn_on = |on: &mut Vec<Vec<bool>>, appliance: usize, day: usize, start_min: i64, dur_min: i64| {
        let day_base = day as i64 * 24 * 60;
        let from = ((day_base + start_min.max(0)) / cfg.step_minutes) as usize;
        let to = ((day_base + (start_min + dur_min).min(24 * 60)) / cfg.step_minutes) as usize;
        for slot in &mut on[appliance][from..to.min(n_steps)] {
            *slot = true;
        }
    };

    for day in 0..cfg.days {
        for (g, anchors) in routines.iter().enumerate() {
            for &anchor in anchors {
                // Day-level jitter of the routine as a whole.
                let jitter = rng.gen_range(-15i64..=15);
                let members = (g * cfg.group_size)
                    ..((g + 1) * cfg.group_size).min(cfg.n_appliances);
                // Staggered nested cascade: whoever participates first
                // becomes the leader; every later member starts strictly
                // after the previous one and ends strictly inside the
                // leader's interval, so the leader Contains every
                // follower. Keeping the relation type fixed matters: if
                // followers could start before the leader or outlive it,
                // each activation would randomly land on Contain or
                // Overlap and the per-relation support of the group
                // pattern would drop to roughly half the group's
                // co-occurrence rate.
                let mut outer_end: Option<i64> = None;
                let mut last_start = i64::MIN;
                for (rank, appliance) in members.enumerate() {
                    if !rng.gen_bool(cfg.participation) {
                        continue;
                    }
                    // Each per-rank step is drawn independently, so clamp
                    // against the previous participant: a later rank must
                    // never start at or before an earlier one (equal or
                    // inverted starts have no relation under ε = 0).
                    let start = (anchor + jitter + (rank as i64) * rng.gen_range(5i64..=15))
                        .max(last_start + 5);
                    last_start = start;
                    let mut dur = rng.gen_range(15i64..=90) - (rank as i64) * 5;
                    match outer_end {
                        None => {
                            // The leader runs long enough that the last
                            // member (staggered by at most 15 ticks per
                            // rank) still fits inside with room to spare,
                            // whatever the configured group size.
                            dur = dur.max(15 * cfg.group_size as i64 + 15);
                            outer_end = Some(start + dur);
                        }
                        Some(end) => dur = dur.clamp(10, (end - start - 2).max(10)),
                    }
                    turn_on(&mut on, appliance, day, start, dur);
                }
            }
        }
        // Uncorrelated solo activations, still inside occupancy hours.
        for appliance in 0..cfg.n_appliances {
            if rng.gen_bool(cfg.noise_activation) {
                let block = BLOCKS[rng.gen_range(0..BLOCKS.len())];
                let start = rng.gen_range(block.0..block.1 - 45);
                let dur = rng.gen_range(10..=45);
                turn_on(&mut on, appliance, day, start, dur);
            }
        }
    }

    (0..cfg.n_appliances)
        .map(|i| {
            let watts: Vec<f64> = (0..n_steps)
                .map(|s| {
                    if on[i][s] {
                        rng.gen_range(40.0..250.0)
                    } else {
                        rng.gen_range(0.0..0.02) // standby, below threshold
                    }
                })
                .collect();
            TimeSeries::new(format!("appliance_{i:02}"), 0, cfg.step_minutes, watts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = EnergyConfig {
            n_appliances: 6,
            days: 3,
            ..EnergyConfig::default()
        };
        let a = generate_energy(&cfg);
        let b = generate_energy(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let base = EnergyConfig {
            n_appliances: 6,
            days: 3,
            ..EnergyConfig::default()
        };
        let a = generate_energy(&base);
        let b = generate_energy(&EnergyConfig { seed: 8, ..base });
        assert_ne!(a, b);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = EnergyConfig {
            n_appliances: 5,
            days: 2,
            step_minutes: 10,
            ..EnergyConfig::default()
        };
        let series = generate_energy(&cfg);
        assert_eq!(series.len(), 5);
        for s in &series {
            assert_eq!(s.len(), 2 * 24 * 6);
            assert_eq!(s.step(), 10);
        }
    }

    #[test]
    fn appliances_actually_activate() {
        let series = generate_energy(&EnergyConfig::default());
        for s in &series {
            let on_steps = s.values().iter().filter(|&&v| v >= 0.05).count();
            assert!(on_steps > 0, "{} never turns on", s.name());
            assert!(
                on_steps < s.len(),
                "{} never turns off",
                s.name()
            );
        }
    }

    #[test]
    fn group_members_correlate_more_than_strangers() {
        use ftpm_mi::normalized_mutual_information;
        use ftpm_timeseries::{SymbolicSeries, ThresholdSymbolizer};
        let cfg = EnergyConfig {
            n_appliances: 8,
            days: 60,
            group_size: 4,
            noise_activation: 0.1,
            ..EnergyConfig::default()
        };
        let series = generate_energy(&cfg);
        let symbolizer = ThresholdSymbolizer::new(0.05);
        let sym: Vec<SymbolicSeries> = series
            .iter()
            .map(|ts| SymbolicSeries::from_time_series(ts, &symbolizer))
            .collect();
        // 0 and 1 share a group; 0 and 4 do not (groups of 4).
        let within = normalized_mutual_information(&sym[0], &sym[1]);
        let across = normalized_mutual_information(&sym[0], &sym[4]);
        assert!(
            within > across,
            "within-group NMI {within} should exceed cross-group {across}"
        );
    }
}
