//! Smart-home energy simulator: appliances activated in correlated
//! groups following daily routines, producing watt-level time series like
//! the NIST/UKDALE/DataPort smart-meter data.

use ftpm_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the energy simulator.
#[derive(Debug, Clone)]
pub struct EnergyConfig {
    /// Number of appliances (variables).
    pub n_appliances: usize,
    /// Number of simulated days.
    pub days: usize,
    /// Sampling step in minutes (the paper's smart meters report every
    /// few minutes; 5 is a realistic default).
    pub step_minutes: i64,
    /// Appliances per correlated routine group. Groups activate together;
    /// appliances in different groups are (nearly) independent.
    pub group_size: usize,
    /// Probability that a group member joins a given activation of its
    /// group — controls how tight the within-group correlation is.
    pub participation: f64,
    /// Probability per day of a spurious solo activation of an appliance
    /// — uncorrelated noise.
    pub noise_activation: f64,
    /// RNG seed; identical configs generate identical data.
    pub seed: u64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            n_appliances: 24,
            days: 30,
            step_minutes: 5,
            group_size: 4,
            participation: 0.9,
            noise_activation: 0.3,
            seed: 7,
        }
    }
}

/// Generates appliance power-draw time series (watts).
///
/// Each group of appliances has one or two characteristic activation
/// times per day (a "morning routine" around 06:30 and/or an "evening
/// routine" around 18:00, with per-day jitter). During an activation,
/// participating appliances switch on in a staggered cascade — the first
/// member contains or overlaps the later ones — which is exactly the kind
/// of structure the paper's example patterns (P1–P11) describe. Off
/// periods draw a few milliwatts of standby noise, below the paper's
/// 0.05 W symbolization threshold.
pub fn generate_energy(cfg: &EnergyConfig) -> Vec<TimeSeries> {
    assert!(cfg.n_appliances > 0 && cfg.days > 0 && cfg.group_size > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let steps_per_day = (24 * 60 / cfg.step_minutes) as usize;
    let n_steps = steps_per_day * cfg.days;
    let n_groups = cfg.n_appliances.div_ceil(cfg.group_size);

    // The household has a shared daily rhythm: activity happens inside
    // three occupancy blocks (morning / midday / evening) and nothing
    // runs overnight. Every group draws its routine anchors inside one
    // or two of these blocks. This layering mirrors real smart-home
    // data and gives the MI structure A-HTPGM relies on: same-group
    // pairs correlate most, same-block pairs moderately, and the shared
    // off-hours keep co-occurring events and correlated series aligned.
    const BLOCKS: [(i64, i64); 3] = [
        (6 * 60, 9 * 60),
        (11 * 60 + 30, 13 * 60 + 30),
        (17 * 60, 22 * 60),
    ];
    struct Routine {
        anchors: Vec<i64>,
    }
    let routines: Vec<Routine> = (0..n_groups)
        .map(|g| {
            let block = BLOCKS[g % BLOCKS.len()];
            let mut anchors = vec![rng.gen_range(block.0..block.1 - 90)];
            if rng.gen_bool(0.5) {
                let block2 = BLOCKS[(g + 1 + (g % 2)) % BLOCKS.len()];
                anchors.push(rng.gen_range(block2.0..block2.1 - 90));
            }
            Routine { anchors }
        })
        .collect();

    // on[i][step] — appliance i drawing power at this step.
    let mut on = vec![vec![false; n_steps]; cfg.n_appliances];
    let turn_on = |on: &mut Vec<Vec<bool>>, appliance: usize, day: usize, start_min: i64, dur_min: i64| {
        let day_base = day as i64 * 24 * 60;
        let from = ((day_base + start_min.max(0)) / cfg.step_minutes) as usize;
        let to = ((day_base + (start_min + dur_min).min(24 * 60)) / cfg.step_minutes) as usize;
        for slot in &mut on[appliance][from..to.min(n_steps)] {
            *slot = true;
        }
    };

    for day in 0..cfg.days {
        for (g, routine) in routines.iter().enumerate() {
            for &anchor in &routine.anchors {
                // Day-level jitter of the routine as a whole.
                let jitter = rng.gen_range(-15..=15);
                let members = (g * cfg.group_size)
                    ..((g + 1) * cfg.group_size).min(cfg.n_appliances);
                for (rank, appliance) in members.enumerate() {
                    if !rng.gen_bool(cfg.participation) {
                        continue;
                    }
                    // Staggered cascade: member `rank` starts a bit after
                    // the group leader and runs for a shorter time, so the
                    // leader Contains / Overlaps the others.
                    let start = anchor + jitter + (rank as i64) * rng.gen_range(5..=15);
                    let dur = rng.gen_range(15..=90) - (rank as i64) * 5;
                    turn_on(&mut on, appliance, day, start, dur.max(10));
                }
            }
        }
        // Uncorrelated solo activations, still inside occupancy hours.
        for appliance in 0..cfg.n_appliances {
            if rng.gen_bool(cfg.noise_activation) {
                let block = BLOCKS[rng.gen_range(0..BLOCKS.len())];
                let start = rng.gen_range(block.0..block.1 - 45);
                let dur = rng.gen_range(10..=45);
                turn_on(&mut on, appliance, day, start, dur);
            }
        }
    }

    (0..cfg.n_appliances)
        .map(|i| {
            let watts: Vec<f64> = (0..n_steps)
                .map(|s| {
                    if on[i][s] {
                        rng.gen_range(40.0..250.0)
                    } else {
                        rng.gen_range(0.0..0.02) // standby, below threshold
                    }
                })
                .collect();
            TimeSeries::new(format!("appliance_{i:02}"), 0, cfg.step_minutes, watts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = EnergyConfig {
            n_appliances: 6,
            days: 3,
            ..EnergyConfig::default()
        };
        let a = generate_energy(&cfg);
        let b = generate_energy(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let base = EnergyConfig {
            n_appliances: 6,
            days: 3,
            ..EnergyConfig::default()
        };
        let a = generate_energy(&base);
        let b = generate_energy(&EnergyConfig { seed: 8, ..base });
        assert_ne!(a, b);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = EnergyConfig {
            n_appliances: 5,
            days: 2,
            step_minutes: 10,
            ..EnergyConfig::default()
        };
        let series = generate_energy(&cfg);
        assert_eq!(series.len(), 5);
        for s in &series {
            assert_eq!(s.len(), 2 * 24 * 6);
            assert_eq!(s.step(), 10);
        }
    }

    #[test]
    fn appliances_actually_activate() {
        let series = generate_energy(&EnergyConfig::default());
        for s in &series {
            let on_steps = s.values().iter().filter(|&&v| v >= 0.05).count();
            assert!(on_steps > 0, "{} never turns on", s.name());
            assert!(
                on_steps < s.len(),
                "{} never turns off",
                s.name()
            );
        }
    }

    #[test]
    fn group_members_correlate_more_than_strangers() {
        use ftpm_mi::normalized_mutual_information;
        use ftpm_timeseries::{SymbolicSeries, ThresholdSymbolizer};
        let cfg = EnergyConfig {
            n_appliances: 8,
            days: 60,
            group_size: 4,
            noise_activation: 0.1,
            ..EnergyConfig::default()
        };
        let series = generate_energy(&cfg);
        let symbolizer = ThresholdSymbolizer::new(0.05);
        let sym: Vec<SymbolicSeries> = series
            .iter()
            .map(|ts| SymbolicSeries::from_time_series(ts, &symbolizer))
            .collect();
        // 0 and 1 share a group; 0 and 4 do not (groups of 4).
        let within = normalized_mutual_information(&sym[0], &sym[1]);
        let across = normalized_mutual_information(&sym[0], &sym[4]);
        assert!(
            within > across,
            "within-group NMI {within} should exceed cross-group {across}"
        );
    }
}
