#![forbid(unsafe_code)]
//! Seeded synthetic dataset generators.
//!
//! The paper evaluates on four real datasets (Table IV): NIST \[19\],
//! UKDALE \[20\], DataPort \[21\] (smart-home energy) and the NYC Open Data
//! weather/collision data \[22\]. Those datasets are not redistributable
//! here, so this crate simulates them: deterministic, seeded generators
//! that match the published characteristics (number of sequences,
//! variables, distinct events, average instances per sequence) and — more
//! importantly — reproduce the two structural properties every experiment
//! relies on:
//!
//! 1. **temporal co-activation**: groups of appliances used together in
//!    daily routines, and weather extremes followed by collision spikes,
//!    so that frequent temporal patterns exist to be mined;
//! 2. **MI separation**: series inside a group share information, series
//!    across groups do not, so the correlation graph of A-HTPGM actually
//!    separates promising from unpromising series.
//!
//! See DESIGN.md ("Substitutions") for the full rationale.

mod city;
mod dataset;
mod energy;
mod random;

pub use city::{generate_city, CityConfig};
pub use dataset::{dataport_like, nist_like, smartcity_like, ukdale_like, Dataset};
pub use energy::{generate_energy, EnergyConfig};
pub use random::random_sequence_database;
