//! Ready-made dataset presets mirroring the paper's Table IV, at a
//! configurable scale.
//!
//! | dataset    | #sequences | #variables | #distinct events |
//! |------------|-----------:|-----------:|-----------------:|
//! | NIST       | 1460       | 72         | 144              |
//! | UKDALE     | 1520       | 53         | 106              |
//! | DataPort   | 1210       | 21         | 42               |
//! | Smart City | 1216       | 59         | 266              |
//!
//! `scale ∈ (0, 1]` shrinks the sequence count (days simulated); the
//! variable count is kept so the search-space shape is preserved. The
//! Fig 12/13 attribute-scalability experiments subset variables through
//! [`Dataset::project_variables`].

use ftpm_events::{to_sequence_database, SequenceDatabase, SplitConfig};
use ftpm_timeseries::{
    QuantileSymbolizer, SymbolicDatabase, SymbolicSeries, ThresholdSymbolizer, VariableId,
};

use crate::city::{generate_city, CityConfig};
use crate::energy::{generate_energy, EnergyConfig};

/// A generated dataset: the symbolic database (input to MI / A-HTPGM)
/// and the temporal sequence database (input to all miners), plus the
/// split geometry used.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name, e.g. `"nist-like"`.
    pub name: String,
    /// The symbolic database `D_SYB`.
    pub syb: SymbolicDatabase,
    /// The temporal sequence database `D_SEQ`.
    pub seq: SequenceDatabase,
    /// The split used to produce `seq` from `syb`.
    pub split: SplitConfig,
}

impl Dataset {
    /// Rebuilds the dataset restricted to the first `n_vars` variables —
    /// the x-axis of the Fig 12/13 attribute-scalability experiments.
    pub fn project_variables(&self, n_vars: usize) -> Dataset {
        let vars: Vec<VariableId> = (0..n_vars.min(self.syb.n_variables()) as u32)
            .map(VariableId)
            .collect();
        let syb = self.syb.project(&vars);
        let seq = to_sequence_database(&syb, self.split);
        Dataset {
            name: format!("{}[{} vars]", self.name, vars.len()),
            syb,
            seq,
            split: self.split,
        }
    }

    /// A copy keeping only the first `n` sequences — the x-axis of the
    /// Fig 10/11 data-scalability experiments.
    pub fn take_sequences(&self, n: usize) -> Dataset {
        Dataset {
            name: format!("{}[{} seqs]", self.name, n),
            syb: self.syb.clone(),
            seq: self.seq.take_sequences(n),
            split: self.split,
        }
    }
}

fn energy_dataset(
    name: &str,
    n_appliances: usize,
    full_days: usize,
    scale: f64,
    seed: u64,
) -> Dataset {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let days = ((full_days as f64 * scale).ceil() as usize).max(2);
    let cfg = EnergyConfig {
        n_appliances,
        days,
        seed,
        ..EnergyConfig::default()
    };
    let series = generate_energy(&cfg);
    let n_steps = series[0].len();
    let mut syb = SymbolicDatabase::new(0, cfg.step_minutes, n_steps);
    // Paper Section VI-A2: On iff value >= 0.05.
    let symbolizer = ThresholdSymbolizer::new(0.05);
    for ts in &series {
        syb.add_time_series(ts, &symbolizer);
    }
    // Four 6-hour sequences per day (step 5 min ⇒ 72 steps per window).
    let split = SplitConfig::new(6 * 60, 0);
    let seq = to_sequence_database(&syb, split);
    Dataset {
        name: name.to_owned(),
        syb,
        seq,
        split,
    }
}

/// NIST-like smart-home dataset: 72 binary appliances, 4 sequences per
/// day, 1460 sequences at `scale = 1.0`.
pub fn nist_like(scale: f64) -> Dataset {
    energy_dataset("nist-like", 72, 365, scale, 0x4e157)
}

/// UKDALE-like smart-home dataset: 53 binary appliances, ~1520 sequences
/// at `scale = 1.0`.
pub fn ukdale_like(scale: f64) -> Dataset {
    energy_dataset("ukdale-like", 53, 380, scale, 0x0cda1e)
}

/// DataPort-like smart-home dataset: 21 binary appliances, ~1210
/// sequences at `scale = 1.0`.
pub fn dataport_like(scale: f64) -> Dataset {
    energy_dataset("dataport-like", 21, 303, scale, 0xda7a9027)
}

/// Smart-city-like dataset: 59 variables (weather with 5 states,
/// collisions with 4 — 266 distinct events), 2 sequences per day, ~1216
/// sequences at `scale = 1.0`.
pub fn smartcity_like(scale: f64) -> Dataset {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let full_days = 608usize;
    let days = ((full_days as f64 * scale).ceil() as usize).max(2);
    let cfg = CityConfig {
        n_weather: 38,
        n_collision: 21,
        days,
        seed: 0x5c17,
        ..CityConfig::default()
    };
    let series = generate_city(&cfg);
    let n_steps = series[0].len();
    let mut syb = SymbolicDatabase::new(0, cfg.step_minutes, n_steps);
    let weather_labels = ["VeryLow", "Low", "Mild", "High", "VeryHigh"];
    let collision_labels = ["None", "Low", "Medium", "High"];
    for ts in &series {
        if ts.name().starts_with("weather") {
            let q = QuantileSymbolizer::from_data(weather_labels, ts.values());
            syb.push(SymbolicSeries::from_time_series(ts, &q));
        } else {
            // Collision counts are heavily zero-inflated; quantiles would
            // collide, so use fixed count breakpoints.
            let q = QuantileSymbolizer::with_breaks(collision_labels, vec![1.0, 3.0, 6.0]);
            syb.push(SymbolicSeries::from_time_series(ts, &q));
        }
    }
    // Two 12-hour sequences per day (hourly steps ⇒ 12 steps per window).
    let split = SplitConfig::new(12 * 60, 0);
    let seq = to_sequence_database(&syb, split);
    Dataset {
        name: "smartcity-like".to_owned(),
        syb,
        seq,
        split,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_like_shape_at_small_scale() {
        let d = nist_like(0.02); // ~8 days -> ~32 sequences
        assert_eq!(d.syb.n_variables(), 72);
        assert!(d.seq.len() >= 28, "got {} sequences", d.seq.len());
        // Binary appliances: at most 144 distinct events.
        assert!(d.seq.registry().len() <= 144);
    }

    #[test]
    fn smartcity_like_has_multistate_events() {
        let d = smartcity_like(0.02);
        assert_eq!(d.syb.n_variables(), 59);
        // 38 weather x 5 + 21 collision x 4 = 274 possible; most observed.
        assert!(
            d.seq.registry().len() > 150,
            "only {} distinct events",
            d.seq.registry().len()
        );
    }

    #[test]
    fn project_variables_shrinks_registry() {
        let d = dataport_like(0.02);
        let half = d.project_variables(10);
        assert_eq!(half.syb.n_variables(), 10);
        assert!(half.seq.registry().len() <= 20);
        assert_eq!(half.seq.len(), d.seq.len());
    }

    #[test]
    fn take_sequences_preserves_registry() {
        let d = dataport_like(0.02);
        let sub = d.take_sequences(5);
        assert_eq!(sub.seq.len(), 5);
        assert_eq!(sub.seq.registry().len(), d.seq.registry().len());
    }

    #[test]
    fn average_instances_per_sequence_is_plausible() {
        // Table IV reports 126-163 instances/sequence on the full
        // datasets; the simulators should land in the same order of
        // magnitude.
        let d = dataport_like(0.05);
        let total: usize = d.seq.sequences().iter().map(|s| s.len()).sum();
        let avg = total as f64 / d.seq.len() as f64;
        assert!(
            (20.0..400.0).contains(&avg),
            "avg instances/sequence = {avg}"
        );
    }
}
