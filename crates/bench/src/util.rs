//! Shared harness plumbing: timing, miner dispatch, grid/row printing and
//! CSV output.

use std::time::{Duration, Instant};

use ftpm_core::{MinerConfig, MiningResult};
use ftpm_datagen::Dataset;

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let started = Instant::now();
    let out = f();
    (out, started.elapsed())
}

/// The five miners of the Table VII/VIII comparisons, in the paper's
/// presentation order, plus A-HTPGM at a given correlation-graph density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    HDfs,
    IEMiner,
    TPMiner,
    EHtpgm,
    /// Multi-threaded E-HTPGM with this many worker threads — the
    /// `--threads` path of the CLI, for the threads-scaling experiment.
    EHtpgmPar(usize),
    /// A-HTPGM keeping this fraction of correlation-graph edges
    /// (Def 5.6; the paper's "A-HTPGM (80%)" etc.).
    AHtpgm(f64),
}

impl Method {
    /// The paper's standard line-up.
    pub fn lineup() -> Vec<Method> {
        vec![
            Method::HDfs,
            Method::IEMiner,
            Method::TPMiner,
            Method::EHtpgm,
            Method::AHtpgm(0.8),
            Method::AHtpgm(0.6),
            Method::AHtpgm(0.4),
            Method::AHtpgm(0.2),
        ]
    }

    /// Display label matching the paper's tables.
    pub fn label(&self) -> String {
        match self {
            Method::HDfs => "H-DFS".into(),
            Method::IEMiner => "IEMiner".into(),
            Method::TPMiner => "TPMiner".into(),
            Method::EHtpgm => "E-HTPGM".into(),
            Method::EHtpgmPar(threads) => format!("E-HTPGM ({threads}thr)"),
            Method::AHtpgm(d) => format!("A-HTPGM ({:.0}%)", d * 100.0),
        }
    }

    /// Runs the miner on a dataset.
    pub fn run(&self, data: &Dataset, cfg: &MinerConfig) -> MiningResult {
        match self {
            Method::HDfs => ftpm_baselines::mine_hdfs(&data.seq, cfg),
            Method::IEMiner => ftpm_baselines::mine_ieminer(&data.seq, cfg),
            Method::TPMiner => ftpm_baselines::mine_tpminer(&data.seq, cfg),
            Method::EHtpgm => ftpm_core::mine_exact(&data.seq, cfg),
            Method::EHtpgmPar(threads) => {
                ftpm_core::mine_exact_parallel(&data.seq, cfg, *threads)
            }
            Method::AHtpgm(density) => {
                ftpm_core::mine_approximate_with_density(&data.syb, &data.seq, *density, cfg)
                    .result
            }
        }
    }
}

/// Harness options shared by every experiment binary: positional args
/// `[scale] [max_events]`.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Dataset scale in (0, 1] relative to the paper's full size.
    pub scale: f64,
    /// Pattern-length cap, to keep the low-σ cells bounded.
    pub max_events: usize,
}

impl Opts {
    /// Parses `[scale] [max_events]` from argv with the given defaults.
    pub fn from_args(default_scale: f64, default_max_events: usize) -> Opts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Opts {
            scale: args
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(default_scale),
            max_events: args
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(default_max_events),
        }
    }
}

/// A simple results table that prints aligned rows and can be saved as
/// CSV under `results/`.
pub struct Report {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report with the experiment id (e.g. `"table7"`).
    pub fn new(name: &str, header: &[&str]) -> Self {
        Report {
            name: name.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Prints the table and writes `results/<name>.csv`.
    pub fn finish(self) {
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }
        let _ = std::fs::create_dir_all("results");
        let csv_path = format!("results/{}.csv", self.name);
        let mut csv = self.header.join(",") + "\n";
        for r in &self.rows {
            csv.push_str(&r.join(","));
            csv.push('\n');
        }
        match std::fs::write(&csv_path, csv) {
            Ok(()) => println!("\nwrote {csv_path}"),
            Err(e) => eprintln!("could not write {csv_path}: {e}"),
        }
    }
}

/// Formats a duration in seconds with sensible precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}
