//! A counting global allocator for the Table VIII memory-usage
//! experiments: tracks live bytes and the high-water mark, so each mining
//! run's peak memory can be reported deterministically (the paper
//! measures process memory; peak live heap is the same quantity without
//! allocator/OS noise).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static COUNT: AtomicUsize = AtomicUsize::new(0);

/// Install with `#[global_allocator]` in a harness binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ftpm_bench::TrackingAllocator = ftpm_bench::TrackingAllocator;
/// ```
pub struct TrackingAllocator;

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let live = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
            COUNT.fetch_add(1, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let live = CURRENT.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Bytes currently allocated.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live size. Call immediately
/// before the measured region.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak bytes allocated while running `f`, measured from a fresh
/// high-water mark, minus the live bytes at entry — i.e. the extra memory
/// the workload needed.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = current_bytes();
    reset_peak();
    let out = f();
    (out, peak_bytes().saturating_sub(baseline))
}

/// Total allocation events (successful `alloc` calls) since process
/// start. Reallocs and frees are not counted — this is the "how many
/// times did the workload hit the allocator" metric the intern-speedup
/// gate compares.
pub fn alloc_count() -> usize {
    COUNT.load(Ordering::Relaxed)
}

/// Allocation events performed while running `f` — the per-workload
/// delta of [`alloc_count`]. Only meaningful in a single-threaded
/// region: concurrent allocations from other threads land in the same
/// counter.
pub fn measure_allocs<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = alloc_count();
    let out = f();
    (out, alloc_count() - before)
}
