#![deny(unsafe_code)]
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (Section VI). See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! Each experiment has a `repro_*` binary (printing paper-style rows and
//! writing `results/*.csv`) and, for the runtime-critical ones, a
//! Criterion bench under `benches/`.

// The allocation-tracking harness implements `GlobalAlloc`, which is
// inherently unsafe; it is the single unsafe-permitted module in the
// workspace (rule R4 of ftpm-analyzer).
#[allow(unsafe_code)]
mod alloc_track;
pub mod experiments;
mod util;

pub use alloc_track::{
    alloc_count, current_bytes, measure_allocs, measure_peak, peak_bytes, reset_peak,
    TrackingAllocator,
};
pub use util::{secs, time, Method, Opts, Report};
