//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (Section VI). See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! Each experiment has a `repro_*` binary (printing paper-style rows and
//! writing `results/*.csv`) and, for the runtime-critical ones, a
//! Criterion bench under `benches/`.

mod alloc_track;
pub mod experiments;
mod util;

pub use alloc_track::{current_bytes, measure_peak, peak_bytes, reset_peak, TrackingAllocator};
pub use util::{secs, time, Method, Opts, Report};
