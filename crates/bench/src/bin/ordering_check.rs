#![deny(unsafe_code)]
//! Sanity harness: verifies the paper's runtime ordering
//! (A-HTPGM < E-HTPGM < TPMiner < IEMiner/H-DFS) on a mid-size dataset.
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let sigma: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.3);
    let data = ftpm_datagen::nist_like(scale);
    println!("seqs={} events={}", data.seq.len(), data.seq.registry().len());
    let me: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let cfg = ftpm_core::MinerConfig::new(sigma, sigma).with_max_events(me);
    let t = Instant::now();
    let e = ftpm_core::mine_exact(&data.seq, &cfg);
    println!("E-HTPGM   {:>10.1?} {} patterns", t.elapsed(), e.len());
    let t = Instant::now();
    let a = ftpm_core::mine_approximate_with_density(&data.syb, &data.seq, 0.6, &cfg);
    println!(
        "A-HTPGM60 {:>10.1?} {} patterns (accuracy {:.0}%)",
        t.elapsed(),
        a.result.len(),
        100.0 * a.result.accuracy_against(&e)
    );
    let t = Instant::now();
    let tp = ftpm_baselines::mine_tpminer(&data.seq, &cfg);
    println!("TPMiner   {:>10.1?} {} patterns", t.elapsed(), tp.len());
    let t = Instant::now();
    let hd = ftpm_baselines::mine_hdfs(&data.seq, &cfg);
    println!("H-DFS     {:>10.1?} {} patterns", t.elapsed(), hd.len());
    let t = Instant::now();
    let ie = ftpm_baselines::mine_ieminer(&data.seq, &cfg);
    println!("IEMiner   {:>10.1?} {} patterns", t.elapsed(), ie.len());
}
