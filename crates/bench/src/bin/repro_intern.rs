#![deny(unsafe_code)]
//! Pattern-pool intern speedup gate (beyond the paper; ROADMAP
//! "hash-consed pattern pool"): the id-keyed pooled merge accumulator
//! must beat the retired pattern-keyed design by >= 1.3x on accumulation
//! wall time, or cut its allocation count >= 5x (the stable arm on a
//! noisy one-core container), with the end-to-end exchange/merge wall
//! clock of the nist demo reported alongside. Exits nonzero when the
//! gate fails, so CI can gate on it. Args: `[scale] [max_events]`.
use std::process::ExitCode;

// The allocation arm of the gate counts real allocator hits.
#[global_allocator]
static ALLOC: ftpm_bench::TrackingAllocator = ftpm_bench::TrackingAllocator;

fn main() -> ExitCode {
    let opts = ftpm_bench::Opts::from_args(0.01, 3);
    if ftpm_bench::experiments::intern_speedup(&opts) {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "intern speedup FAILED: the pooled accumulator reached neither \
             1.3x wall-time nor 5x allocation improvement over the \
             pattern-keyed reference"
        );
        ExitCode::FAILURE
    }
}
