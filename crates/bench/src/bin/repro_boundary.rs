#![deny(unsafe_code)]
//! Boundary-policy equivalence on the energy demo (beyond the paper;
//! ROADMAP "Window-boundary artifacts"): with `--boundary true-extent`
//! and `t_ov = t_max`, an overlapped split's pattern set must equal the
//! unsplit baseline for all patterns of duration ≤ `t_max`. Exits
//! nonzero when the sets diverge, so CI can gate on it.
//! Args: `[scale] [max_events]`.
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = ftpm_bench::Opts::from_args(0.01, 3);
    if ftpm_bench::experiments::boundary_equivalence(&opts) {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "boundary equivalence FAILED: the true-extent overlapped split \
             diverged from the unsplit baseline"
        );
        ExitCode::FAILURE
    }
}
