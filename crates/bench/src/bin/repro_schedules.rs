#![deny(unsafe_code)]
//! Systematic schedule sweep (beyond the paper; ROADMAP "deterministic
//! schedule checking"): the [`ftpm_core::Explorer`] DFS must visit every
//! two-worker interleaving of the parallel miner and of the
//! candidate-exchange executor — output bit-identical to the
//! single-threaded baseline on each — plus every at-most-one-preemption
//! interleaving at four workers. Exits nonzero when any sweep caps out,
//! fails to exhaust, or diverges, so CI can gate on it. Takes no args:
//! the workload is fixed because exhaustiveness depends on its size.
use std::process::ExitCode;

fn main() -> ExitCode {
    if ftpm_bench::experiments::schedule_sweep() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "schedule sweep FAILED: an interleaving sweep capped out or \
             produced output diverging from the single-threaded baseline"
        );
        ExitCode::FAILURE
    }
}
