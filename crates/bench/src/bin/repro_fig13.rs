#![deny(unsafe_code)]
//! Reproduces the paper's Fig 13 (scalability in %attributes, Smart City). Args: `[scale] [max_events]`.
fn main() {
    let opts = ftpm_bench::Opts::from_args(0.015, 3);
    ftpm_bench::experiments::fig1213(&opts, true);
}
