#![deny(unsafe_code)]
//! Reproduces the paper's fig9. Args: `[scale] [max_events]`.
fn main() {
    let opts = ftpm_bench::Opts::from_args(0.02, 3);
    ftpm_bench::experiments::fig9(&opts);
}
