#![deny(unsafe_code)]
//! Reproduces the paper's Table VIII (peak memory). Args: `[scale] [max_events]`.
#[global_allocator]
static ALLOC: ftpm_bench::TrackingAllocator = ftpm_bench::TrackingAllocator;

fn main() {
    let opts = ftpm_bench::Opts::from_args(0.015, 3);
    ftpm_bench::experiments::table8(&opts);
}
