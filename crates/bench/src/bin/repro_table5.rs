#![deny(unsafe_code)]
//! Reproduces the paper's table5. Args: `[scale] [max_events]`.
fn main() {
    let opts = ftpm_bench::Opts::from_args(0.02, 3);
    ftpm_bench::experiments::table5(&opts);
}
