#![deny(unsafe_code)]
//! A-HTPGM composition gate on the energy demo (beyond the paper;
//! ROADMAP "One mining plan"): with one correlation graph at density
//! 0.8, the parallel, sharded support-complete and sharded
//! candidate-exchange approximate runs must reproduce the unsharded
//! single-threaded `mine_approximate` pattern set exactly, and the
//! exchange's MI-at-propose gate must generate strictly fewer candidates
//! than the exact exchange it post-hoc-filters to. Exits nonzero when
//! either fails, so CI can gate on it. Args: `[scale] [max_events]`.
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = ftpm_bench::Opts::from_args(0.01, 3);
    if ftpm_bench::experiments::approx_composition(&opts) {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "approx composition FAILED: a composed A-HTPGM run diverged from the \
             unsharded baseline or MI at propose time did not prune candidates"
        );
        ExitCode::FAILURE
    }
}
