#![deny(unsafe_code)]
//! Reproduces the paper's Fig 10 (scalability in %sequences, NIST). Args: `[scale] [max_events]`.
fn main() {
    let opts = ftpm_bench::Opts::from_args(0.015, 3);
    ftpm_bench::experiments::fig1011(&opts, false);
}
