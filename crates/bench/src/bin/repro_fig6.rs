#![deny(unsafe_code)]
//! Reproduces the paper's Fig 6 (pruning ablation, NIST). Args: `[scale] [max_events]`.
fn main() {
    let opts = ftpm_bench::Opts::from_args(0.02, 3);
    ftpm_bench::experiments::fig67(&opts, false);
}
