#![deny(unsafe_code)]
//! Threads-scaling run of parallel E-HTPGM (the CLI's `--threads` path).
//! Args: `[scale] [max_events]`.
fn main() {
    let opts = ftpm_bench::Opts::from_args(0.02, 4);
    ftpm_bench::experiments::threads_scaling(&opts);
}
