#![deny(unsafe_code)]
//! Shard-merge equivalence on the energy demo (beyond the paper; ROADMAP
//! "Sharding/scale"): `mine_sharded` with K ∈ {1, 2, 4} time-range
//! shards, `t_ov = t_max` and `--boundary true-extent` must reproduce the
//! unsharded baseline exactly — same pattern labels, supports,
//! confidences and clipped-occurrence counts. Exits nonzero when any run
//! diverges at K = 4, so CI can gate on it.
//! Args: `[scale] [max_events]`.
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = ftpm_bench::Opts::from_args(0.01, 3);
    if ftpm_bench::experiments::shard_equivalence(&opts) {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "shard equivalence FAILED: the merged sharded output diverged \
             from the unsharded baseline"
        );
        ExitCode::FAILURE
    }
}
