#![deny(unsafe_code)]
//! Reproduces the paper's Fig 12 (scalability in %attributes, NIST). Args: `[scale] [max_events]`.
fn main() {
    let opts = ftpm_bench::Opts::from_args(0.015, 3);
    ftpm_bench::experiments::fig1213(&opts, false);
}
