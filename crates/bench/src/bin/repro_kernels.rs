#![deny(unsafe_code)]
//! Hot-path kernel speedup gate (beyond the paper; ROADMAP "Kernelize
//! the hot path"): the block-unrolled CSA `and_count` kernel must beat
//! the retained scalar reference by >= 1.5x on the microbench, with the
//! fused `and_count_many` batch and one end-to-end exact mine of the
//! energy demo reported alongside. Exits nonzero when the gate fails, so
//! CI can gate on it. Args: `[scale] [max_events]`.
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = ftpm_bench::Opts::from_args(0.02, 4);
    if ftpm_bench::experiments::kernel_speedup(&opts) {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "kernel speedup FAILED: and_count did not reach 1.5x over the \
             scalar reference at any measured size"
        );
        ExitCode::FAILURE
    }
}
