#![deny(unsafe_code)]
//! Candidate-exchange pruning gate on the energy demo (beyond the paper;
//! ROADMAP "Sharding/scale"): for K ∈ {2, 4} time-range shards, the
//! two-phase exchange executor must reproduce the unsharded baseline
//! exactly *and* generate strictly fewer candidates per shard than the
//! support-complete merge path — pruning restored without losing
//! exactness. Exits nonzero when either fails, so CI can gate on it.
//! Args: `[scale] [max_events]`.
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = ftpm_bench::Opts::from_args(0.01, 3);
    if ftpm_bench::experiments::exchange_pruning(&opts) {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "exchange pruning FAILED: the exchange executor diverged from the \
             unsharded baseline or did not prune more than support-complete mining"
        );
        ExitCode::FAILURE
    }
}
