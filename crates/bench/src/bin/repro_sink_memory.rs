#![deny(unsafe_code)]
//! Peak-memory comparison of the pattern output paths (collect vs count
//! vs stream) — the sink-architecture extension of the paper's Table
//! VIII. Args: `[scale] [max_events]`.
#[global_allocator]
static ALLOC: ftpm_bench::TrackingAllocator = ftpm_bench::TrackingAllocator;

fn main() {
    let opts = ftpm_bench::Opts::from_args(0.02, 4);
    ftpm_bench::experiments::sink_memory(&opts);
}
