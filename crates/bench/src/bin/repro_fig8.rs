#![deny(unsafe_code)]
//! Reproduces the paper's fig8. Args: `[scale] [max_events]`.
fn main() {
    let opts = ftpm_bench::Opts::from_args(0.02, 3);
    ftpm_bench::experiments::fig8(&opts);
}
