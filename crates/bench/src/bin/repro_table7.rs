#![deny(unsafe_code)]
//! Reproduces the paper's table7. Args: `[scale] [max_events]`.
fn main() {
    let opts = ftpm_bench::Opts::from_args(0.015, 3);
    ftpm_bench::experiments::table7(&opts);
}
