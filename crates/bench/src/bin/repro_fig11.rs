#![deny(unsafe_code)]
//! Reproduces the paper's Fig 11 (scalability in %sequences, Smart City). Args: `[scale] [max_events]`.
fn main() {
    let opts = ftpm_bench::Opts::from_args(0.015, 3);
    ftpm_bench::experiments::fig1011(&opts, true);
}
