//! One function per table/figure of the paper's evaluation (Section VI).
//! Each prints the same rows/series the paper reports and writes a CSV
//! under `results/`. Dataset sizes default to a documented fraction of
//! the paper's (see DESIGN.md "Substitutions"); pass a larger scale as
//! the first CLI argument to push towards the full size.

use ftpm_core::{
    mine_approximate_with_density, mine_exact, mine_exact_parallel_with_sink,
    mine_exact_with_sink, CollectSink, CountingSink, JsonlSink, MinerConfig, PatternSink,
    PruningConfig,
};
use ftpm_datagen::{dataport_like, nist_like, smartcity_like, ukdale_like, Dataset};

use crate::alloc_track::measure_peak;
use crate::util::{secs, time, Method, Opts, Report};

fn config(sigma: f64, delta: f64, opts: &Opts) -> MinerConfig {
    MinerConfig::new(sigma, delta).with_max_events(opts.max_events)
}

/// Table V: number of extracted patterns per dataset over the
/// σ × δ ∈ {20,40,60,80}² grid.
pub fn table5(opts: &Opts) {
    println!("Table V: extracted patterns (scale {})\n", opts.scale);
    let datasets = [
        nist_like(opts.scale),
        ukdale_like(opts.scale),
        dataport_like(opts.scale),
        smartcity_like(opts.scale),
    ];
    let grid = [0.2, 0.4, 0.6, 0.8];
    let mut report = Report::new(
        "table5",
        &["dataset", "sigma%", "conf=20", "conf=40", "conf=60", "conf=80"],
    );
    for data in &datasets {
        for &sigma in &grid {
            let mut cells = vec![data.name.clone(), format!("{:.0}", sigma * 100.0)];
            for &delta in &grid {
                let result = mine_exact(&data.seq, &config(sigma, delta, opts));
                cells.push(result.len().to_string());
            }
            report.row(cells);
        }
    }
    report.finish();
}

/// Shared grid runner for Tables VII (runtime) and VIII (memory).
fn baseline_grid(opts: &Opts, measure_memory: bool) {
    let (name, unit) = if measure_memory {
        ("table8", "peak MB")
    } else {
        ("table7", "seconds")
    };
    println!(
        "Table {}: {} comparison (scale {})\n",
        if measure_memory { "VIII" } else { "VII" },
        unit,
        opts.scale
    );
    // The full smartcity-like alphabet (274 events) makes the sigma=20%
    // baseline cells take tens of minutes each, as in the paper (IEMiner
    // 1419 s); the default harness projects it to 30 variables so the
    // whole grid completes in minutes. Raise `scale`/edit here for the
    // full-size run.
    let datasets = [
        nist_like(opts.scale),
        smartcity_like(opts.scale).project_variables(30),
    ];
    let grid = [0.2, 0.5, 0.8];
    let mut report = Report::new(
        name,
        &[
            "dataset", "sigma%", "method", "conf=20", "conf=50", "conf=80",
        ],
    );
    for data in &datasets {
        for &sigma in &grid {
            for method in Method::lineup() {
                let mut cells = vec![
                    data.name.clone(),
                    format!("{:.0}", sigma * 100.0),
                    method.label(),
                ];
                for &delta in &grid {
                    let cfg = config(sigma, delta, opts);
                    if measure_memory {
                        let (_, peak) = measure_peak(|| method.run(data, &cfg));
                        cells.push(format!("{:.2}", peak as f64 / (1024.0 * 1024.0)));
                    } else {
                        let (_, elapsed) = time(|| method.run(data, &cfg));
                        cells.push(secs(elapsed));
                    }
                }
                report.row(cells);
            }
        }
    }
    report.finish();
}

/// Table VII: runtimes of the three baselines, E-HTPGM and A-HTPGM at
/// four densities, on NIST-like and SmartCity-like data.
pub fn table7(opts: &Opts) {
    baseline_grid(opts, false);
}

/// Table VIII: peak memory for the same grid (requires the harness binary
/// to install [`crate::TrackingAllocator`]).
pub fn table8(opts: &Opts) {
    baseline_grid(opts, true);
}

/// Table IX: accuracy of A-HTPGM vs the density target, over the σ × δ
/// grid.
pub fn table9(opts: &Opts) {
    println!("Table IX: A-HTPGM accuracy % (scale {})\n", opts.scale);
    let datasets = [
        nist_like(opts.scale),
        smartcity_like(opts.scale).project_variables(30),
    ];
    let sigma_grid = [0.2, 0.5, 0.8];
    let density_grid = [0.4, 0.6, 0.8, 0.9];
    let mut report = Report::new(
        "table9",
        &[
            "dataset", "sigma%", "density%", "conf=20", "conf=50", "conf=80",
        ],
    );
    for data in &datasets {
        for &sigma in &sigma_grid {
            // Mine the exact reference once per (sigma, delta) cell and
            // reuse it across all densities.
            let exacts: Vec<_> = sigma_grid
                .iter()
                .map(|&delta| mine_exact(&data.seq, &config(sigma, delta, opts)))
                .collect();
            for &density in &density_grid {
                let mut cells = vec![
                    data.name.clone(),
                    format!("{:.0}", sigma * 100.0),
                    format!("{:.0}", density * 100.0),
                ];
                for (&delta, exact) in sigma_grid.iter().zip(&exacts) {
                    let cfg = config(sigma, delta, opts);
                    let approx =
                        mine_approximate_with_density(&data.syb, &data.seq, density, &cfg);
                    let acc = approx.result.accuracy_against(exact);
                    cells.push(format!("{:.0}", acc * 100.0));
                }
                report.row(cells);
            }
        }
    }
    report.finish();
}

/// Figs 6 (NIST) and 7 (Smart City): runtimes of the four pruning
/// configurations of E-HTPGM while varying %data, confidence and support.
pub fn fig67(opts: &Opts, city: bool) {
    let (name, data) = if city {
        ("fig7", smartcity_like(opts.scale).project_variables(30))
    } else {
        ("fig6", nist_like(opts.scale))
    };
    println!(
        "Fig {}: E-HTPGM pruning ablation on {} (scale {})\n",
        if city { 7 } else { 6 },
        data.name,
        opts.scale
    );
    let variants = [
        ("NoPrune", PruningConfig::NO_PRUNE),
        ("Apriori", PruningConfig::APRIORI),
        ("Trans", PruningConfig::TRANSITIVITY),
        ("All", PruningConfig::ALL),
    ];
    let mut report = Report::new(
        name,
        &["panel", "x%", "variant", "seconds", "instance_checks"],
    );
    // Panel a: varying % of data at sigma = delta = 0.5.
    for pct in [20, 40, 60, 80, 100] {
        let sub = data.take_sequences(data.seq.len() * pct / 100);
        for (label, pruning) in variants {
            let cfg = config(0.5, 0.5, opts).with_pruning(pruning);
            let (r, elapsed) = time(|| mine_exact(&sub.seq, &cfg));
            report.row(vec![
                "a:data".into(),
                pct.to_string(),
                label.into(),
                secs(elapsed),
                r.stats.instance_checks.to_string(),
            ]);
        }
    }
    // Panel b: varying confidence at sigma = 0.5.
    for pct in [20, 40, 60, 80, 100] {
        for (label, pruning) in variants {
            let cfg = config(0.5, pct as f64 / 100.0, opts).with_pruning(pruning);
            let (r, elapsed) = time(|| mine_exact(&data.seq, &cfg));
            report.row(vec![
                "b:conf".into(),
                pct.to_string(),
                label.into(),
                secs(elapsed),
                r.stats.instance_checks.to_string(),
            ]);
        }
    }
    // Panel c: varying support at delta = 0.5.
    for pct in [20, 40, 60, 80, 100] {
        for (label, pruning) in variants {
            let cfg = config(pct as f64 / 100.0, 0.5, opts).with_pruning(pruning);
            let (r, elapsed) = time(|| mine_exact(&data.seq, &cfg));
            report.row(vec![
                "c:supp".into(),
                pct.to_string(),
                label.into(),
                secs(elapsed),
                r.stats.instance_checks.to_string(),
            ]);
        }
    }
    report.finish();
}

/// Fig 8: cumulative confidence distribution of the patterns pruned by
/// A-HTPGM at 20% density, for supports 10–40%.
pub fn fig8(opts: &Opts) {
    println!(
        "Fig 8: confidence CDF of patterns pruned by A-HTPGM (density 20%, scale {})\n",
        opts.scale
    );
    let datasets = [
        nist_like(opts.scale),
        ukdale_like(opts.scale),
        smartcity_like(opts.scale).project_variables(30),
    ];
    let mut report = Report::new(
        "fig8",
        &["dataset", "sigma%", "conf_bucket", "cumulative_probability"],
    );
    for data in &datasets {
        for sigma_pct in [10, 20, 30, 40] {
            // delta ~ 0 so the exact miner keeps even low-confidence
            // patterns: we are studying what A-HTPGM would discard.
            let cfg = MinerConfig::new(sigma_pct as f64 / 100.0, 1e-9)
                .with_max_events(opts.max_events);
            let exact = mine_exact(&data.seq, &cfg);
            let approx = mine_approximate_with_density(&data.syb, &data.seq, 0.2, &cfg);
            let kept = approx.result.pattern_keys();
            let pruned: Vec<f64> = exact
                .patterns
                .iter()
                .filter(|p| !kept.contains(&p.pattern))
                .map(|p| p.confidence)
                .collect();
            if pruned.is_empty() {
                continue;
            }
            for bucket in (10..=100).step_by(10) {
                let cutoff = bucket as f64 / 100.0;
                let cdf = pruned.iter().filter(|&&c| c <= cutoff).count() as f64
                    / pruned.len() as f64;
                report.row(vec![
                    data.name.clone(),
                    sigma_pct.to_string(),
                    bucket.to_string(),
                    format!("{cdf:.3}"),
                ]);
            }
        }
    }
    report.finish();
}

/// Fig 9: accuracy vs runtime gain of A-HTPGM as the density target
/// varies — the trade-off analysis for choosing μ.
pub fn fig9(opts: &Opts) {
    println!(
        "Fig 9: A-HTPGM accuracy / runtime-gain trade-off (scale {})\n",
        opts.scale
    );
    let datasets = [
        nist_like(opts.scale),
        ukdale_like(opts.scale),
        smartcity_like(opts.scale).project_variables(30),
    ];
    let mut report = Report::new(
        "fig9",
        &["dataset", "density%", "mu", "accuracy%", "runtime_gain%"],
    );
    for data in &datasets {
        let cfg = config(0.3, 0.3, opts);
        let (exact, exact_time) = time(|| mine_exact(&data.seq, &cfg));
        for density in [0.2, 0.4, 0.6, 0.8] {
            let (approx, t) =
                time(|| mine_approximate_with_density(&data.syb, &data.seq, density, &cfg));
            let accuracy = approx.result.accuracy_against(&exact);
            let gain = 1.0 - t.as_secs_f64() / exact_time.as_secs_f64();
            report.row(vec![
                data.name.clone(),
                format!("{:.0}", density * 100.0),
                format!("{:.3}", approx.mu),
                format!("{:.1}", accuracy * 100.0),
                format!("{:.1}", gain * 100.0),
            ]);
        }
    }
    report.finish();
}

/// Figs 10 (NIST) / 11 (Smart City): scalability in the number of
/// sequences — all five methods at σ = δ ∈ {20, 50, 80}%.
pub fn fig1011(opts: &Opts, city: bool) {
    let (name, data) = if city {
        ("fig11", smartcity_like(opts.scale).project_variables(30))
    } else {
        ("fig10", nist_like(opts.scale))
    };
    println!(
        "Fig {}: scalability in %sequences on {} (scale {})\n",
        if city { 11 } else { 10 },
        data.name,
        opts.scale
    );
    scalability(name, &data, opts, true);
}

/// Figs 12 (NIST) / 13 (Smart City): scalability in the number of
/// attributes.
pub fn fig1213(opts: &Opts, city: bool) {
    let (name, data) = if city {
        ("fig13", smartcity_like(opts.scale).project_variables(30))
    } else {
        ("fig12", nist_like(opts.scale))
    };
    println!(
        "Fig {}: scalability in %attributes on {} (scale {})\n",
        if city { 13 } else { 12 },
        data.name,
        opts.scale
    );
    scalability(name, &data, opts, false);
}

/// Threads scaling (beyond the paper): E-HTPGM wall clock and speedup as
/// the worker count grows — the `--threads` path of the CLI. Verifies
/// that the sharded miner finds the same number of patterns at every
/// thread count.
pub fn threads_scaling(opts: &Opts) {
    println!("Threads scaling: parallel E-HTPGM (scale {})\n", opts.scale);
    let datasets = [nist_like(opts.scale), ukdale_like(opts.scale)];
    let mut report = Report::new(
        "threads",
        &["dataset", "threads", "seconds", "patterns", "speedup"],
    );
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json_rows = Vec::new();
    for data in &datasets {
        let cfg = config(0.4, 0.4, opts);
        let mut base: Option<(f64, usize)> = None;
        for threads in [1usize, 2, 4, 8] {
            let (r, elapsed) = time(|| Method::EHtpgmPar(threads).run(data, &cfg));
            let (base_secs, base_patterns) =
                *base.get_or_insert((elapsed.as_secs_f64(), r.len()));
            assert_eq!(
                r.len(),
                base_patterns,
                "{}: {threads}-thread run diverged from single-threaded pattern count",
                data.name
            );
            let speedup = base_secs / elapsed.as_secs_f64();
            report.row(vec![
                data.name.clone(),
                threads.to_string(),
                secs(elapsed),
                r.len().to_string(),
                format!("{speedup:.2}"),
            ]);
            json_rows.push(format!(
                "    {{\"dataset\": \"{}\", \"threads\": {threads}, \
                 \"seconds\": {:.6}, \"patterns\": {}, \"speedup\": {speedup:.3}}}",
                data.name,
                elapsed.as_secs_f64(),
                r.len(),
            ));
        }
    }
    report.finish();

    // Machine-readable summary for archiving. `host_cores` is recorded
    // because on a single-core host the speedup column is structural
    // (shows the sharded path adds no divergence and bounded overhead),
    // not a parallelism measurement.
    let json = format!(
        "{{\n  \"experiment\": \"threads_scaling\",\n  \"scale\": {},\n  \
         \"host_cores\": {host_cores},\n  \"runs\": [\n{}\n  ]\n}}\n",
        opts.scale,
        json_rows.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    match std::fs::write("results/threads_scaling.json", json) {
        Ok(()) => println!("wrote results/threads_scaling.json"),
        Err(e) => eprintln!("could not write results/threads_scaling.json: {e}"),
    }
}

/// Output-path memory (extends Table VIII): peak heap of one E-HTPGM run
/// when the patterns are collected into a `MiningResult`, only counted,
/// or streamed to a JSONL writer — the sink architecture's memory story.
pub fn sink_memory(opts: &Opts) {
    println!(
        "Sink memory: collect vs count vs stream output paths (scale {})\n",
        opts.scale
    );
    let data = nist_like(opts.scale);
    let cfg = config(0.4, 0.4, opts);
    let mut report = Report::new(
        "sink_memory",
        &["dataset", "path", "threads", "peak_mb", "patterns"],
    );
    let mb = |bytes: usize| format!("{:.2}", bytes as f64 / (1024.0 * 1024.0));
    // Collect: the classic MiningResult vector.
    let (n, peak) = measure_peak(|| {
        let mut sink = CollectSink::new();
        let stats = mine_exact_with_sink(&data.seq, &cfg, &mut sink);
        sink.into_result(stats).len()
    });
    report.row(vec![data.name.clone(), "collect".into(), "1".into(), mb(peak), n.to_string()]);
    // Count: stats only, nothing retained.
    let (n, peak) = measure_peak(|| {
        let mut sink = CountingSink::default();
        mine_exact_with_sink(&data.seq, &cfg, &mut sink);
        sink.patterns()
    });
    report.row(vec![data.name.clone(), "count".into(), "1".into(), mb(peak), n.to_string()]);
    // Stream: every pattern serialized to a JSONL writer, none retained.
    for threads in [1usize, 2] {
        let (n, peak) = measure_peak(|| {
            let mut sink = JsonlSink::new(std::io::sink(), data.seq.registry());
            if threads > 1 {
                mine_exact_parallel_with_sink(&data.seq, &cfg, threads, &mut sink);
            } else {
                mine_exact_with_sink(&data.seq, &cfg, &mut sink);
            }
            sink.finish().expect("io::sink never fails");
            sink.written()
        });
        report.row(vec![
            data.name.clone(),
            "stream-jsonl".into(),
            threads.to_string(),
            mb(peak),
            n.to_string(),
        ]);
    }
    report.finish();
}

/// Boundary-artifact equivalence (beyond the paper; ROADMAP
/// "Window-boundary artifacts"): mines the energy demo once unsplit and
/// once through an overlapped split with `t_ov = t_max`, under each
/// [`ftpm_events::BoundaryPolicy`]. With `TrueExtent` the split's
/// pattern set must equal the unsplit baseline for every pattern of
/// (true) duration ≤ `t_max` — the Fig 3 overlap lemma made exact —
/// while `Clip` fabricates and loses patterns at the cuts. Writes
/// `results/boundary_equivalence.{csv,json}` and returns whether the
/// `TrueExtent` sets matched.
pub fn boundary_equivalence(opts: &Opts) -> bool {
    use ftpm_events::{to_sequence_database, BoundaryPolicy, RelationConfig, SplitConfig};

    // A handful of appliances keeps the single unsplit sequence minable
    // by the same exact miner in seconds.
    let data = nist_like(opts.scale).project_variables(8);
    let syb = &data.syb;
    let (step, n_steps) = (syb.step(), syb.n_steps());
    // Six-hour windows overlapped by t_ov = t_max = 3 h. Derive the
    // step geometry from the same rounding the split itself applies, so
    // the baseline prefix below cannot drift from it.
    let window = 6 * 60;
    let t_max = 3 * 60;
    let overlapped = SplitConfig::new(window, t_max);
    let eff = overlapped.effective(step);
    assert_eq!(
        eff.overlap, t_max,
        "t_max must survive step rounding or the lemma does not apply"
    );
    let win_steps = (eff.window / step) as usize;
    let stride_steps = (eff.stride() / step) as usize;
    assert!(n_steps >= win_steps, "scale too small for one window");
    // The split emits only full windows, so the baseline is the
    // full-window *prefix* the windows actually tile — one unsplit
    // sequence covering exactly that many steps.
    let covered_steps = ((n_steps - win_steps) / stride_steps) * stride_steps + win_steps;
    let unsplit = SplitConfig::new(covered_steps as i64 * step, 0);

    println!(
        "Boundary equivalence: {} unsplit [0, {}) vs split {} (t_max {t_max}, scale {})\n",
        data.name,
        covered_steps as i64 * step,
        overlapped,
        opts.scale
    );
    let mut report = Report::new(
        "boundary_equivalence",
        &[
            "policy", "baseline", "split", "missing", "extra", "equal",
        ],
    );
    let mut json_rows = Vec::new();
    let mut true_extent_equal = false;
    // The policy is applied at mining time, not split time, so one
    // conversion per geometry serves all three policies.
    let unsplit_db = to_sequence_database(syb, unsplit);
    let overlapped_db = to_sequence_database(syb, overlapped);
    for policy in [
        BoundaryPolicy::Clip,
        BoundaryPolicy::TrueExtent,
        BoundaryPolicy::Discard,
    ] {
        let cfg = MinerConfig::new(0.01, 0.01)
            .with_max_events(opts.max_events)
            .with_relation(RelationConfig::new(0, 1, t_max).with_boundary(policy));
        // The two conversions intern events in different orders, so raw
        // EventId-based pattern keys are not comparable across them —
        // render through each database's own registry instead.
        let labelled = |db: &ftpm_events::SequenceDatabase| {
            let result = mine_exact(db, &cfg);
            let keys: std::collections::HashSet<String> = result
                .patterns
                .iter()
                .map(|p| p.pattern.display(db.registry()).to_string())
                .collect();
            (result, keys)
        };
        let (base, base_keys) = labelled(&unsplit_db);
        let (split, split_keys) = labelled(&overlapped_db);
        let missing = base_keys.difference(&split_keys).count();
        let extra = split_keys.difference(&base_keys).count();
        let equal = missing == 0 && extra == 0;
        if policy == BoundaryPolicy::TrueExtent {
            true_extent_equal = equal;
        }
        report.row(vec![
            policy.to_string(),
            base.len().to_string(),
            split.len().to_string(),
            missing.to_string(),
            extra.to_string(),
            equal.to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"policy\": \"{policy}\", \"baseline_patterns\": {}, \
             \"split_patterns\": {}, \"missing\": {missing}, \"extra\": {extra}, \
             \"equal\": {equal}}}",
            base.len(),
            split.len(),
        ));
    }
    report.finish();

    // Machine-readable summary for the CI boundary-equivalence gate.
    let json = format!(
        "{{\n  \"experiment\": \"boundary_equivalence\",\n  \"dataset\": \"{}\",\n  \
         \"window\": {window},\n  \"overlap\": {t_max},\n  \"t_max\": {t_max},\n  \
         \"scale\": {},\n  \"true_extent_equal\": {true_extent_equal},\n  \
         \"policies\": [\n{}\n  ]\n}}\n",
        data.name,
        opts.scale,
        json_rows.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    match std::fs::write("results/boundary_equivalence.json", json) {
        Ok(()) => println!("wrote results/boundary_equivalence.json"),
        Err(e) => eprintln!("could not write results/boundary_equivalence.json: {e}"),
    }
    true_extent_equal
}

/// Shard-merge equivalence (beyond the paper; ROADMAP "Sharding/scale"):
/// mines the energy demo once unsharded and once cut into K ∈ {1, 2, 4}
/// time-range shards with `t_ov = t_max` under `TrueExtent`, each shard
/// converting and mining its own slice, merged through the deduplicating
/// [`ftpm_core::ShardMerge`]. The merged output must equal the unsharded
/// baseline *exactly* — same pattern labels, supports, confidences and
/// clipped-occurrence counts. Writes
/// `results/shard_equivalence.{csv,json}` and returns whether the K = 4
/// run matched (the CI gate).
pub fn shard_equivalence(opts: &Opts) -> bool {
    use std::collections::HashMap;

    use ftpm_core::mine_sharded;
    use ftpm_events::{BoundaryPolicy, EventRegistry, RelationConfig};

    // A handful of appliances keeps support-complete per-shard mining
    // (absolute support 1 — the price of an exact merge) fast.
    let data = nist_like(opts.scale).project_variables(8);
    let t_max = 3 * 60;
    let cfg = MinerConfig::new(0.25, 0.25)
        .with_max_events(opts.max_events)
        .with_relation(
            RelationConfig::new(0, 1, t_max).with_boundary(BoundaryPolicy::TrueExtent),
        );
    println!(
        "Shard equivalence: {} ({} windows, {}, t_max {t_max}, scale {})\n",
        data.name,
        data.seq.len(),
        data.split,
        opts.scale
    );

    // Shard slices intern events in their own orders: compare by label.
    let labelled = |result: &ftpm_core::MiningResult, registry: &EventRegistry| {
        result
            .patterns
            .iter()
            .map(|p| {
                (
                    p.pattern.display(registry).to_string(),
                    (p.support, p.confidence, p.clipped_occurrences),
                )
            })
            .collect::<HashMap<String, (usize, f64, usize)>>()
    };
    let (base, base_secs) = time(|| mine_exact(&data.seq, &cfg));
    let base_map = labelled(&base, data.seq.registry());

    let mut report = Report::new(
        "shard_equivalence",
        &[
            "shards", "baseline", "merged", "missing", "extra", "stat_mismatches",
            "seconds", "equal",
        ],
    );
    report.row(vec![
        "unsharded".into(),
        base.len().to_string(),
        base.len().to_string(),
        "0".into(),
        "0".into(),
        "0".into(),
        secs(base_secs),
        "true".into(),
    ]);
    let mut json_rows = Vec::new();
    let mut k4_equal = false;
    for k in [1usize, 2, 4] {
        let (sharded, elapsed) = time(|| {
            mine_sharded(&data.syb, data.split, &cfg, k, 1).expect("valid shard geometry")
        });
        let merged_map = labelled(&sharded.result, &sharded.registry);
        let missing = base_map.keys().filter(|l| !merged_map.contains_key(*l)).count();
        let extra = merged_map.keys().filter(|l| !base_map.contains_key(*l)).count();
        let stat_mismatches = base_map
            .iter()
            .filter(|(label, (supp, conf, clipped))| {
                merged_map.get(*label).is_some_and(|(s, c, cl)| {
                    s != supp || (c - conf).abs() >= 1e-9 || cl != clipped
                })
            })
            .count();
        let equal = missing == 0 && extra == 0 && stat_mismatches == 0;
        if k == 4 {
            k4_equal = equal;
        }
        report.row(vec![
            k.to_string(),
            base.len().to_string(),
            sharded.result.len().to_string(),
            missing.to_string(),
            extra.to_string(),
            stat_mismatches.to_string(),
            secs(elapsed),
            equal.to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"shards\": {k}, \"baseline_patterns\": {}, \"merged_patterns\": {}, \
             \"missing\": {missing}, \"extra\": {extra}, \
             \"stat_mismatches\": {stat_mismatches}, \"equal\": {equal}}}",
            base.len(),
            sharded.result.len(),
        ));
    }
    report.finish();

    // Machine-readable summary for the CI shard-equivalence gate.
    let json = format!(
        "{{\n  \"experiment\": \"shard_equivalence\",\n  \"dataset\": \"{}\",\n  \
         \"windows\": {},\n  \"t_ov\": {t_max},\n  \"t_max\": {t_max},\n  \
         \"boundary\": \"true-extent\",\n  \"scale\": {},\n  \
         \"sharded_equal\": {k4_equal},\n  \"runs\": [\n{}\n  ]\n}}\n",
        data.name,
        data.seq.len(),
        opts.scale,
        json_rows.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    match std::fs::write("results/shard_equivalence.json", json) {
        Ok(()) => println!("wrote results/shard_equivalence.json"),
        Err(e) => eprintln!("could not write results/shard_equivalence.json: {e}"),
    }
    k4_equal
}

/// Candidate-exchange pruning (beyond the paper; ROADMAP
/// "Sharding/scale"): mines the energy demo unsharded, sharded
/// support-complete, and sharded through the two-phase candidate
/// exchange, for K ∈ {2, 4}. The exchange must (a) reproduce the
/// unsharded pattern set exactly and (b) generate *strictly fewer*
/// candidates per shard than the support-complete path — the whole point
/// of exchanging candidates is that the global σ/δ gate kills losers
/// before the next level is enumerated anywhere. Writes
/// `results/exchange_pruning.{csv,json}` (per-shard candidate counts and
/// wall times included) and returns whether both held (the CI gate).
pub fn exchange_pruning(opts: &Opts) -> bool {
    use std::collections::HashMap;

    use ftpm_core::{CollectSink, ShardPlanner, ShardReport};
    use ftpm_events::{BoundaryPolicy, EventRegistry, RelationConfig};

    let data = nist_like(opts.scale).project_variables(8);
    let t_max = 3 * 60;
    let cfg = MinerConfig::new(0.25, 0.25)
        .with_max_events(opts.max_events)
        .with_relation(
            RelationConfig::new(0, 1, t_max).with_boundary(BoundaryPolicy::TrueExtent),
        );
    println!(
        "Exchange pruning: {} ({} windows, {}, t_max {t_max}, scale {})\n",
        data.name,
        data.seq.len(),
        data.split,
        opts.scale
    );

    let labelled = |result: &ftpm_core::MiningResult, registry: &EventRegistry| {
        result
            .patterns
            .iter()
            .map(|p| {
                (
                    p.pattern.display(registry).to_string(),
                    (p.support, p.confidence, p.clipped_occurrences),
                )
            })
            .collect::<HashMap<String, (usize, f64, usize)>>()
    };
    let (base, base_secs) = time(|| mine_exact(&data.seq, &cfg));
    let base_map = labelled(&base, data.seq.registry());

    let mut report = Report::new(
        "exchange_pruning",
        &[
            "shards", "mode", "candidates", "pruned", "patterns", "missing", "extra",
            "seconds", "equal",
        ],
    );
    report.row(vec![
        "1".into(),
        "unsharded".into(),
        base.stats.patterns_found.iter().sum::<usize>().to_string(),
        "0".into(),
        base.len().to_string(),
        "0".into(),
        "0".into(),
        secs(base_secs),
        "true".into(),
    ]);
    let shard_rows_json = |reports: &[ShardReport]| {
        reports
            .iter()
            .map(|r| {
                format!(
                    "        {{\"shard\": {}, \"windows_owned\": {}, \
                     \"candidates_proposed\": {}, \"candidates_pruned\": {}, \
                     \"wall_ms\": {}}}",
                    r.shard,
                    r.windows_owned,
                    r.candidates_proposed,
                    r.candidates_pruned,
                    r.wall.as_millis()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };

    let mut json_rows = Vec::new();
    let mut exchange_equal = true;
    let mut exchange_prunes = true;
    for k in [2usize, 4] {
        let plan = ShardPlanner::new(k)
            .plan(&data.syb, data.split, t_max)
            .expect("valid shard geometry");
        let mut runs = Vec::new();
        {
            let mut sink = CollectSink::new();
            let ((stats, reports), elapsed) =
                time(|| plan.mine_into_reported(&cfg, 1, &mut sink));
            runs.push(("support-complete", sink.into_result(stats), reports, elapsed));
        }
        let ((exchange_result, exchange_reports), elapsed) =
            time(|| plan.mine_exchange(&cfg, 1));
        runs.push(("exchange", exchange_result, exchange_reports, elapsed));

        let candidates: HashMap<&str, usize> = runs
            .iter()
            .map(|(mode, _, reports, _)| {
                (*mode, reports.iter().map(|r| r.candidates_proposed).sum())
            })
            .collect();
        if candidates["exchange"] >= candidates["support-complete"] {
            exchange_prunes = false;
        }
        for (mode, result, reports, elapsed) in &runs {
            let merged_map = labelled(result, plan.registry());
            let missing = base_map.keys().filter(|l| !merged_map.contains_key(*l)).count();
            let extra = merged_map.keys().filter(|l| !base_map.contains_key(*l)).count();
            let stat_mismatches = base_map
                .iter()
                .filter(|(label, (supp, conf, clipped))| {
                    merged_map.get(*label).is_some_and(|(s, c, cl)| {
                        s != supp || (c - conf).abs() >= 1e-9 || cl != clipped
                    })
                })
                .count();
            let equal = missing == 0 && extra == 0 && stat_mismatches == 0;
            if *mode == "exchange" && !equal {
                exchange_equal = false;
            }
            let pruned: usize = reports.iter().map(|r| r.candidates_pruned).sum();
            report.row(vec![
                k.to_string(),
                (*mode).into(),
                candidates[mode].to_string(),
                pruned.to_string(),
                result.len().to_string(),
                missing.to_string(),
                extra.to_string(),
                secs(*elapsed),
                equal.to_string(),
            ]);
            json_rows.push(format!(
                "    {{\"shards\": {k}, \"mode\": \"{mode}\", \
                 \"candidates_proposed\": {}, \"candidates_pruned\": {pruned}, \
                 \"patterns\": {}, \"missing\": {missing}, \"extra\": {extra}, \
                 \"stat_mismatches\": {stat_mismatches}, \"equal\": {equal}, \
                 \"seconds\": {}, \"shard_reports\": [\n{}\n    ]}}",
                candidates[mode],
                result.len(),
                elapsed.as_secs_f64(),
                shard_rows_json(reports),
            ));
        }
    }
    report.finish();

    // Machine-readable summary for the CI exchange-pruning gate.
    let json = format!(
        "{{\n  \"experiment\": \"exchange_pruning\",\n  \"dataset\": \"{}\",\n  \
         \"windows\": {},\n  \"t_ov\": {t_max},\n  \"t_max\": {t_max},\n  \
         \"boundary\": \"true-extent\",\n  \"scale\": {},\n  \
         \"unsharded_candidates\": {},\n  \
         \"exchange_equal\": {exchange_equal},\n  \
         \"exchange_prunes\": {exchange_prunes},\n  \"runs\": [\n{}\n  ]\n}}\n",
        data.name,
        data.seq.len(),
        opts.scale,
        base.stats.patterns_found.iter().sum::<usize>(),
        json_rows.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    match std::fs::write("results/exchange_pruning.json", json) {
        Ok(()) => println!("wrote results/exchange_pruning.json"),
        Err(e) => eprintln!("could not write results/exchange_pruning.json: {e}"),
    }
    exchange_equal && exchange_prunes
}

/// A-HTPGM composition gate on the energy demo (beyond the paper;
/// ROADMAP "One mining plan"): one correlation graph (density 0.8),
/// every execution composition — parallel, sharded support-complete,
/// sharded candidate-exchange, threads × shards — must reproduce the
/// unsharded single-threaded `mine_approximate` pattern set exactly,
/// and MI-at-propose must generate strictly fewer exchange candidates
/// than the exact exchange it post-hoc-filters to. Writes
/// `results/approx_composition.{csv,json}` and returns whether both the
/// equality and the pruning held (the CI gate).
pub fn approx_composition(opts: &Opts) -> bool {
    use std::collections::HashMap;

    use ftpm_core::{mine_approximate_parallel, ShardPlanner};
    use ftpm_events::{BoundaryPolicy, EventRegistry, RelationConfig};
    use ftpm_mi::CorrelationGraph;

    const DENSITY: f64 = 0.8;
    let data = nist_like(opts.scale).project_variables(8);
    let t_max = 3 * 60;
    let cfg = MinerConfig::new(0.25, 0.25)
        .with_max_events(opts.max_events)
        .with_relation(
            RelationConfig::new(0, 1, t_max).with_boundary(BoundaryPolicy::TrueExtent),
        );
    println!(
        "A-HTPGM composition: {} ({} windows, {}, density {DENSITY}, t_max {t_max}, scale {})\n",
        data.name,
        data.seq.len(),
        data.split,
        opts.scale
    );

    let labelled = |result: &ftpm_core::MiningResult, registry: &EventRegistry| {
        result
            .patterns
            .iter()
            .map(|p| {
                (
                    p.pattern.display(registry).to_string(),
                    (p.support, p.confidence, p.clipped_occurrences),
                )
            })
            .collect::<HashMap<String, (usize, f64, usize)>>()
    };

    // The baseline the acceptance contract names: unsharded,
    // single-threaded A-HTPGM via the density parameterization.
    let (base, base_secs) =
        time(|| mine_approximate_with_density(&data.syb, &data.seq, DENSITY, &cfg));
    let base_map = labelled(&base.result, data.seq.registry());

    // The one graph every composition below shares — same μ as the
    // baseline resolved to, asserted rather than assumed.
    let graph = CorrelationGraph::build_with_density(&data.syb, DENSITY);
    let mut approx_equal = (graph.mu() - base.mu).abs() < 1e-12;

    let mut report = Report::new(
        "approx_composition",
        &[
            "mode", "threads", "shards", "candidates", "patterns", "missing", "extra",
            "seconds", "equal",
        ],
    );
    report.row(vec![
        "sequential".into(),
        "1".into(),
        "1".into(),
        "-".into(),
        base.result.len().to_string(),
        "0".into(),
        "0".into(),
        secs(base_secs),
        "true".into(),
    ]);

    let mut json_rows = Vec::new();
    let mut check = |mode: &str,
                     threads: usize,
                     shards: usize,
                     candidates: Option<usize>,
                     result: &ftpm_core::MiningResult,
                     registry: &EventRegistry,
                     elapsed: std::time::Duration|
     -> bool {
        let map = labelled(result, registry);
        let missing = base_map.keys().filter(|l| !map.contains_key(*l)).count();
        let extra = map.keys().filter(|l| !base_map.contains_key(*l)).count();
        let stat_mismatches = base_map
            .iter()
            .filter(|(label, (supp, conf, clipped))| {
                map.get(*label).is_some_and(|(s, c, cl)| {
                    s != supp || (c - conf).abs() >= 1e-9 || cl != clipped
                })
            })
            .count();
        let equal = missing == 0 && extra == 0 && stat_mismatches == 0;
        report.row(vec![
            mode.into(),
            threads.to_string(),
            shards.to_string(),
            candidates.map_or("-".into(), |c| c.to_string()),
            result.len().to_string(),
            missing.to_string(),
            extra.to_string(),
            secs(elapsed),
            equal.to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"mode\": \"{mode}\", \"threads\": {threads}, \"shards\": {shards}, \
             \"candidates_proposed\": {}, \"patterns\": {}, \"missing\": {missing}, \
             \"extra\": {extra}, \"stat_mismatches\": {stat_mismatches}, \
             \"equal\": {equal}, \"seconds\": {}}}",
            candidates.map_or("null".into(), |c| c.to_string()),
            result.len(),
            elapsed.as_secs_f64(),
        ));
        equal
    };

    let (par, par_secs) =
        time(|| mine_approximate_parallel(&data.syb, &data.seq, graph.mu(), &cfg, 4));
    approx_equal &= check(
        "parallel",
        4,
        1,
        None,
        &par.result,
        data.seq.registry(),
        par_secs,
    );

    let plan = ShardPlanner::new(4)
        .plan(&data.syb, data.split, t_max)
        .expect("valid shard geometry");
    {
        let mut sink = CollectSink::new();
        let ((stats, reports), elapsed) =
            time(|| plan.mine_approximate_into(&graph, &cfg, 4, &mut sink));
        let result = sink.into_result(stats);
        let candidates = reports.iter().map(|r| r.candidates_proposed).sum();
        approx_equal &= check(
            "sharded support-complete",
            4,
            plan.shards().len(),
            Some(candidates),
            &result,
            plan.registry(),
            elapsed,
        );
    }
    let ((approx_result, approx_reports), elapsed) =
        time(|| plan.mine_approximate_exchange(&graph, &cfg, 4));
    let approx_candidates: usize =
        approx_reports.iter().map(|r| r.candidates_proposed).sum();
    approx_equal &= check(
        "sharded exchange",
        4,
        plan.shards().len(),
        Some(approx_candidates),
        &approx_result,
        plan.registry(),
        elapsed,
    );

    // The pruning claim: the exact exchange on the same plan enumerates
    // every pair MI would have rejected, so gating at propose time must
    // come in strictly under it.
    let ((_, exact_reports), _) = time(|| plan.mine_exchange(&cfg, 4));
    let exact_candidates: usize = exact_reports.iter().map(|r| r.candidates_proposed).sum();
    let propose_prunes = approx_candidates < exact_candidates;
    println!(
        "\nexchange candidates: {approx_candidates} with MI at propose time, \
         {exact_candidates} exact (post-hoc baseline) — pruning {}",
        if propose_prunes { "held" } else { "FAILED" }
    );
    report.finish();

    // Machine-readable summary for the CI approx-composition gate.
    let json = format!(
        "{{\n  \"experiment\": \"approx_composition\",\n  \"dataset\": \"{}\",\n  \
         \"windows\": {},\n  \"density\": {DENSITY},\n  \"mu\": {},\n  \
         \"t_max\": {t_max},\n  \"boundary\": \"true-extent\",\n  \"scale\": {},\n  \
         \"baseline_patterns\": {},\n  \
         \"approx_exchange_candidates\": {approx_candidates},\n  \
         \"exact_exchange_candidates\": {exact_candidates},\n  \
         \"approx_equal\": {approx_equal},\n  \
         \"propose_prunes\": {propose_prunes},\n  \"runs\": [\n{}\n  ]\n}}\n",
        data.name,
        data.seq.len(),
        graph.mu(),
        opts.scale,
        base.result.len(),
        json_rows.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    match std::fs::write("results/approx_composition.json", json) {
        Ok(()) => println!("wrote results/approx_composition.json"),
        Err(e) => eprintln!("could not write results/approx_composition.json: {e}"),
    }
    approx_equal && propose_prunes
}

/// Hot-path kernel speedup (beyond the paper; ROADMAP "Kernelize the hot
/// path"): times the block-unrolled CSA `Bitmap::and_count` kernel
/// against the retained scalar reference (`and_count_scalar`) at
/// L1-resident and cache-straddling operand sizes, the fused
/// `and_count_many` batch against the equivalent per-pair loop on
/// support bitmaps built from the energy demo itself, and one
/// end-to-end exact mine of the demo through the kernelized path.
///
/// The scalar "before" survives only as the bench/proptest reference —
/// the miner cannot be toggled back at runtime — so the microbenches
/// carry the before/after story and the end-to-end row pins the absolute
/// wall clock CI tracks across runs. All timings are best-of-N over
/// millisecond-scale samples: the CI container is a single shared core
/// with ±10% noise, and the minimum is the stable estimator there.
/// Writes `results/kernel_speedup.{csv,json}` and returns whether
/// `and_count` beat the scalar reference by ≥ 1.5× at any measured size
/// (the CI gate; the CSA kernel's design point is the ≥ 1024-word range).
pub fn kernel_speedup(opts: &Opts) -> bool {
    use std::collections::HashMap;
    use std::hint::black_box;
    use std::time::Instant;

    use ftpm_bitmap::Bitmap;
    use ftpm_events::EventId;

    const SAMPLES: usize = 9;
    /// u64 words touched per timed sample — keeps every sample around a
    /// millisecond so the best-of-N minimum is meaningful.
    const WORDS_PER_SAMPLE: usize = 1 << 22;

    println!("Kernel speedup: and_count / and_count_many (scale {})\n", opts.scale);

    // Best-of-N ns/call for a closure returning a count (black_boxed so
    // the intersection is not hoisted or dead-code-eliminated).
    let best_ns = |iters: usize, f: &mut dyn FnMut() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..SAMPLES {
            let mut sink = 0usize;
            let started = Instant::now();
            for _ in 0..iters {
                sink = sink.wrapping_add(black_box(f()));
            }
            let elapsed = started.elapsed().as_secs_f64();
            black_box(sink);
            best = best.min(elapsed);
        }
        best / iters as f64 * 1e9
    };

    // Deterministic ~50%-density operands (splitmix64 bit soup — the
    // worst case for popcount shortcuts, so the speedup is the kernel's,
    // not the data's).
    let random_bitmap = |words: usize, seed: u64| -> Bitmap {
        let mut bm = Bitmap::new(words * 64);
        let mut state = seed;
        for w in 0..words {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for b in 0..64 {
                if (z >> b) & 1 == 1 {
                    bm.set(w * 64 + b);
                }
            }
        }
        bm
    };

    let mut report = Report::new(
        "kernel_speedup",
        &["benchmark", "size", "baseline", "kernelized", "speedup"],
    );
    let mut json_rows = Vec::new();
    let mut best_speedup = 0.0f64;

    // 1. and_count: scalar reference vs the CSA kernel, at one
    //    L1-resident size and two that straddle L1/L2.
    for words in [256usize, 1024, 4096] {
        let a = random_bitmap(words, 0x0dd0_11ed + words as u64);
        let b = random_bitmap(words, 0xface_feed + words as u64);
        let iters = (WORDS_PER_SAMPLE / words).max(16);
        let scalar_ns = best_ns(iters, &mut || a.and_count_scalar(&b));
        let kernel_ns = best_ns(iters, &mut || a.and_count(&b));
        let speedup = scalar_ns / kernel_ns;
        best_speedup = best_speedup.max(speedup);
        report.row(vec![
            "and_count".into(),
            format!("{words} w"),
            format!("{scalar_ns:.0} ns"),
            format!("{kernel_ns:.0} ns"),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "    {{\"benchmark\": \"and_count\", \"words\": {words}, \
             \"scalar_ns\": {scalar_ns:.1}, \"kernel_ns\": {kernel_ns:.1}, \
             \"speedup\": {speedup:.3}}}"
        ));
    }
    let and_count_ok = best_speedup >= 1.5;

    // 2. and_count_many: the grow-candidates batch (one candidate bitmap
    //    intersected with every Lemma-5 survivor) vs the per-pair loop it
    //    replaced — once at the CSA kernel's design size with synthetic
    //    operands, once on the demo's real per-event support bitmaps
    //    (tiny universes, where the batch must at least not regress).
    let mut fused_bench = |label: &str, candidate: &Bitmap, partners: &[&Bitmap]| {
        let words = candidate.len().div_ceil(64);
        let words_touched = partners.len() * words;
        let iters = (WORDS_PER_SAMPLE / words_touched.max(1)).max(16);
        let mut counts = Vec::new();
        let pairwise_ns = best_ns(iters, &mut || {
            partners.iter().map(|p| candidate.and_count(p)).sum()
        });
        let fused_ns = best_ns(iters, &mut || {
            candidate.and_count_many(partners, &mut counts);
            counts.iter().sum()
        });
        let speedup = pairwise_ns / fused_ns;
        report.row(vec![
            "and_count_many".into(),
            format!("{label} {}x{words} w", partners.len()),
            format!("{pairwise_ns:.0} ns"),
            format!("{fused_ns:.0} ns"),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(format!(
            "    {{\"benchmark\": \"and_count_many\", \"operands\": \"{label}\", \
             \"partners\": {}, \"words\": {words}, \"pairwise_ns\": {pairwise_ns:.1}, \
             \"fused_ns\": {fused_ns:.1}, \"speedup\": {speedup:.3}}}",
            partners.len(),
        ));
    };
    {
        let candidate = random_bitmap(1024, 0xc0ffee);
        let partner_bitmaps: Vec<Bitmap> = (0..8)
            .map(|i| random_bitmap(1024, 0xbeef + i as u64))
            .collect();
        let partners: Vec<&Bitmap> = partner_bitmaps.iter().collect();
        fused_bench("synthetic", &candidate, &partners);
    }
    let data = nist_like(opts.scale);
    let n_seqs = data.seq.len();
    let mut by_event: HashMap<EventId, Bitmap> = HashMap::new();
    for (si, seq) in data.seq.sequences().iter().enumerate() {
        for inst in seq.instances() {
            by_event
                .entry(inst.event)
                .or_insert_with(|| Bitmap::new(n_seqs))
                .set(si);
        }
    }
    let mut supports: Vec<Bitmap> = by_event.into_values().collect();
    supports.sort_by_key(|b| std::cmp::Reverse(b.count_ones()));
    if supports.len() >= 3 {
        let partners: Vec<&Bitmap> = supports[1..].iter().collect();
        fused_bench("demo", &supports[0], &partners);
    }

    // 3. End to end: one exact mine of the demo through the kernelized
    //    verify path — the absolute number CI archives run over run.
    let cfg = config(0.4, 0.4, opts);
    let (result, elapsed) = time(|| mine_exact(&data.seq, &cfg));
    report.row(vec![
        "mine_exact".into(),
        format!("{} windows", n_seqs),
        "-".into(),
        format!("{} s", secs(elapsed)),
        "-".into(),
    ]);
    report.finish();

    // Machine-readable summary for the CI kernel-speedup gate.
    let json = format!(
        "{{\n  \"experiment\": \"kernel_speedup\",\n  \"dataset\": \"{}\",\n  \
         \"scale\": {},\n  \"samples\": {SAMPLES},\n  \
         \"and_count_best_speedup\": {best_speedup:.3},\n  \
         \"and_count_speedup_ok\": {and_count_ok},\n  \
         \"end_to_end\": {{\"sigma\": 0.4, \"delta\": 0.4, \
         \"seconds\": {:.6}, \"patterns\": {}}},\n  \"runs\": [\n{}\n  ]\n}}\n",
        data.name,
        opts.scale,
        elapsed.as_secs_f64(),
        result.len(),
        json_rows.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    match std::fs::write("results/kernel_speedup.json", json) {
        Ok(()) => println!("wrote results/kernel_speedup.json"),
        Err(e) => eprintln!("could not write results/kernel_speedup.json: {e}"),
    }
    and_count_ok
}

/// Hash-consed pattern-pool speedup gate (beyond the paper; ROADMAP
/// "hash-consed pattern pool"): A/B of the merge accumulation hot path —
/// the retired pattern-keyed design (clone every emitted [`Pattern`]
/// into a `HashMap<Pattern, stats>`, re-hashing the full event/relation
/// vectors per emission) against the pooled design that interns each
/// pattern once and accumulates in flat columns indexed by `PatternId`.
///
/// The A side survives only inside this benchmark — the miner cannot be
/// toggled back — so the microbench carries the before/after story; the
/// end-to-end rows pin the absolute exchange/merge wall clock CI tracks
/// across runs. Timings are best-of-N minima (single shared CI core);
/// allocation counts come from the tracking allocator and are exact.
/// Writes `results/intern_speedup.{csv,json}` and returns whether the
/// pooled path beat the pattern-keyed path ≥ 1.3× on accumulation wall
/// time, or cut its allocation count ≥ 5× (the CI gate — the allocation
/// arm keeps the gate meaningful on a noisy one-core container).
pub fn intern_speedup(opts: &Opts) -> bool {
    use std::collections::HashMap;
    use std::hint::black_box;
    use std::time::Instant;

    use ftpm_core::{Pattern, PatternPool, ShardPlanner};

    use crate::alloc_track::measure_allocs;

    const SAMPLES: usize = 9;
    /// Simulated shard count: each distinct pattern is emitted once per
    /// "shard", as the merge seam sees it in a sharded run.
    const SHARDS: usize = 4;

    println!(
        "Pattern-pool intern speedup: pattern-keyed vs id-keyed merge \
         accumulation (scale {})\n",
        opts.scale
    );

    // The workload: the real pattern set of the nist demo, emitted
    // SHARDS times into the accumulator (what ShardMerge sees).
    let data = nist_like(opts.scale);
    let cfg = config(0.4, 0.4, opts);
    let result = mine_exact(&data.seq, &cfg);
    let patterns: Vec<Pattern> = result.patterns.iter().map(|p| p.pattern.clone()).collect();
    let n_roots = data.seq.registry().len();

    // A: the retired design — owned-Pattern keys, one clone + one
    // whole-vector hash per emission.
    let keyed = || {
        let mut map: HashMap<Pattern, (usize, usize)> = HashMap::new();
        for _ in 0..SHARDS {
            for p in &patterns {
                let entry = map.entry(p.clone()).or_insert((0, 0));
                entry.0 += 1;
            }
        }
        map.len()
    };
    // B: the pooled design — intern once, accumulate by u32 id.
    let pooled = || {
        let mut pool = PatternPool::with_roots(n_roots);
        let mut entries: Vec<(usize, usize)> = Vec::new();
        for _ in 0..SHARDS {
            for p in &patterns {
                let id = pool.intern(p);
                if entries.len() <= id.0 as usize {
                    entries.resize(pool.len(), (0, 0));
                }
                entries[id.0 as usize].0 += 1;
            }
        }
        entries.iter().filter(|e| e.0 > 0).count()
    };

    let best_s = |f: &mut dyn FnMut() -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..SAMPLES {
            let started = Instant::now();
            let out = black_box(f());
            let elapsed = started.elapsed().as_secs_f64();
            black_box(out);
            best = best.min(elapsed);
        }
        best
    };

    let emissions = SHARDS * patterns.len();
    let mut keyed_run = keyed;
    let mut pooled_run = pooled;
    let keyed_s = best_s(&mut keyed_run);
    let pooled_s = best_s(&mut pooled_run);
    let speedup = keyed_s / pooled_s;
    let (_, keyed_allocs) = measure_allocs(keyed);
    let (_, pooled_allocs) = measure_allocs(pooled);
    let alloc_ratio = keyed_allocs as f64 / pooled_allocs.max(1) as f64;

    let mut report = Report::new(
        "intern_speedup",
        &["benchmark", "size", "pattern-keyed", "pooled", "improvement"],
    );
    report.row(vec![
        "accumulate".into(),
        format!("{emissions} emissions"),
        format!("{:.0} ns/em", keyed_s / emissions.max(1) as f64 * 1e9),
        format!("{:.0} ns/em", pooled_s / emissions.max(1) as f64 * 1e9),
        format!("{speedup:.2}x"),
    ]);
    report.row(vec![
        "allocations".into(),
        format!("{emissions} emissions"),
        format!("{keyed_allocs}"),
        format!("{pooled_allocs}"),
        format!("{alloc_ratio:.1}x fewer"),
    ]);

    // End to end: the exchange and support-complete sharded runs of the
    // same demo — the two paths whose inner loops the pool rewired —
    // plus the unsharded baseline for context. Absolute wall clock only;
    // CI archives these run over run.
    let plan = ShardPlanner::new(4)
        .plan(&data.syb, data.split, cfg.relation.t_max)
        .expect("demo geometry shards cleanly");
    let (exchange_out, exchange_wall) = time(|| plan.mine_exchange(&cfg, 1));
    let (merged_out, merge_wall) = time(|| plan.mine(&cfg, 1));
    report.row(vec![
        "mine_exchange".into(),
        format!("{} windows, 4 shards", plan.n_windows()),
        "-".into(),
        format!("{} s", secs(exchange_wall)),
        "-".into(),
    ]);
    report.row(vec![
        "mine_sharded".into(),
        format!("{} windows, 4 shards", plan.n_windows()),
        "-".into(),
        format!("{} s", secs(merge_wall)),
        "-".into(),
    ]);
    report.finish();
    assert_eq!(
        exchange_out.0.len(),
        merged_out.len(),
        "exchange and support-complete merges must agree on the demo"
    );

    let ok = speedup >= 1.3 || alloc_ratio >= 5.0;
    let json = format!(
        "{{\n  \"experiment\": \"intern_speedup\",\n  \"dataset\": \"{}\",\n  \
         \"scale\": {},\n  \"samples\": {SAMPLES},\n  \"shards\": {SHARDS},\n  \
         \"patterns\": {},\n  \"emissions\": {emissions},\n  \
         \"keyed_s\": {keyed_s:.6},\n  \"pooled_s\": {pooled_s:.6},\n  \
         \"accumulate_speedup\": {speedup:.3},\n  \
         \"keyed_allocs\": {keyed_allocs},\n  \"pooled_allocs\": {pooled_allocs},\n  \
         \"alloc_ratio\": {alloc_ratio:.3},\n  \
         \"exchange_wall_ms\": {:.3},\n  \"merge_wall_ms\": {:.3},\n  \
         \"intern_speedup_ok\": {ok}\n}}\n",
        data.name,
        opts.scale,
        patterns.len(),
        exchange_wall.as_secs_f64() * 1e3,
        merge_wall.as_secs_f64() * 1e3,
    );
    let _ = std::fs::create_dir_all("results");
    match std::fs::write("results/intern_speedup.json", json) {
        Ok(()) => println!("wrote results/intern_speedup.json"),
        Err(e) => eprintln!("could not write results/intern_speedup.json: {e}"),
    }
    ok
}

fn scalability(name: &str, data: &Dataset, opts: &Opts, by_sequences: bool) {
    let methods = [
        Method::AHtpgm(0.6),
        Method::EHtpgm,
        Method::TPMiner,
        Method::IEMiner,
        Method::HDfs,
    ];
    let mut report = Report::new(
        name,
        &["setting", "x%", "method", "seconds", "patterns"],
    );
    for sd in [0.2, 0.5, 0.8] {
        let cfg = config(sd, sd, opts);
        for pct in [20, 40, 60, 80, 100] {
            let sub = if by_sequences {
                data.take_sequences(data.seq.len() * pct / 100)
            } else {
                data.project_variables(data.syb.n_variables() * pct / 100)
            };
            for method in methods {
                let (r, elapsed) = time(|| method.run(&sub, &cfg));
                report.row(vec![
                    format!("supp=conf={:.0}%", sd * 100.0),
                    pct.to_string(),
                    method.label(),
                    secs(elapsed),
                    r.len().to_string(),
                ]);
            }
        }
    }
    report.finish();
}

/// Systematic schedule sweep (beyond the paper; ROADMAP "deterministic
/// schedule checking"): [`ftpm_core::Explorer`] walks *every* two-worker
/// interleaving of the parallel miner and of the candidate-exchange
/// executor on a small on/off workload — each run's output must be
/// bit-identical to the single-threaded baseline — then every
/// at-most-one-preemption interleaving at four workers (the regime
/// scheduler bugs live in; K = 4 is too wide to exhaust outright).
/// Writes `results/schedule_sweep.{csv,json}` and returns whether every
/// sweep was exhaustive, uncapped and divergence-free (the CI gate).
pub fn schedule_sweep() -> bool {
    use std::collections::HashMap;

    use ftpm_core::{ExploreStats, Explorer, MiningResult, Schedule, ShardPlanner};
    use ftpm_events::{
        to_sequence_database, BoundaryPolicy, EventRegistry, RelationConfig, SplitConfig,
    };
    use ftpm_timeseries::{Alphabet, SymbolId, SymbolicDatabase, SymbolicSeries};

    // Deterministic pseudo-random on/off database (xorshift64*), the
    // generator idiom of the schedule-invariance tests. The workload must
    // stay tiny: the interleaving space is exponential in the number of
    // contended task claims, and the whole point is to exhaust it.
    fn random_syb(seed: u64, vars: usize, n_steps: usize, max_run: u64) -> SymbolicDatabase {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545f4914f6cdd1d)
        };
        let mut db = SymbolicDatabase::new(0, 5, n_steps);
        for v in 0..vars {
            let mut symbols = Vec::with_capacity(n_steps);
            let mut sym = SymbolId((next() % 2) as u16);
            while symbols.len() < n_steps {
                let run = 1 + (next() % max_run) as usize;
                for _ in 0..run.min(n_steps - symbols.len()) {
                    symbols.push(sym);
                }
                sym = SymbolId(1 - sym.0);
            }
            db.push(SymbolicSeries::new(
                format!("V{v}"),
                Alphabet::on_off(),
                symbols,
            ));
        }
        db
    }

    type Labelled = HashMap<String, (usize, f64, usize)>;
    fn labelled(result: &MiningResult, reg: &EventRegistry) -> Labelled {
        result
            .patterns
            .iter()
            .map(|p| {
                (
                    p.pattern.display(reg).to_string(),
                    (p.support, p.confidence, p.clipped_occurrences),
                )
            })
            .collect()
    }
    fn divergence(base: &Labelled, other: &Labelled) -> Option<String> {
        for (label, (supp, conf, clipped)) in base {
            match other.get(label) {
                None => return Some(format!("lost pattern {label}")),
                Some((s, c, cl)) => {
                    if s != supp || (c - conf).abs() >= 1e-9 || cl != clipped {
                        return Some(format!("stats diverged on {label}"));
                    }
                }
            }
        }
        if base.len() != other.len() {
            return Some(format!(
                "fabricated patterns: {} vs baseline {}",
                other.len(),
                base.len()
            ));
        }
        None
    }

    let cfg = MinerConfig::new(0.3, 0.4)
        .with_max_events(3)
        .with_relation(RelationConfig::new(0, 1, 60).with_boundary(BoundaryPolicy::TrueExtent));
    println!("Schedule sweep: systematic interleaving exploration (mini-loom)\n");

    let mut report = Report::new(
        "schedule_sweep",
        &[
            "sweep", "workers", "preemption_bound", "schedules", "distinct_traces",
            "max_decisions", "exhausted", "capped", "equal", "seconds",
        ],
    );
    let mut json_rows = Vec::new();
    let mut all_ok = true;
    let mut record = |name: &str,
                      workers: usize,
                      bound: Option<usize>,
                      outcome: Result<ExploreStats, String>,
                      elapsed: std::time::Duration| {
        let bound_cell = bound.map_or("none".to_owned(), |b| b.to_string());
        let bound_json = bound.map_or("null".to_owned(), |b| b.to_string());
        let (stats, equal) = match outcome {
            Ok(stats) => (stats, true),
            Err(why) => {
                eprintln!("schedule sweep {name}: {why}");
                (
                    ExploreStats {
                        schedules: 0,
                        distinct_traces: 0,
                        max_decisions: 0,
                        exhausted: false,
                        capped: false,
                    },
                    false,
                )
            }
        };
        let ok = equal && stats.exhausted && !stats.capped;
        all_ok = all_ok && ok;
        report.row(vec![
            name.to_owned(),
            workers.to_string(),
            bound_cell,
            stats.schedules.to_string(),
            stats.distinct_traces.to_string(),
            stats.max_decisions.to_string(),
            stats.exhausted.to_string(),
            stats.capped.to_string(),
            equal.to_string(),
            secs(elapsed),
        ]);
        json_rows.push(format!(
            "    {{\"sweep\": \"{name}\", \"workers\": {workers}, \
             \"preemption_bound\": {bound_json}, \"schedules\": {}, \
             \"distinct_traces\": {}, \"max_decisions\": {}, \
             \"exhausted\": {}, \"capped\": {}, \"equal\": {equal}}}",
            stats.schedules, stats.distinct_traces, stats.max_decisions,
            stats.exhausted, stats.capped,
        ));
    };

    // Sweep 1: every 2-worker interleaving of the parallel miner.
    let syb = random_syb(42, 2, 60, 5);
    let seq = to_sequence_database(&syb, SplitConfig::new(30, 0));
    let base = labelled(&mine_exact(&seq, &cfg), seq.registry());
    let (outcome, elapsed) = time(|| {
        Explorer::new(2).with_max_schedules(50_000).explore(|sched: &Schedule| {
            let run = sched.mine_parallel(&seq, &cfg);
            match divergence(&base, &labelled(&run, seq.registry())) {
                None => Ok(()),
                Some(d) => Err(format!("parallel trace {:?}: {d}", sched.trace())),
            }
        })
    });
    record("parallel", 2, None, outcome, elapsed);

    // Sweep 2: every 2-worker interleaving of the exchange executor's
    // propose -> gate -> expand rounds across 2 shards.
    let syb_x = random_syb(7, 2, 100, 6);
    let split = SplitConfig::new(50, 0);
    let seq_x = to_sequence_database(&syb_x, split);
    let base_x = labelled(&mine_exact(&seq_x, &cfg), seq_x.registry());
    let plan = ShardPlanner::new(2)
        .plan(&syb_x, split, cfg.relation.t_max)
        .expect("valid shard geometry");
    let (outcome, elapsed) = time(|| {
        Explorer::new(2).with_max_schedules(50_000).explore(|sched: &Schedule| {
            let (run, _) = sched.mine_exchange(&plan, &cfg);
            match divergence(&base_x, &labelled(&run, plan.registry())) {
                None => Ok(()),
                Some(d) => Err(format!("exchange trace {:?}: {d}", sched.trace())),
            }
        })
    });
    record("exchange", 2, None, outcome, elapsed);

    // Sweep 3: 4 workers under a preemption bound of 1 — exhaustive
    // *within the bound*.
    let (outcome, elapsed) = time(|| {
        Explorer::new(4)
            .with_preemption_bound(1)
            .with_max_schedules(50_000)
            .explore(|sched: &Schedule| {
                let run = sched.mine_parallel(&seq, &cfg);
                match divergence(&base, &labelled(&run, seq.registry())) {
                    None => Ok(()),
                    Some(d) => Err(format!("bounded trace {:?}: {d}", sched.trace())),
                }
            })
    });
    record("parallel_bounded", 4, Some(1), outcome, elapsed);

    report.finish();

    // Machine-readable summary for the CI schedule-sweep gate.
    let json = format!(
        "{{\n  \"experiment\": \"schedule_sweep\",\n  \
         \"explorer\": \"dfs, symmetry-reduced, state-hash deduplicated\",\n  \
         \"schedule_sweep_ok\": {all_ok},\n  \"sweeps\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
    );
    let _ = std::fs::create_dir_all("results");
    match std::fs::write("results/schedule_sweep.json", json) {
        Ok(()) => println!("wrote results/schedule_sweep.json"),
        Err(e) => eprintln!("could not write results/schedule_sweep.json: {e}"),
    }
    all_ok
}
