//! Criterion counterpart of Figs 6/7: the E-HTPGM pruning ablation.
//! `cargo bench -p ftpm-bench --bench fig6_ablation`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftpm_core::{mine_exact, MinerConfig, PruningConfig};
use ftpm_datagen::nist_like;

fn bench_ablation(c: &mut Criterion) {
    let data = nist_like(0.008);
    let variants = [
        ("NoPrune", PruningConfig::NO_PRUNE),
        ("Apriori", PruningConfig::APRIORI),
        ("Trans", PruningConfig::TRANSITIVITY),
        ("All", PruningConfig::ALL),
    ];
    let mut group = c.benchmark_group("fig6");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for (label, pruning) in variants {
        let cfg = MinerConfig::new(0.4, 0.4)
            .with_max_events(3)
            .with_pruning(pruning);
        group.bench_with_input(BenchmarkId::new(label, &data.name), &data, |b, data| {
            b.iter(|| mine_exact(&data.seq, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
