//! Criterion counterpart of Table VII: runtime of every miner on
//! NIST-like and SmartCity-like data at a representative threshold
//! setting. `cargo bench -p ftpm-bench --bench table7_runtime`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftpm_bench::Method;
use ftpm_core::MinerConfig;
use ftpm_datagen::{nist_like, smartcity_like};

fn bench_miners(c: &mut Criterion) {
    // Small but structured inputs so the whole suite stays in CI budget.
    let datasets = [nist_like(0.008), smartcity_like(0.008)];
    let cfg = MinerConfig::new(0.5, 0.5).with_max_events(3);

    let mut group = c.benchmark_group("table7");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for data in &datasets {
        for method in [
            Method::HDfs,
            Method::IEMiner,
            Method::TPMiner,
            Method::EHtpgm,
            Method::AHtpgm(0.6),
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), &data.name),
                data,
                |b, data| b.iter(|| method.run(data, &cfg)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);
