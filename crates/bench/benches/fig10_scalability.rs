//! Criterion counterpart of Figs 10–13: how E-HTPGM and A-HTPGM scale
//! with the number of sequences and attributes.
//! `cargo bench -p ftpm-bench --bench fig10_scalability`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftpm_core::{mine_approximate_with_density, mine_exact, MinerConfig};
use ftpm_datagen::nist_like;

fn bench_scalability(c: &mut Criterion) {
    let data = nist_like(0.012);
    let cfg = MinerConfig::new(0.5, 0.5).with_max_events(3);

    let mut group = c.benchmark_group("fig10_sequences");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for pct in [25usize, 50, 100] {
        let sub = data.take_sequences(data.seq.len() * pct / 100);
        group.throughput(Throughput::Elements(sub.seq.len() as u64));
        group.bench_with_input(BenchmarkId::new("E-HTPGM", pct), &sub, |b, sub| {
            b.iter(|| mine_exact(&sub.seq, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("A-HTPGM-60", pct), &sub, |b, sub| {
            b.iter(|| mine_approximate_with_density(&sub.syb, &sub.seq, 0.6, &cfg))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig12_attributes");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for pct in [25usize, 50, 100] {
        let sub = data.project_variables(data.syb.n_variables() * pct / 100);
        group.bench_with_input(BenchmarkId::new("E-HTPGM", pct), &sub, |b, sub| {
            b.iter(|| mine_exact(&sub.seq, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("A-HTPGM-60", pct), &sub, |b, sub| {
            b.iter(|| mine_approximate_with_density(&sub.syb, &sub.seq, 0.6, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
