//! Micro-benchmarks of the substrates HTPGM's speed rests on: bitmap
//! AND/popcount (support counting), relation determination, NMI
//! computation, and the D_SYB → D_SEQ conversion.
//! `cargo bench -p ftpm-bench --bench micro_substrates`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ftpm_events::{to_sequence_database, RelationConfig, SplitConfig};
use ftpm_mi::normalized_mutual_information;

fn bench_bitmap(c: &mut Criterion) {
    use ftpm_bitmap::Bitmap;
    let a = Bitmap::from_indices(4096, (0..4096).filter(|i| i % 3 == 0));
    let b = Bitmap::from_indices(4096, (0..4096).filter(|i| i % 7 == 0));
    c.bench_function("bitmap_and_count_4096", |bench| {
        bench.iter(|| {
            let j = a.and(&b);
            std::hint::black_box(j.count_ones())
        })
    });
}

fn bench_relation(c: &mut Criterion) {
    use ftpm_events::Interval;
    let cfg = RelationConfig::default();
    let pairs: Vec<(Interval, Interval)> = (0..512)
        .map(|i| {
            let s = (i * 7) % 100;
            (
                Interval::new(s, s + 10 + i % 13),
                Interval::new(s + i % 11, s + i % 11 + 9),
            )
        })
        .map(|(a, b)| {
            if (a.start, a.end) <= (b.start, b.end) {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();
    c.bench_function("relate_512_pairs", |bench| {
        bench.iter(|| {
            pairs
                .iter()
                .filter_map(|(a, b)| cfg.relate(a, b))
                .count()
        })
    });
}

fn bench_nmi(c: &mut Criterion) {
    let data = ftpm_datagen::nist_like(0.01);
    let x = data.syb.series(ftpm_timeseries::VariableId(0)).clone();
    let y = data.syb.series(ftpm_timeseries::VariableId(1)).clone();
    c.bench_function("nmi_pair", |bench| {
        bench.iter(|| std::hint::black_box(normalized_mutual_information(&x, &y)))
    });
}

fn bench_conversion(c: &mut Criterion) {
    let data = ftpm_datagen::nist_like(0.01);
    c.bench_function("syb_to_seq_conversion", |bench| {
        bench.iter_batched(
            || data.syb.clone(),
            |syb| to_sequence_database(&syb, SplitConfig::new(360, 0)),
            BatchSize::LargeInput,
        )
    });
}

fn all(c: &mut Criterion) {
    bench_bitmap(c);
    bench_relation(c);
    bench_nmi(c);
    bench_conversion(c);
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = all
}
criterion_main!(benches);
