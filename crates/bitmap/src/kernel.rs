//! Word-level kernels behind the [`crate::Bitmap`] operations.
//!
//! This module is the one place in the workspace where raw `u64` word
//! loops are written out by hand; everything else goes through the
//! `Bitmap` API. Two implementation idioms live here:
//!
//! * **Lane-unrolled loops** (`count_ones_words`, `and_words`,
//!   `or_words`, the assign variants, `is_disjoint_words`): iterate over
//!   [`slice::chunks_exact`] blocks of [`LANES`] words with the lane
//!   body written element-wise over fixed-size arrays, plus a scalar
//!   tail. LLVM turns the fixed-size lane bodies into SSE2 vector ops
//!   on the stable baseline target (no `portable_simd`, no `unsafe`,
//!   no runtime feature detection).
//! * **A carry-save-adder (Harley–Seal) popcount tree**
//!   (`and_count_words`): the fused AND+popcount behind every Apriori
//!   gate. Instead of popcounting each word (≈15 SWAR ops per word on
//!   a baseline x86-64 without `popcnt`), a block of 32 words is
//!   reduced through a tree of carry-save adders (5 cheap bitwise ops
//!   each) so only one two-lane popcount is paid per block. The tree
//!   is written over `[u64; 2]` lanes so the superword-level
//!   vectorizer maps it onto 128-bit registers; measured against the
//!   auto-vectorized scalar loop this is a ≥1.5× win on this container
//!   (see `repro_kernels`).
//!
//! Every kernel has a `*_scalar` reference — the loop the pre-kernel
//! `Bitmap` methods used — and property tests in `crate::tests` pin the
//! kernels to those references over arbitrary lengths (zero, sub-lane
//! tails, exact lane multiples).
//!
//! Mismatched operand lengths are tolerated: binary kernels operate on
//! the common word prefix, leaving the length contract (a
//! `debug_assert`) to the `Bitmap` layer.

/// Unroll width, in words, of the lane-unrolled kernels.
pub const LANES: usize = 4;

/// Words per block of the carry-save-adder `and_count` tree. Public so
/// the `Bitmap` layer can route sub-block universes around the batched
/// kernel's per-partner state allocation.
pub const CSA_BLOCK: usize = 32;

/// Two 64-bit lanes — the shape the superword vectorizer folds into one
/// 128-bit register on the SSE2 baseline.
type W2 = [u64; 2];

const W2_ZERO: W2 = [0, 0];

/// Loads lanes `i, i+1` of the fused AND of `a` and `b`.
#[inline(always)]
fn wand(a: &[u64], b: &[u64], i: usize) -> W2 {
    [a[i] & b[i], a[i + 1] & b[i + 1]]
}

/// Carry-save adder over two lanes: returns `(sum, carry)` with
/// `a + b + c = sum + 2·carry` bitwise per lane.
#[inline(always)]
fn csa(a: W2, b: W2, c: W2) -> (W2, W2) {
    let u = [a[0] ^ b[0], a[1] ^ b[1]];
    (
        [u[0] ^ c[0], u[1] ^ c[1]],
        [(a[0] & b[0]) | (u[0] & c[0]), (a[1] & b[1]) | (u[1] & c[1])],
    )
}

/// Popcount of both lanes.
#[inline(always)]
fn wpop(w: W2) -> usize {
    (w[0].count_ones() + w[1].count_ones()) as usize
}

/// Running Harley–Seal state: per-weight carry words accumulated across
/// blocks, popcounted only once at the end of the pass.
#[derive(Clone, Copy)]
struct CsaState {
    ones: W2,
    twos: W2,
    fours: W2,
    eights: W2,
    /// Popcount of the weight-16 carries, accumulated per block.
    pop16: usize,
}

impl CsaState {
    const fn new() -> Self {
        CsaState {
            ones: W2_ZERO,
            twos: W2_ZERO,
            fours: W2_ZERO,
            eights: W2_ZERO,
            pop16: 0,
        }
    }

    /// Folds one 32-word block of `a & b` into the state. `ca` and `cb`
    /// must hold at least [`CSA_BLOCK`] words.
    #[inline(always)]
    fn block(&mut self, ca: &[u64], cb: &[u64]) {
        let (o, t_a) = csa(self.ones, wand(ca, cb, 0), wand(ca, cb, 2));
        let (o, t_b) = csa(o, wand(ca, cb, 4), wand(ca, cb, 6));
        let (t, f_a) = csa(self.twos, t_a, t_b);
        let (o, t_a) = csa(o, wand(ca, cb, 8), wand(ca, cb, 10));
        let (o, t_b) = csa(o, wand(ca, cb, 12), wand(ca, cb, 14));
        let (t, f_b) = csa(t, t_a, t_b);
        let (f, e_a) = csa(self.fours, f_a, f_b);
        let (o, t_a) = csa(o, wand(ca, cb, 16), wand(ca, cb, 18));
        let (o, t_b) = csa(o, wand(ca, cb, 20), wand(ca, cb, 22));
        let (t, f_a2) = csa(t, t_a, t_b);
        let (o, t_a) = csa(o, wand(ca, cb, 24), wand(ca, cb, 26));
        let (o, t_b) = csa(o, wand(ca, cb, 28), wand(ca, cb, 30));
        let (t, f_b2) = csa(t, t_a, t_b);
        let (f, e_b) = csa(f, f_a2, f_b2);
        let (e, sixteens) = csa(self.eights, e_a, e_b);
        self.pop16 += wpop(sixteens);
        self.ones = o;
        self.twos = t;
        self.fours = f;
        self.eights = e;
    }

    /// Total popcount represented by the state.
    #[inline]
    fn finish(self) -> usize {
        16 * self.pop16
            + 8 * wpop(self.eights)
            + 4 * wpop(self.fours)
            + 2 * wpop(self.twos)
            + wpop(self.ones)
    }
}

/// Fused AND + popcount over the common word prefix of `a` and `b`.
pub fn and_count_words(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let ac = a.chunks_exact(CSA_BLOCK);
    let bc = b.chunks_exact(CSA_BLOCK);
    let (at, bt) = (ac.remainder(), bc.remainder());
    let mut state = CsaState::new();
    for (ca, cb) in ac.zip(bc) {
        state.block(ca, cb);
    }
    let mut total = state.finish();
    for (x, y) in at.iter().zip(bt) {
        total += (x & y).count_ones() as usize;
    }
    total
}

/// Scalar reference for [`and_count_words`]: the loop `Bitmap::and_count`
/// used before the kernel layer. Kept as the property-test pin and the
/// "before" arm of the `repro_kernels` microbenchmark.
pub fn and_count_words_scalar(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// Fused AND + popcount of one candidate against several partners in a
/// single pass: `a` is walked block by block, and for each block every
/// partner folds it into its own carry-save state — the candidate's
/// words stay hot in registers/L1 across all partners instead of being
/// re-streamed once per pair. Returns one count per partner, over each
/// common word prefix.
pub fn and_count_many_words(a: &[u64], partners: &[&[u64]], counts: &mut Vec<usize>) {
    counts.clear();
    if partners.is_empty() {
        return;
    }
    // Only the prefix every partner covers goes through the blocked
    // pass; per-partner leftovers are finished individually below.
    let n_all = partners
        .iter()
        .fold(a.len(), |n, p| n.min(p.len()));
    let blocks = n_all / CSA_BLOCK;
    let mut states = vec![CsaState::new(); partners.len()];
    for blk in 0..blocks {
        let lo = blk * CSA_BLOCK;
        let ca = &a[lo..lo + CSA_BLOCK];
        for (state, p) in states.iter_mut().zip(partners) {
            state.block(ca, &p[lo..lo + CSA_BLOCK]);
        }
    }
    let done = blocks * CSA_BLOCK;
    for (state, p) in states.into_iter().zip(partners) {
        counts.push(state.finish() + and_count_words_scalar(&a[done..], &p[done..]));
    }
}

/// Popcount of a word slice, [`LANES`] independent accumulators per
/// block so the adds do not form one dependency chain.
pub fn count_ones_words(words: &[u64]) -> usize {
    let chunks = words.chunks_exact(LANES);
    let tail = chunks.remainder();
    let mut acc = [0usize; LANES];
    for c in chunks {
        for l in 0..LANES {
            acc[l] += c[l].count_ones() as usize;
        }
    }
    let mut total: usize = acc.iter().sum();
    for w in tail {
        total += w.count_ones() as usize;
    }
    total
}

/// Scalar reference for [`count_ones_words`].
pub fn count_ones_words_scalar(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// True iff `a & b` is all-zero on the common word prefix, giving up at
/// the first nonzero lane block — gates that only need a zero/nonzero
/// answer skip the full popcount pass.
pub fn is_disjoint_words(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let ac = a.chunks_exact(LANES);
    let bc = b.chunks_exact(LANES);
    let (at, bt) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        let mut any = 0u64;
        for l in 0..LANES {
            any |= ca[l] & cb[l];
        }
        if any != 0 {
            return false;
        }
    }
    at.iter().zip(bt).all(|(x, y)| x & y == 0)
}

/// `out = a & b`, lane-unrolled. `out` is cleared first.
pub fn and_words(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    out.clear();
    out.reserve(a.len().min(b.len()));
    binary_words(a, b, out, |x, y| x & y);
}

/// `out = a | b`, lane-unrolled. `out` is cleared first.
pub fn or_words(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    out.clear();
    out.reserve(a.len().min(b.len()));
    binary_words(a, b, out, |x, y| x | y);
}

#[inline(always)]
fn binary_words(a: &[u64], b: &[u64], out: &mut Vec<u64>, op: impl Fn(u64, u64) -> u64) {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let ac = a.chunks_exact(LANES);
    let bc = b.chunks_exact(LANES);
    let (at, bt) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        let mut lane = [0u64; LANES];
        for l in 0..LANES {
            lane[l] = op(ca[l], cb[l]);
        }
        out.extend_from_slice(&lane);
    }
    for (x, y) in at.iter().zip(bt) {
        out.push(op(*x, *y));
    }
}

/// `a &= b` in place, lane-unrolled over the common prefix.
pub fn and_assign_words(a: &mut [u64], b: &[u64]) {
    assign_words(a, b, |x, y| x & y);
}

/// `a |= b` in place, lane-unrolled over the common prefix.
pub fn or_assign_words(a: &mut [u64], b: &[u64]) {
    assign_words(a, b, |x, y| x | y);
}

#[inline(always)]
fn assign_words(a: &mut [u64], b: &[u64], op: impl Fn(u64, u64) -> u64) {
    let n = a.len().min(b.len());
    let (a, b) = (&mut a[..n], &b[..n]);
    let ac = a.chunks_exact_mut(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut tail_at = 0usize;
    for (ca, cb) in ac.zip(&mut bc) {
        for l in 0..LANES {
            ca[l] = op(ca[l], cb[l]);
        }
        tail_at += LANES;
    }
    let bt = bc.remainder();
    for (x, y) in a[tail_at..].iter_mut().zip(bt) {
        *x = op(*x, *y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Word vectors whose lengths sweep 0, sub-lane tails, exact lane
    /// multiples, and several CSA blocks.
    fn words(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(0u64..u64::MAX, 0..max_len + 1)
    }

    #[test]
    fn and_count_exact_block_and_tail_lengths() {
        for len in [0, 1, LANES - 1, LANES, CSA_BLOCK - 1, CSA_BLOCK, CSA_BLOCK + 7, 3 * CSA_BLOCK]
        {
            let a: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
            let b: Vec<u64> = (0..len as u64).map(|i| !i ^ 0x0f0f).collect();
            assert_eq!(
                and_count_words(&a, &b),
                and_count_words_scalar(&a, &b),
                "len {len}"
            );
            assert_eq!(count_ones_words(&a), count_ones_words_scalar(&a), "len {len}");
        }
    }

    proptest! {
        #[test]
        fn prop_and_count_matches_scalar(a in words(3 * CSA_BLOCK), b in words(3 * CSA_BLOCK)) {
            let n = a.len().min(b.len());
            prop_assert_eq!(
                and_count_words(&a, &b),
                and_count_words_scalar(&a[..n], &b[..n])
            );
        }

        #[test]
        fn prop_count_ones_matches_scalar(a in words(3 * CSA_BLOCK)) {
            prop_assert_eq!(count_ones_words(&a), count_ones_words_scalar(&a));
        }

        #[test]
        fn prop_and_or_match_scalar(a in words(2 * CSA_BLOCK), b in words(2 * CSA_BLOCK)) {
            let n = a.len().min(b.len());
            let mut out = Vec::new();
            and_words(&a, &b, &mut out);
            let expect: Vec<u64> = a[..n].iter().zip(&b[..n]).map(|(x, y)| x & y).collect();
            prop_assert_eq!(&out, &expect);
            or_words(&a, &b, &mut out);
            let expect: Vec<u64> = a[..n].iter().zip(&b[..n]).map(|(x, y)| x | y).collect();
            prop_assert_eq!(&out, &expect);
        }

        #[test]
        fn prop_assign_kernels_match_scalar(a in words(2 * CSA_BLOCK), b in words(2 * CSA_BLOCK)) {
            let n = a.len().min(b.len());
            let mut got = a.clone();
            and_assign_words(&mut got, &b);
            let mut expect = a.clone();
            for i in 0..n { expect[i] &= b[i]; }
            prop_assert_eq!(&got, &expect);
            let mut got = a.clone();
            or_assign_words(&mut got, &b);
            let mut expect = a.clone();
            for i in 0..n { expect[i] |= b[i]; }
            prop_assert_eq!(&got, &expect);
        }

        #[test]
        fn prop_is_disjoint_matches_and_count(a in words(2 * CSA_BLOCK), b in words(2 * CSA_BLOCK)) {
            // Random words rarely miss each other entirely, so also check
            // a forced-disjoint pair derived from the same lengths.
            prop_assert_eq!(is_disjoint_words(&a, &b), and_count_words(&a, &b) == 0);
            let masked: Vec<u64> = b.iter().zip(&a).map(|(y, x)| y & !x).collect();
            prop_assert!(is_disjoint_words(&a, &masked));
        }

        #[test]
        fn prop_and_count_many_matches_per_pair(
            a in words(2 * CSA_BLOCK),
            ps in proptest::collection::vec(words(2 * CSA_BLOCK), 0..5),
        ) {
            let partners: Vec<&[u64]> = ps.iter().map(|p| p.as_slice()).collect();
            let mut counts = Vec::new();
            and_count_many_words(&a, &partners, &mut counts);
            let expect: Vec<usize> =
                partners.iter().map(|p| and_count_words(&a, p)).collect();
            prop_assert_eq!(counts, expect);
        }
    }
}
