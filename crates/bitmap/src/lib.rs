#![forbid(unsafe_code)]
//! Fixed-universe bitmaps used by HTPGM to index which sequences of the
//! temporal sequence database contain an event or pattern.
//!
//! Each bitmap has a fixed length equal to the number of sequences
//! `|D_SEQ|`; bit `i` is set iff the indexed object occurs in sequence `i`
//! (paper, Section IV-C "Efficient bitmap indexing"). Support counting is a
//! popcount, and the joint support of an event combination is the popcount
//! of the AND of the member bitmaps (Alg. 1, line 8).

pub mod kernel;

/// A fixed-length bitmap over sequence identifiers `0..len`.
///
/// # Examples
///
/// ```
/// use ftpm_bitmap::Bitmap;
///
/// let mut a = Bitmap::new(100);
/// a.set(3);
/// a.set(64);
/// let mut b = Bitmap::new(100);
/// b.set(64);
/// b.set(99);
/// assert_eq!(a.and(&b).count_ones(), 1);
/// assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zero bitmap able to hold `len` bits.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitmap with the given bits set.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut bm = Bitmap::new(len);
        for i in indices {
            bm.set(i);
        }
        bm
    }

    /// Number of bits (the universe size), not the number of set bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the universe is empty (`len == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        // lint: allow(panic, documented # Panics contract: bit index within universe)
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn clear(&mut self, i: usize) {
        // lint: allow(panic, documented # Panics contract: bit index within universe)
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        // lint: allow(panic, documented # Panics contract: bit index within universe)
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits; this is `countBitmap` in Alg. 1 of the paper,
    /// i.e. the (absolute) support of the indexed object.
    pub fn count_ones(&self) -> usize {
        kernel::count_ones_words(&self.words)
    }

    /// True iff no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bitwise AND, producing the joint-occurrence bitmap of two objects.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        // lint: allow(panic, documented # Panics contract: universes must match)
        assert_eq!(self.len, other.len, "bitmap universe mismatch");
        let mut words = Vec::new();
        kernel::and_words(&self.words, &other.words, &mut words);
        Bitmap { words, len: self.len }
    }

    /// Fused AND + popcount: `self.and(other).count_ones()` without
    /// materializing the intermediate bitmap. This is the support of a
    /// candidate event combination (Alg. 1, line 8), and the Apriori
    /// gates call it for *every* candidate — most of which are pruned, so
    /// never paying the allocation is a hot-path win.
    ///
    /// Mismatched universes are a caller bug, checked in debug builds;
    /// release builds return the saturating answer over the common
    /// prefix instead of panicking (the library crates are panic-free
    /// on their hot paths).
    ///
    /// # Examples
    ///
    /// ```
    /// use ftpm_bitmap::Bitmap;
    ///
    /// let a = Bitmap::from_indices(100, [3, 64, 99]);
    /// let b = Bitmap::from_indices(100, [64, 99]);
    /// assert_eq!(a.and_count(&b), a.and(&b).count_ones());
    /// ```
    pub fn and_count(&self, other: &Bitmap) -> usize {
        debug_assert_eq!(self.len, other.len, "bitmap universe mismatch");
        kernel::and_count_words(&self.words, &other.words)
    }

    /// Scalar reference implementation of [`and_count`] — the pre-kernel
    /// loop, kept so property tests and the `repro_kernels` benchmark
    /// can pin the carry-save-adder kernel against it.
    ///
    /// [`and_count`]: Bitmap::and_count
    pub fn and_count_scalar(&self, other: &Bitmap) -> usize {
        debug_assert_eq!(self.len, other.len, "bitmap universe mismatch");
        kernel::and_count_words_scalar(&self.words, &other.words)
    }

    /// Fused AND+popcount of `self` against every bitmap in `partners`
    /// in one pass over `self`'s words; `counts` is cleared and filled
    /// with one support per partner. Equivalent to calling
    /// [`and_count`](Bitmap::and_count) per pair, but each block of the
    /// candidate bitmap is gated against all partners while it is hot.
    pub fn and_count_many(&self, partners: &[&Bitmap], counts: &mut Vec<usize>) {
        debug_assert!(
            partners.iter().all(|p| p.len == self.len),
            "bitmap universe mismatch"
        );
        // Below one CSA block the batched kernel's per-partner state (two
        // heap allocations) costs more than the intersections themselves;
        // sequence universes are often this small (one bit per window).
        if self.words.len() < kernel::CSA_BLOCK {
            counts.clear();
            counts.extend(
                partners
                    .iter()
                    .map(|p| kernel::and_count_words(&self.words, &p.words)),
            );
            return;
        }
        let mut words: Vec<&[u64]> = Vec::with_capacity(partners.len());
        words.extend(partners.iter().map(|p| p.words.as_slice()));
        kernel::and_count_many_words(&self.words, &words, counts);
    }

    /// True iff `self & other` has no bit set — the zero/nonzero half of
    /// [`and_count`](Bitmap::and_count), with an early exit on the first
    /// shared word.
    pub fn is_disjoint(&self, other: &Bitmap) -> bool {
        debug_assert_eq!(self.len, other.len, "bitmap universe mismatch");
        kernel::is_disjoint_words(&self.words, &other.words)
    }

    /// In-place bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        // lint: allow(panic, documented # Panics contract: universes must match)
        assert_eq!(self.len, other.len, "bitmap universe mismatch");
        kernel::and_assign_words(&mut self.words, &other.words);
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        // lint: allow(panic, documented # Panics contract: universes must match)
        assert_eq!(self.len, other.len, "bitmap universe mismatch");
        let mut words = Vec::new();
        kernel::or_words(&self.words, &other.words, &mut words);
        Bitmap { words, len: self.len }
    }

    /// In-place bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        // lint: allow(panic, documented # Panics contract: universes must match)
        assert_eq!(self.len, other.len, "bitmap universe mismatch");
        kernel::or_assign_words(&mut self.words, &other.words);
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            BitIter { word, base: wi * 64 }
        })
    }

    /// Heap memory held by this bitmap, in bytes (used by the Table VIII
    /// memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmap[{}; ", self.len)?;
        let mut first = true;
        for i in self.iter_ones() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_all_zero() {
        let bm = Bitmap::new(130);
        assert_eq!(bm.count_ones(), 0);
        assert!(bm.none());
        assert_eq!(bm.len(), 130);
        assert!(!bm.get(0));
        assert!(!bm.get(129));
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bm = Bitmap::new(70);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(69);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(69));
        assert!(!bm.get(1) && !bm.get(65));
        assert_eq!(bm.count_ones(), 4);
        bm.clear(63);
        assert!(!bm.get(63));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn set_is_idempotent() {
        let mut bm = Bitmap::new(10);
        bm.set(5);
        bm.set(5);
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut bm = Bitmap::new(64);
        bm.set(64);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn and_mismatched_lengths_panics() {
        let a = Bitmap::new(10);
        let b = Bitmap::new(11);
        let _ = a.and(&b);
    }

    #[test]
    fn and_intersects() {
        let a = Bitmap::from_indices(200, [1, 100, 150, 199]);
        let b = Bitmap::from_indices(200, [100, 199]);
        let c = a.and(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![100, 199]);
    }

    #[test]
    fn and_count_is_fused_and_popcount() {
        let a = Bitmap::from_indices(200, [1, 100, 150, 199]);
        let b = Bitmap::from_indices(200, [100, 199]);
        assert_eq!(a.and_count(&b), 2);
        assert_eq!(a.and_count(&b), a.and(&b).count_ones());
        assert_eq!(a.and_count(&Bitmap::new(200)), 0);
    }

    /// The universe-mismatch contract on `and_count` is a debug
    /// assertion only: release builds return the saturating
    /// common-prefix answer instead of panicking.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn and_count_mismatched_lengths_panics() {
        let a = Bitmap::new(10);
        let b = Bitmap::new(11);
        let _ = a.and_count(&b);
    }

    #[test]
    fn and_count_many_matches_per_pair() {
        let a = Bitmap::from_indices(500, (0..500).step_by(3));
        let b = Bitmap::from_indices(500, (0..500).step_by(2));
        let c = Bitmap::from_indices(500, [7, 9, 480]);
        let d = Bitmap::new(500);
        let partners = [&b, &c, &d];
        let mut counts = Vec::new();
        a.and_count_many(&partners, &mut counts);
        let expect: Vec<usize> = partners.iter().map(|p| a.and_count(p)).collect();
        assert_eq!(counts, expect);
        a.and_count_many(&[], &mut counts);
        assert!(counts.is_empty());
    }

    #[test]
    fn is_disjoint_matches_and_count() {
        let a = Bitmap::from_indices(300, [0, 64, 299]);
        let b = Bitmap::from_indices(300, [1, 65, 298]);
        let c = Bitmap::from_indices(300, [299]);
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&c));
        assert!(Bitmap::new(0).is_disjoint(&Bitmap::new(0)));
    }

    #[test]
    fn or_unions() {
        let a = Bitmap::from_indices(100, [1, 2]);
        let b = Bitmap::from_indices(100, [2, 3]);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn iter_ones_ascending_across_words() {
        let bm = Bitmap::from_indices(300, [299, 0, 64, 128, 63]);
        assert_eq!(
            bm.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 128, 299]
        );
    }

    #[test]
    fn zero_length_bitmap() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.iter_ones().count(), 0);
    }

    #[test]
    fn debug_format_lists_bits() {
        let bm = Bitmap::from_indices(8, [1, 3]);
        assert_eq!(format!("{bm:?}"), "Bitmap[8; 1,3]");
    }

    proptest! {
        #[test]
        fn prop_from_indices_count_matches_unique(
            len in 1usize..500,
            raw in proptest::collection::vec(0usize..500, 0..64),
        ) {
            let idx: Vec<usize> = raw.into_iter().map(|i| i % len).collect();
            let bm = Bitmap::from_indices(len, idx.iter().copied());
            let mut uniq = idx.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(bm.count_ones(), uniq.len());
            prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(), uniq);
        }

        #[test]
        fn prop_and_is_intersection(
            len in 1usize..300,
            a_raw in proptest::collection::vec(0usize..300, 0..32),
            b_raw in proptest::collection::vec(0usize..300, 0..32),
        ) {
            let a_idx: std::collections::BTreeSet<usize> =
                a_raw.into_iter().map(|i| i % len).collect();
            let b_idx: std::collections::BTreeSet<usize> =
                b_raw.into_iter().map(|i| i % len).collect();
            let a = Bitmap::from_indices(len, a_idx.iter().copied());
            let b = Bitmap::from_indices(len, b_idx.iter().copied());
            let expect: Vec<usize> = a_idx.intersection(&b_idx).copied().collect();
            prop_assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), expect);
        }

        #[test]
        fn prop_and_count_bounded_by_operands(
            len in 1usize..300,
            a_raw in proptest::collection::vec(0usize..300, 0..32),
            b_raw in proptest::collection::vec(0usize..300, 0..32),
        ) {
            let a = Bitmap::from_indices(len, a_raw.into_iter().map(|i| i % len));
            let b = Bitmap::from_indices(len, b_raw.into_iter().map(|i| i % len));
            let c = a.and(&b);
            // This is the bitmap form of Lemma 2 (Apriori): joint support
            // never exceeds individual support.
            prop_assert!(c.count_ones() <= a.count_ones());
            prop_assert!(c.count_ones() <= b.count_ones());
        }

        #[test]
        fn prop_and_count_matches_allocating_path(
            len in 1usize..300,
            a_raw in proptest::collection::vec(0usize..300, 0..32),
            b_raw in proptest::collection::vec(0usize..300, 0..32),
        ) {
            let a = Bitmap::from_indices(len, a_raw.into_iter().map(|i| i % len));
            let b = Bitmap::from_indices(len, b_raw.into_iter().map(|i| i % len));
            prop_assert_eq!(a.and_count(&b), a.and(&b).count_ones());
        }

        #[test]
        fn prop_and_assign_matches_and(
            len in 1usize..300,
            a_raw in proptest::collection::vec(0usize..300, 0..32),
            b_raw in proptest::collection::vec(0usize..300, 0..32),
        ) {
            let mut a = Bitmap::from_indices(len, a_raw.into_iter().map(|i| i % len));
            let b = Bitmap::from_indices(len, b_raw.into_iter().map(|i| i % len));
            let expect = a.and(&b);
            a.and_assign(&b);
            prop_assert_eq!(a, expect);
        }
    }
}
