#![forbid(unsafe_code)]
//! Information-theoretic machinery for the approximate miner A-HTPGM
//! (paper Section V).
//!
//! * [`entropy`], [`conditional_entropy`], [`mutual_information`],
//!   [`normalized_mutual_information`] — Defs 5.1–5.3;
//! * [`CorrelationGraph`] — Def 5.5: an undirected graph over symbolic
//!   series with an edge iff NMI meets the threshold `μ` in **both**
//!   directions, plus the density-based μ selection of Def 5.6;
//! * [`confidence_lower_bound`] — Theorem 1: the minimum confidence any
//!   frequent event pair from μ-correlated series can have in `D_SEQ`.
//!
//! All entropies use the natural logarithm; normalized mutual information
//! is scale-invariant, so the choice does not affect A-HTPGM.

mod bound;
mod graph;
mod info;

pub use bound::confidence_lower_bound;
pub use graph::{mu_for_density, CorrelationGraph};
pub use info::{
    conditional_entropy, entropy, joint_distribution, mutual_information,
    normalized_mutual_information,
};
