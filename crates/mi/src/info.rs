use ftpm_timeseries::SymbolicSeries;

/// Shannon entropy `H(X) = −Σ p(x)·ln p(x)` (Def 5.1) of a distribution.
/// Zero-probability outcomes contribute nothing.
///
/// # Examples
///
/// ```
/// use ftpm_mi::entropy;
///
/// assert!((entropy(&[0.5, 0.5]) - std::f64::consts::LN_2).abs() < 1e-12);
/// assert_eq!(entropy(&[1.0, 0.0]), 0.0);
/// ```
pub fn entropy(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// The empirical joint distribution `p(x, y)` of two aligned symbolic
/// series, as a `|Σ_X| × |Σ_Y|` row-major matrix.
///
/// # Panics
///
/// Panics if the series have different lengths or are empty.
pub fn joint_distribution(x: &SymbolicSeries, y: &SymbolicSeries) -> Vec<Vec<f64>> {
    // lint: allow(panic, documented # Panics contract: aligned series)
    assert_eq!(x.len(), y.len(), "series must be aligned");
    // lint: allow(panic, documented # Panics contract: non-empty series)
    assert!(!x.is_empty(), "series must be non-empty");
    let mut counts = vec![vec![0usize; y.alphabet().len()]; x.alphabet().len()];
    for (xs, ys) in x.symbols().iter().zip(y.symbols()) {
        counts[xs.0 as usize][ys.0 as usize] += 1;
    }
    let n = x.len() as f64;
    counts
        .into_iter()
        .map(|row| row.into_iter().map(|c| c as f64 / n).collect())
        .collect()
}

/// Conditional entropy `H(X|Y) = −Σ p(x,y)·ln(p(x,y)/p(y))` (Def 5.1,
/// Eq. 8).
pub fn conditional_entropy(x: &SymbolicSeries, y: &SymbolicSeries) -> f64 {
    let joint = joint_distribution(x, y);
    let py = y.symbol_probabilities();
    let mut h = 0.0;
    for row in &joint {
        for (j, &pxy) in row.iter().enumerate() {
            if pxy > 0.0 {
                h -= pxy * (pxy / py[j]).ln();
            }
        }
    }
    h
}

/// Mutual information `I(X;Y) = Σ p(x,y)·ln(p(x,y)/(p(x)·p(y)))`
/// (Def 5.2, Eq. 9), in nats.
///
/// Symmetric: `I(X;Y) = I(Y;X)`.
pub fn mutual_information(x: &SymbolicSeries, y: &SymbolicSeries) -> f64 {
    let joint = joint_distribution(x, y);
    let px = x.symbol_probabilities();
    let py = y.symbol_probabilities();
    let mut mi = 0.0;
    for (i, row) in joint.iter().enumerate() {
        for (j, &pxy) in row.iter().enumerate() {
            if pxy > 0.0 {
                mi += pxy * (pxy / (px[i] * py[j])).ln();
            }
        }
    }
    // Clamp tiny negative values caused by floating point noise.
    mi.max(0.0)
}

/// Normalized mutual information `Ĩ(X;Y) = I(X;Y)/H(X) = 1 − H(X|Y)/H(X)`
/// (Def 5.3, Eq. 10): the fraction of uncertainty about `X` removed by
/// knowing `Y`. In `[0, 1]`, and **not** symmetric.
///
/// A constant series has `H(X) = 0`; we define `Ĩ(X;Y) = 1` in that case
/// (there is no uncertainty left to explain), which keeps the value in
/// range and makes constant series trivially "correlated" with everything,
/// mirroring the fact that they carry no pattern information to lose.
pub fn normalized_mutual_information(x: &SymbolicSeries, y: &SymbolicSeries) -> f64 {
    let hx = entropy(&x.symbol_probabilities());
    if hx == 0.0 {
        return 1.0;
    }
    (mutual_information(x, y) / hx).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpm_timeseries::{Alphabet, SymbolId};
    use proptest::prelude::*;

    fn onoff(name: &str, bits: &str) -> SymbolicSeries {
        SymbolicSeries::from_labels(
            name,
            Alphabet::on_off(),
            bits.chars().map(|c| if c == '1' { "On" } else { "Off" }),
        )
    }

    #[test]
    fn entropy_uniform_is_ln_k() {
        assert!((entropy(&[0.25; 4]) - 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_degenerate_is_zero() {
        assert_eq!(entropy(&[0.0, 1.0, 0.0]), 0.0);
    }

    #[test]
    fn identical_series_mi_equals_entropy() {
        let x = onoff("X", "1101001011");
        let mi = mutual_information(&x, &x);
        let h = entropy(&x.symbol_probabilities());
        assert!((mi - h).abs() < 1e-12);
        assert!((normalized_mutual_information(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_series_mi_is_zero() {
        // y cycles through both values identically under each x value.
        let x = onoff("X", "11110000");
        let y = onoff("Y", "11001100");
        assert!(mutual_information(&x, &y).abs() < 1e-12);
        assert!(normalized_mutual_information(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn mi_is_symmetric() {
        let x = onoff("X", "110100101101");
        let y = onoff("Y", "011100110010");
        assert!((mutual_information(&x, &y) - mutual_information(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_identity() {
        // I(X;Y) = H(X) - H(X|Y)
        let x = onoff("X", "1101001011010011");
        let y = onoff("Y", "0111001011110001");
        let lhs = mutual_information(&x, &y);
        let rhs = entropy(&x.symbol_probabilities()) - conditional_entropy(&x, &y);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn constant_series_nmi_is_one() {
        let x = onoff("X", "1111");
        let y = onoff("Y", "0101");
        assert_eq!(normalized_mutual_information(&x, &y), 1.0);
    }

    #[test]
    fn joint_distribution_sums_to_one() {
        let x = onoff("X", "110100");
        let y = onoff("Y", "011010");
        let joint = joint_distribution(&x, &y);
        let total: f64 = joint.iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_lengths_panic() {
        let x = onoff("X", "11");
        let y = onoff("Y", "110");
        let _ = joint_distribution(&x, &y);
    }

    #[test]
    fn multi_state_alphabet_mi() {
        let abc = Alphabet::new(["A", "B", "C"]);
        let x = SymbolicSeries::new(
            "X",
            abc.clone(),
            vec![SymbolId(0), SymbolId(1), SymbolId(2), SymbolId(0), SymbolId(1), SymbolId(2)],
        );
        // y is a deterministic function of x → NMI(Y;X) = 1.
        let y = SymbolicSeries::new(
            "Y",
            Alphabet::on_off(),
            vec![SymbolId(0), SymbolId(1), SymbolId(1), SymbolId(0), SymbolId(1), SymbolId(1)],
        );
        assert!((normalized_mutual_information(&y, &x) - 1.0).abs() < 1e-12);
        // But x is not determined by y, so NMI(X;Y) < 1.
        assert!(normalized_mutual_information(&x, &y) < 1.0);
    }

    proptest! {
        #[test]
        fn prop_nmi_in_unit_interval(
            xs in proptest::collection::vec(0u16..2, 4..64),
            ys in proptest::collection::vec(0u16..2, 4..64),
        ) {
            let n = xs.len().min(ys.len());
            let mk = |name: &str, v: &[u16]| SymbolicSeries::new(
                name,
                Alphabet::on_off(),
                v[..n].iter().map(|&s| SymbolId(s)).collect(),
            );
            let x = mk("X", &xs);
            let y = mk("Y", &ys);
            let nmi = normalized_mutual_information(&x, &y);
            prop_assert!((0.0..=1.0).contains(&nmi));
        }

        #[test]
        fn prop_mi_nonnegative_and_bounded(
            xs in proptest::collection::vec(0u16..3, 6..64),
            ys in proptest::collection::vec(0u16..3, 6..64),
        ) {
            let n = xs.len().min(ys.len());
            let abc = Alphabet::new(["A", "B", "C"]);
            let x = SymbolicSeries::new("X", abc.clone(),
                xs[..n].iter().map(|&s| SymbolId(s)).collect());
            let y = SymbolicSeries::new("Y", abc.clone(),
                ys[..n].iter().map(|&s| SymbolId(s)).collect());
            let mi = mutual_information(&x, &y);
            let hx = entropy(&x.symbol_probabilities());
            let hy = entropy(&y.symbol_probabilities());
            // 0 <= I(X;Y) <= min(H(X), H(Y)) (Cover & Thomas).
            prop_assert!(mi >= 0.0);
            prop_assert!(mi <= hx.min(hy) + 1e-9);
        }
    }
}
