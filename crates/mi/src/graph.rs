use ftpm_timeseries::{SymbolicDatabase, VariableId};
use serde::{Deserialize, Serialize};

use crate::info::normalized_mutual_information;

/// The correlation graph `G_C = (V, E)` of Def 5.5: vertices are symbolic
/// series, and there is an (undirected) edge between `X_i` and `X_j` iff
/// `Ĩ(X_i;X_j) ≥ μ ∧ Ĩ(X_j;X_i) ≥ μ` — both directions, because NMI is
/// asymmetric.
///
/// # Examples
///
/// ```
/// use ftpm_timeseries::{Alphabet, SymbolicDatabase, SymbolicSeries, VariableId};
/// use ftpm_mi::CorrelationGraph;
///
/// let mut db = SymbolicDatabase::new(0, 1, 4);
/// db.push(SymbolicSeries::from_labels("A", Alphabet::on_off(),
///     ["On", "On", "Off", "Off"]));
/// db.push(SymbolicSeries::from_labels("B", Alphabet::on_off(),
///     ["On", "On", "Off", "Off"]));
/// let g = CorrelationGraph::build(&db, 0.9);
/// assert!(g.has_edge(VariableId(0), VariableId(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationGraph {
    n: usize,
    mu: f64,
    /// Row-major `n × n` pairwise NMI, `nmi[i][j] = Ĩ(X_i;X_j)`.
    nmi: Vec<Vec<f64>>,
    /// Symmetric adjacency matrix.
    adj: Vec<Vec<bool>>,
}

impl CorrelationGraph {
    /// Builds the correlation graph of a symbolic database for threshold
    /// `μ` (Alg. 2, lines 2–6).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < μ ≤ 1` (Def 5.4).
    pub fn build(db: &SymbolicDatabase, mu: f64) -> Self {
        // lint: allow(panic, documented # Panics contract: Def 5.4 domain of mu)
        assert!(mu > 0.0 && mu <= 1.0, "mu must be in (0, 1]");
        Self::from_nmi_matrix(nmi_matrix(db), mu)
    }

    /// Builds the graph with `μ` chosen so that the given fraction of the
    /// complete graph's edges survives (Def 5.6). Computes the pairwise
    /// NMI matrix only once, unlike calling [`mu_for_density`] followed by
    /// [`CorrelationGraph::build`].
    ///
    /// # Panics
    ///
    /// Panics unless `0 < density ≤ 1` (Def 5.6).
    pub fn build_with_density(db: &SymbolicDatabase, density: f64) -> Self {
        // lint: allow(panic, documented # Panics contract: Def 5.6 domain of density)
        assert!(
            density > 0.0 && density <= 1.0,
            "density must be in (0, 1]"
        );
        let nmi = nmi_matrix(db);
        let mu = mu_from_matrix(&nmi, density);
        Self::from_nmi_matrix(nmi, mu)
    }

    fn from_nmi_matrix(nmi: Vec<Vec<f64>>, mu: f64) -> Self {
        let n = nmi.len();
        let mut adj = vec![vec![false; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if nmi[i][j] >= mu && nmi[j][i] >= mu {
                    adj[i][j] = true;
                    adj[j][i] = true;
                }
            }
        }
        CorrelationGraph { n, mu, nmi, adj }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// The threshold this graph was built with.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Pairwise NMI `Ĩ(X_i;X_j)`.
    pub fn nmi(&self, i: VariableId, j: VariableId) -> f64 {
        self.nmi[i.0 as usize][j.0 as usize]
    }

    /// True iff `i` and `j` are connected (both-direction NMI ≥ μ).
    /// Every vertex is trivially connected to itself
    /// (`Ĩ(X;X) = 1 ≥ μ`), which lets A-HTPGM keep self-relations.
    pub fn has_edge(&self, i: VariableId, j: VariableId) -> bool {
        i == j || self.adj[i.0 as usize][j.0 as usize]
    }

    /// Number of undirected edges `|E|` (self-loops not counted).
    pub fn n_edges(&self) -> usize {
        self.adj
            .iter()
            .enumerate()
            .map(|(i, row)| row[i + 1..].iter().filter(|&&b| b).count())
            .sum()
    }

    /// Graph density `d_C = |E| / (n·(n−1)/2)` (Def 5.6).
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.n_edges() as f64 / (self.n * (self.n - 1) / 2) as f64
    }

    /// The correlated set `X_C`: vertices incident to at least one edge
    /// (Alg. 2, line 5). A-HTPGM mines only these series.
    pub fn correlated_variables(&self) -> Vec<VariableId> {
        (0..self.n)
            .filter(|&i| self.adj[i].iter().any(|&b| b))
            .map(|i| VariableId(i as u32))
            .collect()
    }
}

/// Chooses `μ` so that the resulting correlation graph keeps (at least)
/// the `density` fraction of the complete graph's edges (Def 5.6 and the
/// worked example: "if we set the density of the correlation graph to be
/// 40%, then G_C will have 15 × 40% = 6 edges, which corresponds to
/// μ = 0.40").
///
/// Concretely: each pair's edge weight is `min(Ĩ(X_i;X_j), Ĩ(X_j;X_i))`
/// (an edge survives a threshold iff both directions do); the returned μ
/// is the weight of the `⌈density · |pairs|⌉`-th largest pair, so
/// building the graph with it retains exactly that many edges (up to
/// ties).
///
/// # Panics
///
/// Panics unless `0 < density ≤ 1` and the database has ≥ 2 variables.
pub fn mu_for_density(db: &SymbolicDatabase, density: f64) -> f64 {
    // lint: allow(panic, documented # Panics contract: Def 5.6 domain of density)
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    // lint: allow(panic, documented # Panics contract: pairwise NMI needs two variables)
    assert!(db.n_variables() >= 2, "need at least two variables");
    mu_from_matrix(&nmi_matrix(db), density)
}

/// The full pairwise NMI matrix of a symbolic database (diagonal 1).
fn nmi_matrix(db: &SymbolicDatabase) -> Vec<Vec<f64>> {
    let n = db.n_variables();
    let mut nmi = vec![vec![0.0; n]; n];
    for (i, row) in nmi.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = if i == j {
                1.0
            } else {
                normalized_mutual_information(
                    db.series(VariableId(i as u32)),
                    db.series(VariableId(j as u32)),
                )
            };
        }
    }
    nmi
}

fn mu_from_matrix(nmi: &[Vec<f64>], density: f64) -> f64 {
    let n = nmi.len();
    let mut weights = Vec::with_capacity(n * (n - 1) / 2);
    // Symmetric (i, j)/(j, i) access — an enumerate() rewrite obscures it.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in (i + 1)..n {
            weights.push(nmi[i][j].min(nmi[j][i]));
        }
    }
    weights.sort_by(|a, b| b.total_cmp(a));
    let keep = ((density * weights.len() as f64).ceil() as usize)
        .clamp(1, weights.len());
    // An edge needs weight >= mu, so the cutoff is the weight of the last
    // kept pair. Guard against zero so the Def 5.4 constraint mu > 0 holds.
    weights[keep - 1].max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpm_timeseries::{Alphabet, SymbolicSeries};

    fn onoff(name: &str, bits: &str) -> SymbolicSeries {
        SymbolicSeries::from_labels(
            name,
            Alphabet::on_off(),
            bits.chars().map(|c| if c == '1' { "On" } else { "Off" }),
        )
    }

    fn db(rows: &[(&str, &str)]) -> SymbolicDatabase {
        let mut db = SymbolicDatabase::new(0, 1, rows[0].1.len());
        for (name, bits) in rows {
            db.push(onoff(name, bits));
        }
        db
    }

    #[test]
    fn perfectly_correlated_pair_connected() {
        let db = db(&[("A", "11001010"), ("B", "11001010"), ("C", "11110000")]);
        let g = CorrelationGraph::build(&db, 0.99);
        assert!(g.has_edge(VariableId(0), VariableId(1)));
        assert!(!g.has_edge(VariableId(0), VariableId(2)));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(
            g.correlated_variables(),
            vec![VariableId(0), VariableId(1)]
        );
    }

    #[test]
    fn self_edge_always_present() {
        let db = db(&[("A", "1100"), ("B", "0101")]);
        let g = CorrelationGraph::build(&db, 1.0);
        assert!(g.has_edge(VariableId(0), VariableId(0)));
    }

    #[test]
    fn edge_requires_both_directions() {
        // y is a function of x (NMI(Y;X)=1) but not vice versa.
        let abc = Alphabet::new(["A", "B", "C"]);
        let mut d = SymbolicDatabase::new(0, 1, 6);
        d.push(SymbolicSeries::from_labels(
            "X",
            abc,
            ["A", "B", "C", "A", "B", "C"],
        ));
        d.push(onoff("Y", "011011"));
        let g = CorrelationGraph::build(&d, 0.9);
        assert!(g.nmi(VariableId(1), VariableId(0)) > 0.99);
        assert!(g.nmi(VariableId(0), VariableId(1)) < 0.9);
        assert!(!g.has_edge(VariableId(0), VariableId(1)));
    }

    #[test]
    fn density_counts_fraction_of_complete_graph() {
        let d = db(&[("A", "110010"), ("B", "110010"), ("C", "110010"), ("D", "010101")]);
        let g = CorrelationGraph::build(&d, 0.99);
        // A-B, A-C, B-C connected: 3 of 6 possible edges.
        assert_eq!(g.n_edges(), 3);
        assert!((g.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mu_for_density_hits_target_edge_count() {
        let d = db(&[
            ("A", "1100101001"),
            ("B", "1100101001"),
            ("C", "1100101101"),
            ("D", "0011010110"),
            ("E", "0110110100"),
        ]);
        for &target in &[0.2, 0.4, 0.6] {
            let mu = mu_for_density(&d, target);
            let g = CorrelationGraph::build(&d, mu);
            let total_pairs = 10.0;
            let want = (target * total_pairs).ceil() as usize;
            assert!(
                g.n_edges() >= want,
                "density {target}: got {} edges, want >= {want}",
                g.n_edges()
            );
        }
        // Density 1.0 keeps every pair with positive two-way NMI; pairs
        // with NMI exactly 0 can never be edges since Def 5.4 needs mu > 0.
        let mu = mu_for_density(&d, 1.0);
        let g = CorrelationGraph::build(&d, mu);
        let positive_pairs = (0..5)
            .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
            .filter(|&(i, j)| {
                g.nmi(VariableId(i), VariableId(j)) > 0.0
                    && g.nmi(VariableId(j), VariableId(i)) > 0.0
            })
            .count();
        assert_eq!(g.n_edges(), positive_pairs);
    }

    #[test]
    fn mu_one_densest_graph_is_identical_series_only() {
        let d = db(&[("A", "1100"), ("B", "1100"), ("C", "1001")]);
        let g = CorrelationGraph::build(&d, 1.0);
        assert!(g.has_edge(VariableId(0), VariableId(1)));
        assert!(!g.has_edge(VariableId(0), VariableId(2)));
    }

    #[test]
    #[should_panic(expected = "mu must be in")]
    fn mu_zero_rejected() {
        let d = db(&[("A", "10"), ("B", "01")]);
        let _ = CorrelationGraph::build(&d, 0.0);
    }
}
