/// The confidence lower bound of Theorem 1 (Eq. 11).
///
/// If an event pair `(X_1, Y_1)` is frequent in `D_SYB`
/// (`supp ≥ σ`) and the two symbolic series are μ-correlated
/// (`Ĩ(X_S;Y_S) ≥ μ`), then in `D_SEQ`:
///
/// ```text
/// conf(X1, Y1) ≥ LB = ( σ^σ_m · (1 − σ_m/(n_x − 1))^(1−σ) )^((1−μ)/σ) · σ/(2σ_m − σ)
/// ```
///
/// where `n_x = |Σ_X|` is the alphabet size and `σ_m` the maximum support
/// of the pair in `D_SYB`. A-HTPGM uses the contrapositive: event pairs of
/// *uncorrelated* series may fall below this confidence, so they (and by
/// Lemma 3 every pattern containing them) can be pruned with bounded loss.
///
/// All supports are relative (fractions in `(0, 1]`).
///
/// # Panics
///
/// Panics unless `0 < σ ≤ σ_m ≤ 1`, `0 < μ ≤ 1`, and `n_x ≥ 2`.
///
/// # Examples
///
/// ```
/// use ftpm_mi::confidence_lower_bound;
///
/// let lb = confidence_lower_bound(0.3, 0.5, 2, 0.8);
/// assert!(lb > 0.0 && lb <= 1.0);
/// // A stronger correlation requirement gives a stronger guarantee:
/// assert!(confidence_lower_bound(0.3, 0.5, 2, 0.9) > lb);
/// ```
pub fn confidence_lower_bound(sigma: f64, sigma_m: f64, n_x: usize, mu: f64) -> f64 {
    // lint: allow(panic, documented # Panics contract: parameter domains of Eq. 21)
    assert!(sigma > 0.0 && sigma <= 1.0, "sigma must be in (0, 1]");
    // lint: allow(panic, documented # Panics contract: parameter domains of Eq. 21)
    assert!(
        sigma_m >= sigma && sigma_m <= 1.0,
        "sigma_m must be in [sigma, 1]"
    );
    // lint: allow(panic, documented # Panics contract: parameter domains of Eq. 21)
    assert!(mu > 0.0 && mu <= 1.0, "mu must be in (0, 1]");
    // lint: allow(panic, documented # Panics contract: parameter domains of Eq. 21)
    assert!(n_x >= 2, "alphabet must have at least two symbols");

    // Base of the exponentiation: σ^σ_m · (1 − σ_m/(n_x−1))^(1−σ).
    // For a binary alphabet with σ_m = 1 the second factor is 0^0 = 1
    // (the (1−p(X1))·log((1−p(X1))/(n_x−1)) term of Eq. 21 vanishes when
    // p(X1) → 1), so treat 0^0 as 1 here.
    let shrink = 1.0 - sigma_m / (n_x as f64 - 1.0);
    let second = if shrink <= 0.0 && (1.0 - sigma) == 0.0 {
        1.0
    } else {
        shrink.max(0.0).powf(1.0 - sigma)
    };
    let base = sigma.powf(sigma_m) * second;
    let conf_syb_bound = base.powf((1.0 - mu) / sigma);
    (conf_syb_bound * sigma / (2.0 * sigma_m - sigma)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bound_is_one_at_mu_one_sigma_max() {
        // mu = 1: (base)^0 = 1, and sigma = sigma_m makes the tail
        // sigma/(2 sigma_m - sigma) = 1.
        let lb = confidence_lower_bound(0.4, 0.4, 2, 1.0);
        assert!((lb - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bound_decreases_as_mu_decreases() {
        let mut prev = f64::INFINITY;
        for mu in [0.9, 0.7, 0.5, 0.3, 0.1] {
            let lb = confidence_lower_bound(0.3, 0.5, 2, mu);
            assert!(lb < prev, "LB must shrink with mu: {lb} !< {prev}");
            prev = lb;
        }
    }

    #[test]
    fn binary_alphabet_sigma_m_one_does_not_nan() {
        let lb = confidence_lower_bound(1.0, 1.0, 2, 0.5);
        assert!(lb.is_finite());
        assert!(lb > 0.0);
    }

    #[test]
    fn larger_alphabet_changes_bound() {
        let b2 = confidence_lower_bound(0.3, 0.5, 2, 0.6);
        let b5 = confidence_lower_bound(0.3, 0.5, 5, 0.6);
        assert!(b2.is_finite() && b5.is_finite());
        assert_ne!(b2, b5);
    }

    #[test]
    #[should_panic(expected = "sigma_m")]
    fn sigma_m_below_sigma_rejected() {
        let _ = confidence_lower_bound(0.5, 0.3, 2, 0.5);
    }

    proptest! {
        #[test]
        fn prop_bound_in_unit_interval(
            sigma in 0.01f64..1.0,
            extra in 0.0f64..0.5,
            n_x in 2usize..6,
            mu in 0.01f64..1.0,
        ) {
            let sigma_m = (sigma + extra).min(1.0);
            let lb = confidence_lower_bound(sigma, sigma_m, n_x, mu);
            prop_assert!((0.0..=1.0).contains(&lb), "lb = {lb}");
            prop_assert!(lb.is_finite());
        }

        #[test]
        fn prop_bound_monotone_in_mu(
            sigma in 0.05f64..0.9,
            extra in 0.0f64..0.1,
            n_x in 2usize..5,
            mu in 0.1f64..0.9,
        ) {
            let sigma_m = (sigma + extra).min(1.0);
            let lo = confidence_lower_bound(sigma, sigma_m, n_x, mu);
            let hi = confidence_lower_bound(sigma, sigma_m, n_x, (mu + 0.1).min(1.0));
            prop_assert!(hi >= lo - 1e-12);
        }
    }
}
