use crate::alphabet::{Alphabet, SymbolId};

/// Maps raw time series values to symbols of a fixed alphabet — the mapping
/// function `f : X → Σ_X` of Def 3.2.
pub trait Symbolizer {
    /// The alphabet this symbolizer maps into.
    fn alphabet(&self) -> &Alphabet;

    /// Maps a single value to a symbol.
    fn symbolize(&self, value: f64) -> SymbolId;

    /// Maps a whole slice of values.
    fn symbolize_all(&self, values: &[f64]) -> Vec<SymbolId> {
        values.iter().map(|&v| self.symbolize(v)).collect()
    }
}

/// Binary `{Off, On}` symbolizer: `On` iff `value >= threshold`.
///
/// This is the encoding used for the energy datasets in the paper
/// (Section VI-A2, threshold 0.05 W).
///
/// # Examples
///
/// ```
/// use ftpm_timeseries::{Symbolizer, ThresholdSymbolizer};
///
/// let s = ThresholdSymbolizer::new(0.5);
/// assert_eq!(s.alphabet().label(s.symbolize(1.61)), "On");
/// assert_eq!(s.alphabet().label(s.symbolize(0.41)), "Off");
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdSymbolizer {
    threshold: f64,
    alphabet: Alphabet,
}

impl ThresholdSymbolizer {
    /// Creates a threshold symbolizer with the `{Off, On}` alphabet.
    pub fn new(threshold: f64) -> Self {
        ThresholdSymbolizer {
            threshold,
            alphabet: Alphabet::on_off(),
        }
    }

    /// The On/Off decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Symbolizer for ThresholdSymbolizer {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn symbolize(&self, value: f64) -> SymbolId {
        if value >= self.threshold {
            SymbolId(1) // On
        } else {
            SymbolId(0) // Off
        }
    }
}

/// Multi-state symbolizer based on the percentile distribution of the data
/// (paper Section VI-A2: weather/collision variables with 3–5 states).
///
/// Values below `breaks[0]` map to symbol 0, values in
/// `[breaks[i-1], breaks[i])` to symbol `i`, and values `>= breaks.last()`
/// to the last symbol.
///
/// # Examples
///
/// ```
/// use ftpm_timeseries::{QuantileSymbolizer, Symbolizer};
///
/// // Temperature → {VeryCold, Cold, Mild, Hot, VeryHot}
/// let data: Vec<f64> = (0..100).map(f64::from).collect();
/// let s = QuantileSymbolizer::from_data(
///     ["VeryCold", "Cold", "Mild", "Hot", "VeryHot"], &data);
/// assert_eq!(s.alphabet().label(s.symbolize(-3.0)), "VeryCold");
/// assert_eq!(s.alphabet().label(s.symbolize(99.0)), "VeryHot");
/// ```
#[derive(Debug, Clone)]
pub struct QuantileSymbolizer {
    breaks: Vec<f64>,
    alphabet: Alphabet,
}

impl QuantileSymbolizer {
    /// Creates a symbolizer from explicit ascending breakpoints. For `k`
    /// labels there must be exactly `k - 1` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if the breakpoint count does not match the label count, or
    /// the breakpoints are not strictly ascending.
    pub fn with_breaks<S: Into<String>>(
        labels: impl IntoIterator<Item = S>,
        breaks: Vec<f64>,
    ) -> Self {
        let alphabet = Alphabet::new(labels);
        assert_eq!(
            breaks.len(),
            alphabet.len() - 1,
            "need exactly |alphabet|-1 breakpoints"
        );
        assert!(
            breaks.windows(2).all(|w| w[0] < w[1]),
            "breakpoints must be strictly ascending"
        );
        QuantileSymbolizer { breaks, alphabet }
    }

    /// Derives breakpoints from the empirical quantiles of `data` at evenly
    /// spaced probabilities `1/k, …, (k-1)/k` for `k` labels.
    ///
    /// The paper uses hand-picked percentiles per variable (e.g. 10th/25th/
    /// 50th/75th/95th); [`QuantileSymbolizer::with_breaks`] supports that
    /// directly, while this constructor is the generic k-quantile version.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or quantiles collide (constant data).
    pub fn from_data<S: Into<String>>(
        labels: impl IntoIterator<Item = S>,
        data: &[f64],
    ) -> Self {
        let alphabet = Alphabet::new(labels);
        assert!(!data.is_empty(), "cannot derive quantiles from empty data");
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in data"));
        let k = alphabet.len();
        let breaks: Vec<f64> = (1..k)
            .map(|i| {
                let rank = (i as f64 / k as f64) * (sorted.len() - 1) as f64;
                sorted[rank.round() as usize]
            })
            .collect();
        assert!(
            breaks.windows(2).all(|w| w[0] < w[1]),
            "data quantiles collide; use fewer states or explicit breakpoints"
        );
        QuantileSymbolizer {
            breaks,
            alphabet,
        }
    }

    /// The ascending breakpoints separating the bins.
    pub fn breaks(&self) -> &[f64] {
        &self.breaks
    }
}

impl Symbolizer for QuantileSymbolizer {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn symbolize(&self, value: f64) -> SymbolId {
        let bin = self.breaks.partition_point(|&b| b <= value);
        SymbolId(bin as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threshold_boundary_is_on() {
        let s = ThresholdSymbolizer::new(0.05);
        assert_eq!(s.symbolize(0.05), SymbolId(1));
        assert_eq!(s.symbolize(0.049999), SymbolId(0));
    }

    #[test]
    fn paper_example_symbolization() {
        // Paper Section III-A: X = 1.61, 1.21, 0.41, 0.0 with threshold 0.5
        // gives On, On, Off, Off.
        let s = ThresholdSymbolizer::new(0.5);
        let syms = s.symbolize_all(&[1.61, 1.21, 0.41, 0.0]);
        let labels: Vec<&str> = syms.iter().map(|&id| s.alphabet().label(id)).collect();
        assert_eq!(labels, vec!["On", "On", "Off", "Off"]);
    }

    #[test]
    fn quantile_bins_cover_range() {
        let s = QuantileSymbolizer::with_breaks(["Low", "Mid", "High"], vec![10.0, 20.0]);
        assert_eq!(s.symbolize(-5.0), SymbolId(0));
        assert_eq!(s.symbolize(9.99), SymbolId(0));
        assert_eq!(s.symbolize(10.0), SymbolId(1));
        assert_eq!(s.symbolize(19.99), SymbolId(1));
        assert_eq!(s.symbolize(20.0), SymbolId(2));
        assert_eq!(s.symbolize(1e9), SymbolId(2));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_breaks_panic() {
        let _ = QuantileSymbolizer::with_breaks(["A", "B", "C"], vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "|alphabet|-1 breakpoints")]
    fn wrong_break_count_panics() {
        let _ = QuantileSymbolizer::with_breaks(["A", "B"], vec![1.0, 2.0]);
    }

    #[test]
    fn from_data_splits_uniform_data_evenly() {
        let data: Vec<f64> = (0..1000).map(f64::from).collect();
        let s = QuantileSymbolizer::from_data(["Q1", "Q2", "Q3", "Q4"], &data);
        let counts = {
            let mut c = [0usize; 4];
            for &v in &data {
                c[s.symbolize(v).0 as usize] += 1;
            }
            c
        };
        for count in counts {
            assert!((200..=300).contains(&count), "unbalanced bins: {counts:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_quantile_symbol_in_alphabet(v in -1e6f64..1e6) {
            let s = QuantileSymbolizer::with_breaks(
                ["A", "B", "C", "D"], vec![-10.0, 0.0, 10.0]);
            let id = s.symbolize(v);
            prop_assert!((id.0 as usize) < s.alphabet().len());
        }

        #[test]
        fn prop_quantile_monotone(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let s = QuantileSymbolizer::with_breaks(
                ["A", "B", "C"], vec![-1.0, 1.0]);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(s.symbolize(lo) <= s.symbolize(hi));
        }
    }
}

/// SAX-style symbolizer: z-normalizes against the training data's mean
/// and standard deviation, then bins by the standard-normal breakpoints
/// that make each symbol equiprobable under a Gaussian assumption
/// (Lin et al.'s Symbolic Aggregate approXimation, the de-facto standard
/// symbolic representation in time series mining — a natural drop-in for
/// the paper's mapping function `f : X → Σ_X`).
///
/// Supports alphabet sizes 2–10.
///
/// # Examples
///
/// ```
/// use ftpm_timeseries::{SaxSymbolizer, Symbolizer};
///
/// let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin()).collect();
/// let sax = SaxSymbolizer::from_data(4, &data);
/// assert_eq!(sax.alphabet().len(), 4);
/// // Very negative values map to the first symbol, very positive to the last.
/// assert_eq!(sax.symbolize(-10.0).0, 0);
/// assert_eq!(sax.symbolize(10.0).0, 3);
/// ```
#[derive(Debug, Clone)]
pub struct SaxSymbolizer {
    mean: f64,
    std: f64,
    breaks: Vec<f64>,
    alphabet: Alphabet,
}

impl SaxSymbolizer {
    /// Standard-normal breakpoints for alphabet sizes 2..=10 (values from
    /// the SAX paper's lookup table).
    fn gaussian_breaks(size: usize) -> Vec<f64> {
        match size {
            2 => vec![0.0],
            3 => vec![-0.43, 0.43],
            4 => vec![-0.67, 0.0, 0.67],
            5 => vec![-0.84, -0.25, 0.25, 0.84],
            6 => vec![-0.97, -0.43, 0.0, 0.43, 0.97],
            7 => vec![-1.07, -0.57, -0.18, 0.18, 0.57, 1.07],
            8 => vec![-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15],
            9 => vec![-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22],
            10 => vec![-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28],
            other => panic!("SAX alphabet size {other} unsupported (2..=10)"),
        }
    }

    /// Fits mean and standard deviation on `data` and builds an
    /// `alphabet_size`-symbol SAX symbolizer with labels `a, b, c, …`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, constant, or `alphabet_size ∉ 2..=10`.
    pub fn from_data(alphabet_size: usize, data: &[f64]) -> Self {
        assert!(!data.is_empty(), "cannot fit SAX on empty data");
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        assert!(std > 0.0, "cannot fit SAX on constant data");
        let labels: Vec<String> = (0..alphabet_size)
            .map(|i| ((b'a' + i as u8) as char).to_string())
            .collect();
        SaxSymbolizer {
            mean,
            std,
            breaks: Self::gaussian_breaks(alphabet_size),
            alphabet: Alphabet::new(labels),
        }
    }
}

impl Symbolizer for SaxSymbolizer {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn symbolize(&self, value: f64) -> SymbolId {
        let z = (value - self.mean) / self.std;
        SymbolId(self.breaks.partition_point(|&b| b <= z) as u16)
    }
}

/// Trend symbolizer: encodes the *change* between consecutive samples as
/// `Down` / `Steady` / `Up`, with `Steady` covering changes within
/// `±tolerance`. Useful for weather-style variables where the paper's
/// patterns talk about rising/falling conditions.
///
/// Because a trend needs a predecessor, use
/// [`TrendSymbolizer::symbolize_series`]; the pointwise
/// [`Symbolizer::symbolize`] interprets its input as an already-computed
/// delta.
#[derive(Debug, Clone)]
pub struct TrendSymbolizer {
    tolerance: f64,
    alphabet: Alphabet,
}

impl TrendSymbolizer {
    /// Creates a trend symbolizer.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative.
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        TrendSymbolizer {
            tolerance,
            alphabet: Alphabet::new(["Down", "Steady", "Up"]),
        }
    }

    /// Symbolizes a value series into trends; the first sample has no
    /// predecessor and is encoded `Steady`.
    pub fn symbolize_series(&self, values: &[f64]) -> Vec<SymbolId> {
        let mut out = Vec::with_capacity(values.len());
        for (i, &v) in values.iter().enumerate() {
            let delta = if i == 0 { 0.0 } else { v - values[i - 1] };
            out.push(self.symbolize(delta));
        }
        out
    }
}

impl Symbolizer for TrendSymbolizer {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Interprets `value` as a delta between consecutive samples.
    fn symbolize(&self, value: f64) -> SymbolId {
        if value < -self.tolerance {
            SymbolId(0) // Down
        } else if value > self.tolerance {
            SymbolId(2) // Up
        } else {
            SymbolId(1) // Steady
        }
    }
}

#[cfg(test)]
mod extra_symbolizer_tests {
    use super::*;

    #[test]
    fn sax_bins_are_roughly_equiprobable_on_gaussian_data() {
        // Deterministic pseudo-gaussian via sum of uniforms.
        let mut state = 0x12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let data: Vec<f64> = (0..4000)
            .map(|_| (0..12).map(|_| next()).sum::<f64>() - 6.0)
            .collect();
        let sax = SaxSymbolizer::from_data(4, &data);
        let mut counts = [0usize; 4];
        for &v in &data {
            counts[sax.symbolize(v).0 as usize] += 1;
        }
        for c in counts {
            assert!(
                (700..=1300).contains(&c),
                "expected roughly equiprobable bins, got {counts:?}"
            );
        }
    }

    #[test]
    fn sax_monotone_in_value() {
        let data: Vec<f64> = (0..100).map(f64::from).collect();
        let sax = SaxSymbolizer::from_data(6, &data);
        let mut prev = sax.symbolize(-1e3);
        for v in [-50.0, 0.0, 25.0, 50.0, 75.0, 99.0, 1e3] {
            let cur = sax.symbolize(v);
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "constant data")]
    fn sax_rejects_constant_data() {
        let _ = SaxSymbolizer::from_data(4, &[3.0; 10]);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn sax_rejects_huge_alphabet() {
        let _ = SaxSymbolizer::from_data(11, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn trend_series_encoding() {
        let t = TrendSymbolizer::new(0.5);
        let syms = t.symbolize_series(&[10.0, 10.2, 12.0, 11.0, 11.1]);
        let labels: Vec<&str> = syms.iter().map(|&s| t.alphabet().label(s)).collect();
        assert_eq!(labels, vec!["Steady", "Steady", "Up", "Down", "Steady"]);
    }

    #[test]
    fn trend_tolerance_boundary() {
        let t = TrendSymbolizer::new(1.0);
        assert_eq!(t.alphabet().label(t.symbolize(1.0)), "Steady");
        assert_eq!(t.alphabet().label(t.symbolize(1.0001)), "Up");
        assert_eq!(t.alphabet().label(t.symbolize(-1.0001)), "Down");
    }
}
