#![forbid(unsafe_code)]
//! Time series and symbolic representations — the *Data Transformation*
//! phase of the FTPMfTS process (paper Section IV-B, Defs 3.1–3.3).
//!
//! A raw [`TimeSeries`] holds chronologically ordered numeric samples. A
//! [`Symbolizer`] maps each value to a symbol of a finite [`Alphabet`]
//! (e.g. `On`/`Off` for appliance power, or percentile bins such as
//! `VeryCold … VeryHot` for weather variables), producing a
//! [`SymbolicSeries`]. A collection of aligned symbolic series forms the
//! [`SymbolicDatabase`] `D_SYB` (Def 3.3, Table I of the paper), the input
//! to both the temporal-sequence conversion (`ftpm-events`) and the mutual
//! information computations (`ftpm-mi`).

mod alphabet;
mod series;
mod symbolic;
mod symbolizer;

pub use alphabet::{Alphabet, SymbolId};
pub use series::TimeSeries;
pub use symbolic::{SymbolicDatabase, SymbolicSeries, VariableId};
pub use symbolizer::{
    QuantileSymbolizer, SaxSymbolizer, Symbolizer, ThresholdSymbolizer, TrendSymbolizer,
};
