use serde::{Deserialize, Serialize};

/// A univariate time series `X = x_1, …, x_n` (Def 3.1): chronologically
/// ordered numeric samples at a regular interval.
///
/// Timestamps are abstract integer ticks: sample `i` is observed at
/// `start + i * step`. Callers choose the unit (the examples use minutes).
///
/// # Examples
///
/// ```
/// use ftpm_timeseries::TimeSeries;
///
/// let ts = TimeSeries::new("kitchen", 0, 5, vec![1.61, 1.21, 0.41, 0.0]);
/// assert_eq!(ts.len(), 4);
/// assert_eq!(ts.time_at(2), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    start: i64,
    step: i64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a time series.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn new(name: impl Into<String>, start: i64, step: i64, values: Vec<f64>) -> Self {
        assert!(step > 0, "sampling step must be positive");
        TimeSeries {
            name: name.into(),
            start,
            step,
            values,
        }
    }

    /// Variable name (e.g. the appliance or sensor this series measures).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Timestamp of the first sample.
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Sampling interval in ticks.
    pub fn step(&self) -> i64 {
        self.step
    }

    /// The raw sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Timestamp of sample `i`.
    pub fn time_at(&self, i: usize) -> i64 {
        self.start + self.step * i as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_follow_step() {
        let ts = TimeSeries::new("x", 100, 15, vec![0.0; 3]);
        assert_eq!(ts.time_at(0), 100);
        assert_eq!(ts.time_at(1), 115);
        assert_eq!(ts.time_at(2), 130);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = TimeSeries::new("x", 0, 0, vec![]);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new("x", 0, 1, vec![]);
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
    }
}
