use serde::{Deserialize, Serialize};

/// Index of a symbol within an [`Alphabet`] (`ω ∈ Σ_X` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymbolId(pub u16);

/// A finite, ordered set of symbol labels — the symbol alphabet `Σ_X` of a
/// time series (Def 3.2).
///
/// # Examples
///
/// ```
/// use ftpm_timeseries::Alphabet;
///
/// let onoff = Alphabet::on_off();
/// assert_eq!(onoff.len(), 2);
/// assert_eq!(onoff.label(onoff.lookup("On").unwrap()), "On");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alphabet {
    labels: Vec<String>,
}

impl Alphabet {
    /// Builds an alphabet from symbol labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty, contains duplicates, or has more than
    /// `u16::MAX` entries.
    pub fn new<S: Into<String>>(labels: impl IntoIterator<Item = S>) -> Self {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        assert!(!labels.is_empty(), "alphabet must not be empty");
        assert!(labels.len() <= u16::MAX as usize, "alphabet too large");
        let mut seen = std::collections::HashSet::new();
        for l in &labels {
            assert!(seen.insert(l.as_str()), "duplicate symbol label {l:?}");
        }
        Alphabet { labels }
    }

    /// The binary `{Off, On}` alphabet used for the energy datasets
    /// (paper Section VI-A2). `Off` is symbol 0, `On` is symbol 1.
    pub fn on_off() -> Self {
        Alphabet::new(["Off", "On"])
    }

    /// Number of symbols (`n_x` in Theorem 1).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff the alphabet has no symbols (never true for constructed
    /// alphabets; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn label(&self, id: SymbolId) -> &str {
        &self.labels[id.0 as usize]
    }

    /// Finds a symbol by label.
    pub fn lookup(&self, label: &str) -> Option<SymbolId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| SymbolId(i as u16))
    }

    /// Iterates over all symbol ids in order.
    pub fn ids(&self) -> impl Iterator<Item = SymbolId> {
        (0..self.labels.len() as u16).map(SymbolId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_off_layout() {
        let a = Alphabet::on_off();
        assert_eq!(a.lookup("Off"), Some(SymbolId(0)));
        assert_eq!(a.lookup("On"), Some(SymbolId(1)));
        assert_eq!(a.lookup("Maybe"), None);
    }

    #[test]
    fn ids_are_dense() {
        let a = Alphabet::new(["Low", "Mid", "High"]);
        assert_eq!(a.ids().collect::<Vec<_>>(), vec![SymbolId(0), SymbolId(1), SymbolId(2)]);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol label")]
    fn duplicate_labels_panic() {
        let _ = Alphabet::new(["A", "A"]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_alphabet_panics() {
        let _ = Alphabet::new(Vec::<String>::new());
    }
}
