use serde::{Deserialize, Serialize};

use crate::alphabet::{Alphabet, SymbolId};
use crate::series::TimeSeries;
use crate::symbolizer::Symbolizer;

/// Index of a variable (one symbolic series) within a [`SymbolicDatabase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VariableId(pub u32);

/// The symbolic representation `X_S` of one time series (Def 3.2): one
/// symbol per sampling step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolicSeries {
    name: String,
    alphabet: Alphabet,
    symbols: Vec<SymbolId>,
}

impl SymbolicSeries {
    /// Creates a symbolic series from pre-computed symbols.
    ///
    /// # Panics
    ///
    /// Panics if any symbol is outside the alphabet.
    pub fn new(name: impl Into<String>, alphabet: Alphabet, symbols: Vec<SymbolId>) -> Self {
        assert!(
            symbols.iter().all(|s| (s.0 as usize) < alphabet.len()),
            "symbol outside alphabet"
        );
        SymbolicSeries {
            name: name.into(),
            alphabet,
            symbols,
        }
    }

    /// Symbolizes a raw time series.
    pub fn from_time_series(ts: &TimeSeries, symbolizer: &dyn Symbolizer) -> Self {
        SymbolicSeries {
            name: ts.name().to_owned(),
            alphabet: symbolizer.alphabet().clone(),
            symbols: symbolizer.symbolize_all(ts.values()),
        }
    }

    /// Parses a series from symbol labels, e.g. `["On", "Off", "On"]`.
    ///
    /// # Panics
    ///
    /// Panics if a label is not in the alphabet.
    pub fn from_labels(
        name: impl Into<String>,
        alphabet: Alphabet,
        labels: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> Self {
        let symbols = labels
            .into_iter()
            .map(|l| {
                let l = l.as_ref();
                alphabet
                    .lookup(l)
                    .unwrap_or_else(|| panic!("label {l:?} not in alphabet"))
            })
            .collect();
        SymbolicSeries {
            name: name.into(),
            alphabet,
            symbols,
        }
    }

    /// Variable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The alphabet `Σ_X`.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The symbols, one per time step.
    pub fn symbols(&self) -> &[SymbolId] {
        &self.symbols
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True iff the series has no steps.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Relative frequency of each symbol — the marginal distribution
    /// `p(x)` used by the entropy and MI computations (Defs 5.1–5.2).
    ///
    /// Returns one probability per alphabet symbol (zero for unused ones).
    pub fn symbol_probabilities(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.alphabet.len()];
        for s in &self.symbols {
            counts[s.0 as usize] += 1;
        }
        let n = self.symbols.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }
}

/// The symbolic database `D_SYB` (Def 3.3, Table I): a set of symbolic
/// series aligned on a common clock.
///
/// All series share the same number of steps, start time and step duration,
/// so step `i` of every series describes the same wall-clock interval
/// `[start + i·step, start + (i+1)·step)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolicDatabase {
    series: Vec<SymbolicSeries>,
    start: i64,
    step: i64,
    n_steps: usize,
}

impl SymbolicDatabase {
    /// Creates an empty database on the given clock.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`.
    pub fn new(start: i64, step: i64, n_steps: usize) -> Self {
        assert!(step > 0, "step must be positive");
        SymbolicDatabase {
            series: Vec::new(),
            start,
            step,
            n_steps,
        }
    }

    /// Symbolizes and adds a raw time series.
    ///
    /// # Panics
    ///
    /// Panics if the series clock or length disagrees with the database.
    pub fn add_time_series(
        &mut self,
        ts: &TimeSeries,
        symbolizer: &dyn Symbolizer,
    ) -> VariableId {
        assert_eq!(ts.start(), self.start, "series start mismatch");
        assert_eq!(ts.step(), self.step, "series step mismatch");
        self.push(SymbolicSeries::from_time_series(ts, symbolizer))
    }

    /// Adds an already-symbolic series.
    ///
    /// # Panics
    ///
    /// Panics if the length disagrees with the database.
    pub fn push(&mut self, series: SymbolicSeries) -> VariableId {
        assert_eq!(
            series.len(),
            self.n_steps,
            "series {} has {} steps, database expects {}",
            series.name(),
            series.len(),
            self.n_steps,
        );
        let id = VariableId(self.series.len() as u32);
        self.series.push(series);
        id
    }

    /// Number of variables.
    pub fn n_variables(&self) -> usize {
        self.series.len()
    }

    /// Number of time steps per series.
    pub fn n_steps(&self) -> usize {
        self.n_steps
    }

    /// Timestamp of step 0.
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Step duration in ticks.
    pub fn step(&self) -> i64 {
        self.step
    }

    /// Timestamp at which step `i` begins.
    pub fn time_at(&self, i: usize) -> i64 {
        self.start + self.step * i as i64
    }

    /// The series of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn series(&self, id: VariableId) -> &SymbolicSeries {
        &self.series[id.0 as usize]
    }

    /// Iterates over `(id, series)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VariableId, &SymbolicSeries)> {
        self.series
            .iter()
            .enumerate()
            .map(|(i, s)| (VariableId(i as u32), s))
    }

    /// Finds a variable by name.
    pub fn lookup(&self, name: &str) -> Option<VariableId> {
        self.series
            .iter()
            .position(|s| s.name() == name)
            .map(|i| VariableId(i as u32))
    }

    /// Returns a copy restricted to the step range `[lo, hi)`, keeping
    /// every variable and the absolute clock: step 0 of the slice is step
    /// `lo` of this database and starts at the same wall-clock time. Used
    /// by shard-by-time-range mining, where each shard converts and mines
    /// only its own slice of the data.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi <= n_steps`.
    pub fn slice_steps(&self, lo: usize, hi: usize) -> SymbolicDatabase {
        assert!(
            lo < hi && hi <= self.n_steps,
            "invalid step slice [{lo}, {hi}) of {} steps",
            self.n_steps
        );
        SymbolicDatabase {
            series: self
                .series
                .iter()
                .map(|s| {
                    SymbolicSeries::new(
                        s.name(),
                        s.alphabet().clone(),
                        s.symbols()[lo..hi].to_vec(),
                    )
                })
                .collect(),
            start: self.time_at(lo),
            step: self.step,
            n_steps: hi - lo,
        }
    }

    /// Returns a copy restricted to the given variables, preserving order.
    /// Used by A-HTPGM to mine only the correlated subset `X_C` and by the
    /// Fig 12/13 attribute-scalability experiments.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn project(&self, vars: &[VariableId]) -> SymbolicDatabase {
        SymbolicDatabase {
            series: vars
                .iter()
                .map(|v| self.series[v.0 as usize].clone())
                .collect(),
            start: self.start,
            step: self.step,
            n_steps: self.n_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolizer::ThresholdSymbolizer;

    fn db_with(names: &[&str], rows: &[&str]) -> SymbolicDatabase {
        let mut db = SymbolicDatabase::new(0, 5, rows[0].len());
        for (name, row) in names.iter().zip(rows) {
            let labels: Vec<String> = row
                .chars()
                .map(|c| if c == '1' { "On".into() } else { "Off".into() })
                .collect();
            db.push(SymbolicSeries::from_labels(*name, Alphabet::on_off(), labels));
        }
        db
    }

    #[test]
    fn push_and_lookup() {
        let db = db_with(&["K", "T"], &["1100", "0110"]);
        assert_eq!(db.n_variables(), 2);
        assert_eq!(db.lookup("T"), Some(VariableId(1)));
        assert_eq!(db.lookup("Z"), None);
        assert_eq!(db.series(VariableId(0)).name(), "K");
    }

    #[test]
    #[should_panic(expected = "steps")]
    fn mismatched_length_panics() {
        let mut db = SymbolicDatabase::new(0, 5, 4);
        db.push(SymbolicSeries::from_labels(
            "K",
            Alphabet::on_off(),
            ["On", "Off"],
        ));
    }

    #[test]
    fn add_time_series_symbolizes() {
        let mut db = SymbolicDatabase::new(0, 5, 4);
        let ts = TimeSeries::new("k", 0, 5, vec![1.61, 1.21, 0.41, 0.0]);
        let id = db.add_time_series(&ts, &ThresholdSymbolizer::new(0.5));
        let s = db.series(id);
        let labels: Vec<&str> = s.symbols().iter().map(|&x| s.alphabet().label(x)).collect();
        assert_eq!(labels, vec!["On", "On", "Off", "Off"]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let db = db_with(&["K"], &["110010"]);
        let p = db.series(VariableId(0)).symbol_probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12); // three Ons out of six
    }

    #[test]
    fn project_preserves_order_and_clock() {
        let db = db_with(&["A", "B", "C"], &["10", "01", "11"]);
        let sub = db.project(&[VariableId(2), VariableId(0)]);
        assert_eq!(sub.n_variables(), 2);
        assert_eq!(sub.series(VariableId(0)).name(), "C");
        assert_eq!(sub.series(VariableId(1)).name(), "A");
        assert_eq!(sub.step(), db.step());
    }

    #[test]
    fn slice_steps_keeps_clock_and_variables() {
        let db = db_with(&["K", "T"], &["110010", "011011"]);
        let slice = db.slice_steps(2, 5);
        assert_eq!(slice.n_variables(), 2);
        assert_eq!(slice.n_steps(), 3);
        assert_eq!(slice.step(), db.step());
        // Absolute clock preserved: slice step 0 == db step 2.
        assert_eq!(slice.start(), db.time_at(2));
        assert_eq!(slice.time_at(1), db.time_at(3));
        assert_eq!(
            slice.series(VariableId(0)).symbols(),
            &db.series(VariableId(0)).symbols()[2..5]
        );
    }

    #[test]
    #[should_panic(expected = "invalid step slice")]
    fn slice_steps_rejects_reversed_range() {
        let db = db_with(&["K"], &["1100"]);
        let _ = db.slice_steps(3, 3);
    }

    #[test]
    fn time_at_follows_clock() {
        let db = SymbolicDatabase::new(600, 5, 36);
        assert_eq!(db.time_at(0), 600);
        assert_eq!(db.time_at(35), 600 + 35 * 5);
    }
}
