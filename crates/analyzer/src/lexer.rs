//! A hand-rolled Rust lexer — just enough of the language to lint with.
//!
//! The linter's rules are token-shaped ("`.and(..).count_ones()` outside
//! the bitmap crate", "`unwrap` in library code", "a `_ =>` arm in a
//! `BoundaryPolicy` match"), so a full parser would be wasted weight and
//! an external crate would break the workspace's offline build (the same
//! constraint that produced the vendored serde shim). This lexer handles
//! the parts of Rust that matter for not mis-lexing real code:
//!
//! * line comments, nested block comments, and doc comments — retained
//!   with positions so `// lint: allow(..)` markers can be matched;
//! * string literals (plain, raw `r#"…"#` with any hash count, byte,
//!   and C strings), char literals, and the char-vs-lifetime ambiguity
//!   (`'a'` is a char, `'a` in `&'a str` is a lifetime);
//! * identifiers/keywords, numbers, and multi-char punctuation the rules
//!   care about (`::`, `=>`) — everything else comes out as single-char
//!   punctuation tokens.
//!
//! Anything inside a comment or literal is *data*, not code: a fixture
//! string containing `.unwrap()` never trips a rule, and a doc example
//! mentioning `and(..).count_ones()` stays documentation.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `match`, `unsafe`, …).
    Ident,
    /// String/char/byte/number literal. The text is kept verbatim.
    Literal,
    /// A lifetime (`'a`). Distinguished from char literals.
    Lifetime,
    /// Punctuation. `::` and `=>` come out as single tokens; everything
    /// else is one character each.
    Punct,
}

/// One lexed token: kind, byte range into the source, and 1-based line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

/// One comment, retained for allow-marker matching: text without the
/// delimiters, plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The source text of token `i` (panics only on an out-of-range
    /// index, which would be a linter bug, not user data).
    pub fn text<'s>(&self, src: &'s str, i: usize) -> &'s str {
        let t = &self.tokens[i];
        &src[t.start..t.end]
    }

    /// True if token `i` is an identifier spelling `word`.
    pub fn is_ident(&self, src: &str, i: usize, word: &str) -> bool {
        i < self.tokens.len()
            && self.tokens[i].kind == TokenKind::Ident
            && self.text(src, i) == word
    }

    /// True if token `i` is punctuation spelling `p`.
    pub fn is_punct(&self, src: &str, i: usize, p: &str) -> bool {
        i < self.tokens.len()
            && self.tokens[i].kind == TokenKind::Punct
            && self.text(src, i) == p
    }
}

/// Lexes `src`. Unterminated literals or comments simply run to the end
/// of the file — the linter reports what it can instead of failing the
/// whole pass (rustc will reject such a file anyway).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Counts newlines in `src[from..to]` — called once per multi-line
    // token, so the quadratic worst case never materializes.
    let count_lines = |from: usize, to: usize| -> u32 {
        src.as_bytes()[from..to].iter().filter(|&&b| b == b'\n').count() as u32
    };

    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            if b == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (includes doc comments `///` and `//!`).
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
            out.comments.push(Comment {
                text: src[i + 2..end].trim_start_matches(['/', '!']).trim().to_string(),
                line,
            });
            i = end;
            continue;
        }
        // Block comment, possibly nested.
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += count_lines(start, i);
            out.comments.push(Comment {
                text: src[start + 2..i.saturating_sub(2).max(start + 2)].trim().to_string(),
                line: start_line,
            });
            continue;
        }
        // Raw strings: r"…", r#"…"#, and byte/C-string forms br#"…"#.
        if let Some(len) = raw_string_len(&src[i..]) {
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                start: i,
                end: i + len,
                line,
            });
            line += count_lines(i, i + len);
            i += len;
            continue;
        }
        // Plain and byte strings.
        if b == b'"' || (b == b'b' && bytes.get(i + 1) == Some(&b'"')) {
            let q = if b == b'"' { i } else { i + 1 };
            let end = scan_quoted(bytes, q, b'"');
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                start: i,
                end,
                line,
            });
            line += count_lines(i, end);
            i = end;
            continue;
        }
        // Char literal vs lifetime.
        if b == b'\'' {
            if let Some(end) = char_literal_len(bytes, i) {
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    start: i,
                    end: i + end,
                    line,
                });
                i += end;
            } else {
                // Lifetime: ' followed by an identifier.
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    start: i,
                    end: j,
                    line,
                });
                i = j;
            }
            continue;
        }
        // Identifier / keyword (including raw identifiers `r#match`).
        if b == b'_' || b.is_ascii_alphabetic() {
            let start = i;
            if b == b'r' && bytes.get(i + 1) == Some(&b'#') {
                // Only if what follows is an identifier char — `r#"` was
                // already taken by the raw-string branch above.
                i += 2;
            }
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                start,
                end: i,
                line,
            });
            continue;
        }
        // Number literal (digits plus enough continuation chars to skip
        // hex/float/suffix forms in one token).
        if b.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || (bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)))
            {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                start,
                end: i,
                line,
            });
            continue;
        }
        // Multi-char punctuation the rules care about.
        let two = &src[i..(i + 2).min(src.len())];
        if two == "::" || two == "=>" {
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                start: i,
                end: i + 2,
                line,
            });
            i += 2;
            continue;
        }
        // Everything else: single-char punctuation.
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            start: i,
            end: i + 1,
            line,
        });
        i += 1;
    }
    out
}

/// If `s` starts a raw (byte/C) string literal, its total byte length.
fn raw_string_len(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut p = 0usize;
    if bytes.first() == Some(&b'b') || bytes.first() == Some(&b'c') {
        p = 1;
    }
    if bytes.get(p) != Some(&b'r') {
        return None;
    }
    p += 1;
    let mut hashes = 0usize;
    while bytes.get(p + hashes) == Some(&b'#') {
        hashes += 1;
    }
    if bytes.get(p + hashes) != Some(&b'"') {
        return None;
    }
    let body_start = p + hashes + 1;
    let closer: String = format!("\"{}", "#".repeat(hashes));
    match s[body_start..].find(&closer) {
        Some(n) => Some(body_start + n + closer.len()),
        None => Some(s.len()), // unterminated: consume the rest
    }
}

/// Scans a quoted literal starting at the quote `bytes[q]`; returns the
/// index one past the closing quote (or the end of input).
fn scan_quoted(bytes: &[u8], q: usize, quote: u8) -> usize {
    let mut i = q + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b if b == quote => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// If position `i` (a `'`) starts a char literal, its byte length —
/// otherwise `None` (it's a lifetime or a stray quote).
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    // '\…' escape: always a char literal.
    if bytes.get(i + 1) == Some(&b'\\') {
        let end = scan_quoted(bytes, i, b'\'');
        return Some(end - i);
    }
    // 'x' — exactly one char then a closing quote. A lifetime like 'a
    // has no closing quote; 'static is followed by more ident chars.
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    // Skip one UTF-8 scalar.
    let first = bytes[j];
    let width = match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    };
    j += width;
    if bytes.get(j) == Some(&b'\'') {
        // `'a'` — but `'a' ` in `x.map('a')`… still a char literal; the
        // only ambiguity left is `'a''b'` which Rust itself rejects.
        Some(j + 1 - i)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        let lexed = lex(src);
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| src[t.start..t.end].to_string())
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let src = "// has .unwrap() inside\nlet x = 1; /* .expect( */";
        assert_eq!(idents(src), vec!["let", "x"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains(".unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn strings_are_literals() {
        let src = r##"let s = "contains .unwrap() and \" escape"; let r = r#"raw .expect("x")"# ;"##;
        // No `unwrap` or `expect` identifier tokens escape the literals.
        assert!(!idents(src).iter().any(|w| w == "unwrap" || w == "expect"));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let s = 'a'; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2, "two uses of 'a as a lifetime");
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal && src[t.start..t.end].starts_with('\''))
            .count();
        assert_eq!(chars, 2, "'x' and 'a' as char literals");
    }

    #[test]
    fn multi_char_punct() {
        let src = "BoundaryPolicy::Clip => 1,";
        let lexed = lex(src);
        assert!(lexed.is_punct(src, 1, "::"));
        assert!(lexed.is_punct(src, 3, "=>"));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "let a = \"one\ntwo\";\nlet b = 1;";
        let lexed = lex(src);
        let b = lexed
            .tokens
            .iter()
            .find(|t| &src[t.start..t.end] == "b")
            .expect("b token");
        assert_eq!(b.line, 3);
    }
}
