//! Item-level parsing on top of the lexer — just enough structure for
//! the whole-program rules (R7–R10).
//!
//! The per-file rules (R1–R6) are token-shaped and need no structure,
//! but "no allocation reachable from the hot path" and "every `ftpm_core`
//! entry point is re-exported by the facade" are properties of the
//! *program*, not of any one line. This module recovers the minimum
//! structure those rules need from the token stream: module nesting,
//! `impl` blocks (with their trait and self type), function items with
//! the calls their bodies make, and flattened `use` declarations. It is
//! deliberately not a Rust parser — no expressions, no types, no
//! generics — and it shares the lexer's failure philosophy: confusing
//! input degrades into missing edges, never into a crash.

use crate::lexer::{Lexed, TokenKind};

/// One call site observed inside a function body, classified by shape.
/// The shapes map directly onto the resolution heuristics in
/// [`crate::graph`]: a path call pins the receiver, a method call is
/// resolved by name across every impl, a macro never produces an edge
/// (macros the rules care about are matched by name instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(..)` — a bare call, resolved module-outward.
    Free(String),
    /// `Seg::name(..)` — the segment right before the final `::`.
    Path(String, String),
    /// `.name(..)` — resolved across all impls by name.
    Method(String),
    /// `name!(..)` — macro invocation; matched by name, never resolved.
    Macro(String),
}

/// One call site: what was called and where.
#[derive(Debug, Clone)]
pub struct Call {
    pub kind: CallKind,
    pub line: u32,
}

/// One `fn` item with everything the call graph needs.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Inline module path within the file (`mod a { mod b { .. } }` →
    /// `["a", "b"]`). The file's own module path is added by the graph.
    pub modules: Vec<String>,
    /// Any `pub` qualifier, including restricted ones (`pub(crate)`).
    pub is_pub: bool,
    /// Self type when declared inside an `impl` block.
    pub impl_type: Option<String>,
    /// Trait name when declared inside an `impl Trait for Type` block.
    pub impl_trait: Option<String>,
    pub line: u32,
    /// Byte offset of the `fn` keyword (for test-region classification).
    pub start: usize,
    /// Calls made by the body, in source order.
    pub calls: Vec<Call>,
    /// True when the item sits inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
}

/// One leaf of a (possibly nested) `use` declaration.
#[derive(Debug, Clone)]
pub struct UseDecl {
    pub is_pub: bool,
    /// Full path segments, e.g. `["ftpm_core", "mine_exact"]`. A glob
    /// import ends with `"*"`.
    pub path: Vec<String>,
    /// The name this declaration makes visible (the alias after `as`,
    /// otherwise the last segment; `"*"` for globs).
    pub visible: String,
    pub line: u32,
}

/// The parsed form of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseDecl>,
}

/// What a `{` we descended into belongs to.
enum Scope {
    Module(String),
    Impl {
        ty: Option<String>,
        tr: Option<String>,
    },
    FnBody,
    Other,
}

/// Names that never produce call-graph edges when seen as `.name(..)` or
/// bare `name(..)` — std-library vocabulary that would otherwise connect
/// everything to everything. Path calls (`Type::name`) stay precise and
/// ignore this list.
pub const BUILTIN_CALLS: &[&str] = &[
    // Collections / iterators.
    "len", "is_empty", "push", "pop", "insert", "remove", "clear", "get", "get_mut",
    "contains", "contains_key", "entry", "or_insert", "keys", "values", "iter",
    "iter_mut", "into_iter", "next", "map", "map_or", "filter", "filter_map",
    "flat_map", "flatten", "fold", "sum", "product", "collect", "extend", "drain",
    "retain", "sort", "sort_by", "sort_by_key", "sort_unstable", "dedup", "min",
    "max", "min_by", "max_by", "min_by_key", "max_by_key", "take", "take_while",
    "skip", "skip_while", "step_by", "zip", "chain", "rev", "enumerate", "count",
    "position", "find", "any", "all", "last", "first", "windows", "chunks", "split",
    "split_at", "join", "resize", "truncate", "swap", "fill", "binary_search",
    "copied", "cloned", "by_ref", "peekable", "peek", "reserve", "shrink_to_fit",
    // Option / Result.
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok", "err", "ok_or",
    "ok_or_else", "and_then", "or_else", "is_some", "is_none", "is_ok", "is_err",
    "is_some_and", "is_none_or", "map_err", "as_deref", "take", "replace",
    "get_or_insert_with",
    // Conversions / borrows.
    "as_ref", "as_mut", "as_str", "as_slice", "as_bytes", "as_os_str", "borrow",
    "borrow_mut", "into", "from", "try_into", "try_from", "to_vec", "parse",
    "into_inner", "leak", "deref",
    // Construction vocabulary shared with std.
    "new", "with_capacity", "default", "build", "clone", "drop",
    // Numerics.
    "abs", "floor", "ceil", "round", "sqrt", "powi", "powf", "ln", "log2", "log10",
    "exp", "signum", "to_bits", "from_bits", "wrapping_add", "wrapping_sub",
    "wrapping_mul", "saturating_add", "saturating_sub", "saturating_mul",
    "checked_add", "checked_sub", "checked_mul", "checked_div", "count_ones",
    "leading_zeros", "trailing_zeros", "rotate_left", "rotate_right", "pow",
    "rem_euclid", "div_euclid", "clamp", "is_finite", "is_nan",
    // Strings (the allocation-family names are matched by the rules, not
    // edges, so they are deliberately *not* listed here).
    "trim", "trim_start", "trim_end", "trim_start_matches", "trim_end_matches",
    "starts_with", "ends_with", "strip_prefix", "strip_suffix", "split_once",
    "splitn", "lines", "chars", "bytes", "char_indices", "find", "rfind",
    "replace", "repeat", "to_lowercase", "to_uppercase", "eq_ignore_ascii_case",
    "is_ascii_whitespace", "is_ascii_alphanumeric", "is_ascii_alphabetic",
    "is_ascii_digit", "push_str",
    // Sync / thread vocabulary (R10 handles these by ident, not edges).
    "lock", "read", "write", "wait", "notify_all", "notify_one", "fetch_add",
    "load", "store", "spawn", "scope", "join", "send", "recv",
    // Time / misc std.
    "elapsed", "as_secs_f64", "as_millis", "as_micros", "as_nanos", "duration_since",
    "to_owned_vec", "cmp", "partial_cmp", "eq", "ne", "hash", "fmt", "display",
    "args", "var", "exit", "flush", "write_all", "write_fmt", "read_to_string",
    "create_dir_all", "read_dir", "file_name", "extension", "is_dir", "exists",
    "strip_prefix", "to_string_lossy", "to_path_buf", "parent", "components",
];

/// Parses one lexed file into items. `test_regions` are the byte ranges
/// of `#[cfg(test)]`/`#[test]` items (see [`crate::rules`]); functions
/// starting inside one are marked `in_test`.
pub fn parse_file(src: &str, lexed: &Lexed, test_regions: &[(usize, usize)]) -> ParsedFile {
    let toks = &lexed.tokens;
    let mut out = ParsedFile::default();
    let mut stack: Vec<Scope> = Vec::new();
    let in_test =
        |pos: usize| test_regions.iter().any(|&(s, e)| pos >= s && pos < e);

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Punct {
            match lexed.text(src, i) {
                "{" => {
                    stack.push(Scope::Other);
                    i += 1;
                    continue;
                }
                "}" => {
                    stack.pop();
                    i += 1;
                    continue;
                }
                _ => {}
            }
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match lexed.text(src, i) {
            "mod" if lexed.tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident) => {
                let name = lexed.text(src, i + 1).to_string();
                if lexed.is_punct(src, i + 2, "{") {
                    stack.push(Scope::Module(name));
                    i += 3;
                } else {
                    // Out-of-line `mod name;` — the file graph handles it.
                    i += 2;
                }
                continue;
            }
            "impl" => {
                let (ty, tr, body_open) = parse_impl_header(src, lexed, i);
                match body_open {
                    Some(open) => {
                        stack.push(Scope::Impl { ty, tr });
                        i = open + 1;
                    }
                    None => i += 1,
                }
                continue;
            }
            "fn" if lexed.tokens.get(i + 1).map(|t| t.kind) == Some(TokenKind::Ident) => {
                let name = lexed.text(src, i + 1).to_string();
                let is_pub = has_pub_qualifier(src, lexed, i);
                let (impl_type, impl_trait) = innermost_impl(&stack);
                let modules: Vec<String> = stack
                    .iter()
                    .filter_map(|s| match s {
                        Scope::Module(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                // Find the body `{` (or a `;` for a trait-method decl),
                // skipping the signature's parenthesized parameter list.
                let mut j = i + 2;
                let mut pdepth = 0i32;
                let mut body_open = None;
                while j < toks.len() {
                    if toks[j].kind == TokenKind::Punct {
                        match lexed.text(src, j) {
                            "(" | "[" => pdepth += 1,
                            ")" | "]" => pdepth -= 1,
                            "{" if pdepth == 0 => {
                                body_open = Some(j);
                                break;
                            }
                            ";" if pdepth == 0 => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                let item = FnItem {
                    name,
                    modules,
                    is_pub,
                    impl_type,
                    impl_trait,
                    line: t.line,
                    start: t.start,
                    calls: Vec::new(),
                    in_test: in_test(t.start),
                };
                match body_open {
                    Some(open) => {
                        let idx = out.fns.len();
                        out.fns.push(item);
                        collect_calls(src, lexed, open, &mut out.fns[idx].calls);
                        stack.push(Scope::FnBody);
                        i = open + 1;
                    }
                    None => {
                        out.fns.push(item);
                        i = j + 1;
                    }
                }
                continue;
            }
            "use" => {
                let is_pub = has_pub_qualifier(src, lexed, i);
                i = parse_use_tree(src, lexed, i + 1, is_pub, Vec::new(), &mut out.uses);
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// True when the item keyword at token `i` carries a `pub` qualifier:
/// scans backwards over the qualifier vocabulary (`const`, `unsafe`,
/// `async`, `extern "C"`, `pub(crate)`, …) until a non-qualifier token.
fn has_pub_qualifier(src: &str, lexed: &Lexed, i: usize) -> bool {
    let toks = &lexed.tokens;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].kind {
            TokenKind::Ident => match lexed.text(src, j) {
                "pub" => return true,
                "const" | "unsafe" | "async" | "extern" | "crate" | "super" | "self"
                | "in" => {}
                _ => return false,
            },
            TokenKind::Punct => match lexed.text(src, j) {
                "(" | ")" | "::" => {}
                _ => return false,
            },
            TokenKind::Literal => {} // extern "C"
            TokenKind::Lifetime => return false,
        }
    }
    false
}

/// The innermost enclosing `impl` block on the scope stack.
fn innermost_impl(stack: &[Scope]) -> (Option<String>, Option<String>) {
    for s in stack.iter().rev() {
        if let Scope::Impl { ty, tr } = s {
            return (ty.clone(), tr.clone());
        }
    }
    (None, None)
}

/// Parses an `impl` header starting at the `impl` keyword (token `i`):
/// returns `(self type, trait name, index of the body '{')`. Handles
/// `impl<G> Type<G>`, `impl Trait for Type`, and `where` clauses; the
/// self type / trait is the last path segment at angle-bracket depth 0.
fn parse_impl_header(
    src: &str,
    lexed: &Lexed,
    i: usize,
) -> (Option<String>, Option<String>, Option<usize>) {
    let toks = &lexed.tokens;
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut before_for: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut saw_where = false;
    let mut body_open = None;
    while j < toks.len() {
        match toks[j].kind {
            TokenKind::Punct => match lexed.text(src, j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => {
                    body_open = Some(j);
                    break;
                }
                ";" if angle <= 0 => break, // `impl Trait for Type;`-ish noise
                _ => {}
            },
            TokenKind::Ident if angle <= 0 && !saw_where => {
                match lexed.text(src, j) {
                    "for" => saw_for = true,
                    "where" => saw_where = true,
                    "dyn" | "mut" | "const" | "unsafe" => {}
                    name => {
                        if saw_for {
                            after_for = Some(name.to_string());
                        } else {
                            before_for = Some(name.to_string());
                        }
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    if saw_for {
        (after_for, before_for, body_open)
    } else {
        (before_for, None, body_open)
    }
}

/// Walks the balanced body opening at token `open` and records every
/// call-shaped token sequence.
fn collect_calls(src: &str, lexed: &Lexed, open: usize, out: &mut Vec<Call>) {
    let toks = &lexed.tokens;
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        if toks[j].kind == TokenKind::Punct {
            match lexed.text(src, j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        } else if toks[j].kind == TokenKind::Ident {
            let name = lexed.text(src, j);
            let line = toks[j].line;
            if lexed.is_punct(src, j + 1, "!") {
                out.push(Call {
                    kind: CallKind::Macro(name.to_string()),
                    line,
                });
            } else if lexed.is_punct(src, j + 1, "(")
                || (lexed.is_punct(src, j + 1, "::")
                    && lexed.is_punct(src, j + 2, "<"))
            {
                // `name(..)` — or `name::<T>(..)` turbofish.
                let kind = if j > 0 && lexed.is_punct(src, j - 1, ".") {
                    CallKind::Method(name.to_string())
                } else if j > 1
                    && lexed.is_punct(src, j - 1, "::")
                    && toks[j - 2].kind == TokenKind::Ident
                {
                    CallKind::Path(lexed.text(src, j - 2).to_string(), name.to_string())
                } else {
                    CallKind::Free(name.to_string())
                };
                out.push(Call { kind, line });
            }
        }
        j += 1;
    }
}

/// Recursively flattens one `use` tree starting right after `use` (or
/// after a `{`/`,` inside a group), returning the token index one past
/// the declaration. `prefix` carries the segments accumulated so far.
fn parse_use_tree(
    src: &str,
    lexed: &Lexed,
    mut i: usize,
    is_pub: bool,
    prefix: Vec<String>,
    out: &mut Vec<UseDecl>,
) -> usize {
    let toks = &lexed.tokens;
    let mut path = prefix;
    let line = toks.get(i).map_or(0, |t| t.line);
    loop {
        let Some(t) = toks.get(i) else {
            return i;
        };
        match t.kind {
            TokenKind::Ident => {
                let word = lexed.text(src, i).to_string();
                if word == "as" {
                    // Alias: the next ident is the visible name.
                    if let Some(alias) = toks.get(i + 1) {
                        if alias.kind == TokenKind::Ident {
                            out.push(UseDecl {
                                is_pub,
                                path: path.clone(),
                                visible: lexed.text(src, i + 1).to_string(),
                                line,
                            });
                            i += 2;
                            return skip_to_leaf_end(src, lexed, i);
                        }
                    }
                    i += 1;
                } else {
                    path.push(word);
                    i += 1;
                }
            }
            TokenKind::Punct => match lexed.text(src, i) {
                "::" => i += 1,
                "*" => {
                    path.push("*".to_string());
                    out.push(UseDecl {
                        is_pub,
                        path: path.clone(),
                        visible: "*".to_string(),
                        line,
                    });
                    i += 1;
                    return skip_to_leaf_end(src, lexed, i);
                }
                "{" => {
                    // Group: recurse once per comma-separated subtree.
                    i += 1;
                    loop {
                        match toks.get(i).map(|t| (t.kind, lexed.text(src, i))) {
                            Some((TokenKind::Punct, "}")) => return i + 1,
                            Some((TokenKind::Punct, ",")) => i += 1,
                            Some(_) => {
                                i = parse_use_tree(src, lexed, i, is_pub, path.clone(), out);
                            }
                            None => return i,
                        }
                    }
                }
                ";" | "," | "}" => {
                    // Leaf ended: the last segment is the visible name.
                    if let Some(last) = path.last() {
                        out.push(UseDecl {
                            is_pub,
                            path: path.clone(),
                            visible: last.clone(),
                            line,
                        });
                    }
                    return i;
                }
                _ => i += 1,
            },
            _ => i += 1,
        }
    }
}

/// After an alias or glob leaf, advances past the remainder of this leaf
/// (up to, not past, the `,`/`}`/`;` that ends it).
fn skip_to_leaf_end(src: &str, lexed: &Lexed, mut i: usize) -> usize {
    while i < lexed.tokens.len() {
        if lexed.tokens[i].kind == TokenKind::Punct
            && matches!(lexed.text(src, i), ";" | "," | "}")
        {
            return i;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_regions;

    fn parse(src: &str) -> ParsedFile {
        let lexed = lex(src);
        let regions = test_regions(src, &lexed);
        parse_file(src, &lexed, &regions)
    }

    #[test]
    fn fn_items_with_modules_and_visibility() {
        let src = "pub fn top() {}\nmod inner {\n    pub(crate) fn mid() { helper(); }\n    fn helper() {}\n}";
        let p = parse(src);
        let names: Vec<(&str, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            vec![("top", true), ("mid", true), ("helper", false)]
        );
        assert_eq!(p.fns[1].modules, vec!["inner"]);
        assert_eq!(p.fns[1].calls.len(), 1);
        assert_eq!(p.fns[1].calls[0].kind, CallKind::Free("helper".into()));
    }

    #[test]
    fn impl_blocks_carry_type_and_trait() {
        let src = "impl<'a, K: BoundaryKernel> L2Engine<'a, K> { fn try_pair(&self) {} }\n\
                   impl BoundaryKernel for ClipKernel { fn interval(&self) {} }\n\
                   impl Drop for Retire<'_> { fn drop(&mut self) {} }";
        let p = parse(src);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("L2Engine"));
        assert_eq!(p.fns[0].impl_trait, None);
        assert_eq!(p.fns[1].impl_type.as_deref(), Some("ClipKernel"));
        assert_eq!(p.fns[1].impl_trait.as_deref(), Some("BoundaryKernel"));
        assert_eq!(p.fns[2].impl_type.as_deref(), Some("Retire"));
        assert_eq!(p.fns[2].impl_trait.as_deref(), Some("Drop"));
    }

    #[test]
    fn calls_are_classified_by_shape() {
        let src = "fn f() { g(); x.m(); Occ::push(); format!(\"x\"); h::<u8>(); }";
        let p = parse(src);
        let kinds: Vec<&CallKind> = p.fns[0].calls.iter().map(|c| &c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &CallKind::Free("g".into()),
                &CallKind::Method("m".into()),
                &CallKind::Path("Occ".into(), "push".into()),
                &CallKind::Macro("format".into()),
                &CallKind::Free("h".into()),
            ]
        );
    }

    #[test]
    fn use_trees_flatten_with_aliases_and_globs() {
        let src = "pub use ftpm_core::{mine_exact, schedule::Schedule as Sched, sink::*};\n\
                   use std::fmt::Write as _;";
        let p = parse(src);
        let leaves: Vec<(&str, bool)> = p
            .uses
            .iter()
            .map(|u| (u.visible.as_str(), u.is_pub))
            .collect();
        assert_eq!(
            leaves,
            vec![
                ("mine_exact", true),
                ("Sched", true),
                ("*", true),
                ("_", false)
            ]
        );
        assert_eq!(p.uses[1].path, vec!["ftpm_core", "schedule", "Schedule"]);
    }

    #[test]
    fn test_region_functions_are_marked() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}";
        let p = parse(src);
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test, "{:?}", p.fns);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn sig(&self) -> usize; fn with_default(&self) { self.sig(); } }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].calls.is_empty());
        assert_eq!(p.fns[1].calls.len(), 1);
    }
}
