//! CLI entry point: `cargo run -p ftpm-analyzer [-- --root DIR --json PATH]`.
//!
//! Exit code 0 when the workspace is clean, 1 when any violation is
//! found, 2 on usage errors. Also reachable as `ftpm lint`.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ftpm_analyzer_cli(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("ftpm-analyzer: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Parses args, runs the pass, prints the human summary, optionally
/// writes the JSON report. Returns `Ok(true)` when clean.
fn ftpm_analyzer_cli(args: &[String]) -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory")?,
                ))
            }
            "--json" => {
                json = Some(PathBuf::from(
                    it.next().ok_or("--json requires a file path")?,
                ))
            }
            "--help" | "-h" => {
                println!(
                    "ftpm-analyzer: workspace invariant linter\n\n\
                     USAGE: ftpm-analyzer [--root DIR] [--json PATH]\n\n\
                     Enforces the project rules R1-R5 over every crate:\n  \
                     R1 and_count        no `.and(..).count_ones()` outside bitmap/src/kernel.rs or tests\n  \
                     R2 panic            no panics in library code of core/events/bitmap/baselines/mi\n  \
                     R3 boundary_match   BoundaryPolicy matches name every variant\n  \
                     R4 unsafe           unsafe confined to bench/src/alloc_track.rs\n  \
                     R5 write_discard    sink write results must not be discarded\n\n\
                     Suppress a finding with `// lint: allow(rule, reason)` on the\n\
                     same line or the line above. Exit code 1 on any violation."
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            ftpm_analyzer::find_workspace_root(&cwd)
                .ok_or("no workspace Cargo.toml above the current directory; pass --root")?
        }
    };

    let report = ftpm_analyzer::analyze_workspace(&root);
    for v in &report.violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    println!(
        "ftpm-analyzer: {} files scanned, {} violations, {} allow markers",
        report.files_scanned,
        report.violations.len(),
        report.allows.len()
    );
    if let Some(path) = json {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(&path, report.to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("ftpm-analyzer: report written to {}", path.display());
    }
    Ok(report.violations.is_empty())
}
