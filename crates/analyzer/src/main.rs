//! CLI entry point: `cargo run -p ftpm-analyzer [-- --root DIR --json PATH]`.
//!
//! Exit code 0 when the workspace is clean, 2 when any violation is
//! found, 1 on analyzer internal errors (unreadable files, usage
//! errors). Also reachable as `ftpm lint`.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ftpm_analyzer::AnalyzeOptions;

/// Outcome of one CLI run, ordered by exit-code severity.
enum Outcome {
    Clean,
    Violations,
    InternalError,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ftpm_analyzer_cli(&args) {
        Ok(Outcome::Clean) => ExitCode::SUCCESS,
        Ok(Outcome::Violations) => ExitCode::from(2),
        Ok(Outcome::InternalError) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("ftpm-analyzer: {msg}");
            ExitCode::from(1)
        }
    }
}

/// Parses args, runs the pass, prints the human summary, optionally
/// writes the JSON report.
fn ftpm_analyzer_cli(args: &[String]) -> Result<Outcome, String> {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut opts = AnalyzeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory")?,
                ))
            }
            "--json" => {
                json = Some(PathBuf::from(
                    it.next().ok_or("--json requires a file path")?,
                ))
            }
            "--strict-allows" => opts.strict_allows = true,
            "--help" | "-h" => {
                println!(
                    "ftpm-analyzer: workspace invariant linter\n\n\
                     USAGE: ftpm-analyzer [--root DIR] [--json PATH] [--strict-allows]\n\n\
                     Per-file rules (token-level):\n  \
                     R1 and_count           no `.and(..).count_ones()` outside bitmap/src/kernel.rs or tests\n  \
                     R2 panic               no panics in library code of core/events/bitmap/baselines/mi\n  \
                     R3 boundary_match      BoundaryPolicy matches name every variant\n  \
                     R4 unsafe              unsafe confined to bench/src/alloc_track.rs\n  \
                     R5 write_discard       sink write results must not be discarded\n  \
                     R6 filter_confinement  CorrelationFilter built only at the approx/exchange seams\n\n\
                     Whole-program rules (over the workspace item graph):\n  \
                     R7 hot_path            no transient allocation / undocumented panics reachable from the hot set\n  \
                     R8 facade              every ftpm_core export is re-exported by the ftpm facade\n  \
                     R9 sink_seam           every public miner routes through the mine_*_internal seam\n  \
                     R10 concurrency        threads/channels/shared state only in parallel/executor/schedule.rs\n\n\
                     Suppress a finding with `// lint: allow(rule, reason)` on the\n\
                     same line or the line above. Markers that suppress nothing are\n\
                     reported as warnings (violations with --strict-allows).\n\n\
                     Exit codes: 0 clean, 2 violations found, 1 internal error."
                );
                return Ok(Outcome::Clean);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            ftpm_analyzer::find_workspace_root(&cwd)
                .ok_or("no workspace Cargo.toml above the current directory; pass --root")?
        }
    };

    let report = ftpm_analyzer::analyze_workspace_with(&root, &opts);
    for v in &report.violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    for w in &report.warnings {
        eprintln!("{}:{}: warning [{}] {}", w.file, w.line, w.rule, w.message);
    }
    for e in &report.internal_errors {
        eprintln!("internal error: {e}");
    }
    println!(
        "ftpm-analyzer: {} files scanned, {} violations, {} warnings, \
         {} internal errors, {} allow markers",
        report.files_scanned,
        report.violations.len(),
        report.warnings.len(),
        report.internal_errors.len(),
        report.allows.len()
    );
    if let Some(path) = json {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(&path, report.to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("ftpm-analyzer: report written to {}", path.display());
    }
    if !report.internal_errors.is_empty() {
        Ok(Outcome::InternalError)
    } else if !report.violations.is_empty() {
        Ok(Outcome::Violations)
    } else {
        Ok(Outcome::Clean)
    }
}
