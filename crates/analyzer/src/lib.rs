//! # ftpm-analyzer — workspace invariant linter
//!
//! A project-specific static-analysis pass for the ftpm workspace. The
//! miner's headline guarantee (exchange == support-complete == unsharded,
//! bit-for-bit) rests on conventions rustc cannot check; this crate
//! enforces them as errors. See [`rules`] for the rule set (R1–R5) and
//! the `// lint: allow(rule, reason)` suppression grammar.
//!
//! Run it as `cargo run -p ftpm-analyzer` (or `ftpm lint`); add
//! `--json PATH` to emit the machine-readable `LINT_report.json` the CI
//! `analyze` job archives.
#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{AllowRecord, Report, Violation};
pub use rules::{check_source, FileContext};

use std::path::{Path, PathBuf};

/// Per-crate `#![forbid(unsafe_code)]` requirements: every crate root
/// must carry the attribute. `bench` is the one exception — its
/// allocation-tracking harness needs a `GlobalAlloc` impl, so its root
/// carries `#![deny(unsafe_code)]` with a module-scoped allow instead.
fn required_unsafe_attr(crate_name: &str) -> &'static str {
    if crate_name == "bench" {
        "deny"
    } else {
        "forbid"
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for a
/// deterministic report.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// True if the crate-root source opts out of unsafe code at the required
/// level. Token-level check: `#![<level>(unsafe_code)]`.
fn has_unsafe_attr(src: &str, level: &str) -> bool {
    let lexed = lexer::lex(src);
    (0..lexed.tokens.len()).any(|i| {
        lexed.is_punct(src, i, "#")
            && lexed.is_punct(src, i + 1, "!")
            && lexed.is_punct(src, i + 2, "[")
            && lexed.is_ident(src, i + 3, level)
            && lexed.is_punct(src, i + 4, "(")
            && lexed.is_ident(src, i + 5, "unsafe_code")
            && lexed.is_punct(src, i + 6, ")")
            && lexed.is_punct(src, i + 7, "]")
    })
}

/// Lints every source file under `<root>/crates`, returning the full
/// report. `root` must be the workspace root (the directory holding the
/// top-level `Cargo.toml`).
pub fn analyze_workspace(root: &Path) -> Report {
    let mut report = Report {
        root: root.display().to_string(),
        ..Report::default()
    };
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    rs_files(&crates_dir, &mut files);

    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            report.violations.push(Violation {
                rule: "io".into(),
                file: path.display().to_string(),
                line: 0,
                message: "file exists but could not be read as UTF-8".into(),
            });
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = FileContext::classify(&rel);
        report.files_scanned += 1;

        // R1–R5 over the file body.
        report.violations.extend(check_source(&src, &ctx));

        // Audit trail: record every allow marker with its reason.
        let lexed = lexer::lex(&src);
        let mut marker_errs = Vec::new();
        for a in rules::collect_allows(&lexed, &ctx, &mut marker_errs) {
            report.allows.push(AllowRecord {
                rule: a.rule,
                file: rel.clone(),
                line: a.line,
                reason: a.reason,
            });
        }

        // R4b: crate roots must opt out of unsafe code. A crate root is
        // src/lib.rs, src/main.rs, or a src/bin/*.rs target.
        let is_root = rel.ends_with("/src/lib.rs")
            || rel.ends_with("/src/main.rs")
            || (rel.contains("/src/bin/") && rel.ends_with(".rs"));
        if is_root {
            let level = required_unsafe_attr(&ctx.crate_name);
            if !has_unsafe_attr(&src, level) {
                report.violations.push(Violation {
                    rule: "R4/unsafe_attr".into(),
                    file: rel.clone(),
                    line: 1,
                    message: format!(
                        "crate root missing `#![{level}(unsafe_code)]` (every crate \
                         opts out of unsafe; `bench` uses `deny` with a module-scoped \
                         allow on alloc_track)"
                    ),
                });
            }
        }
    }

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
        .allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_attr_detection() {
        assert!(has_unsafe_attr("#![forbid(unsafe_code)]\npub fn f() {}", "forbid"));
        assert!(has_unsafe_attr(
            "//! docs first\n#![forbid(unsafe_code)]",
            "forbid"
        ));
        assert!(!has_unsafe_attr("#![forbid(unsafe_code)]", "deny"));
        assert!(!has_unsafe_attr("pub fn f() {}", "forbid"));
        // An outer attribute on an item is not a crate-level opt-out.
        assert!(!has_unsafe_attr("#[forbid(unsafe_code)]\nmod m {}", "forbid"));
    }

    /// The linter must be clean on its own workspace — the same check
    /// `cargo run -p ftpm-analyzer` performs, wired into `cargo test` so
    /// a violation fails fast without the separate binary run.
    #[test]
    fn workspace_is_lint_clean() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root above CARGO_MANIFEST_DIR");
        let report = analyze_workspace(&root);
        assert!(report.files_scanned > 20, "walker found the crates");
        let rendered: Vec<String> = report
            .violations
            .iter()
            .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message))
            .collect();
        assert!(
            report.violations.is_empty(),
            "workspace has lint violations:\n{}",
            rendered.join("\n")
        );
    }
}
