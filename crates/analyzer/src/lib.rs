//! # ftpm-analyzer — workspace invariant linter
//!
//! A project-specific static-analysis pass for the ftpm workspace. The
//! miner's headline guarantee (exchange == support-complete == unsharded,
//! bit-for-bit) rests on conventions rustc cannot check; this crate
//! enforces them as errors. See [`rules`] for the per-file rule set
//! (R1–R6), [`graph`] for the whole-program rules (R7–R10) over the
//! [`graph::ItemGraph`] workspace model, and the
//! `// lint: allow(rule, reason)` suppression grammar. Allow markers
//! that suppress nothing are themselves reported (warnings by default,
//! violations under [`AnalyzeOptions::strict_allows`]) so suppressions
//! cannot outlive their reason.
//!
//! Run it as `cargo run -p ftpm-analyzer` (or `ftpm lint`); add
//! `--json PATH` to emit the machine-readable `LINT_report.json` the CI
//! `analyze` job archives. Exit codes: 0 clean, 2 violations found,
//! 1 analyzer internal error.
#![forbid(unsafe_code)]

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

pub use graph::{FileRecord, ItemGraph};
pub use report::{AllowRecord, Report, Violation};
pub use rules::{check_source, FileContext};

use std::path::{Path, PathBuf};

/// Options for a workspace pass.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Report stale allow markers as violations instead of warnings.
    pub strict_allows: bool,
}

/// Per-crate `#![forbid(unsafe_code)]` requirements: every crate root
/// must carry the attribute. `bench` is the one exception — its
/// allocation-tracking harness needs a `GlobalAlloc` impl, so its root
/// carries `#![deny(unsafe_code)]` with a module-scoped allow instead.
fn required_unsafe_attr(crate_name: &str) -> &'static str {
    if crate_name == "bench" {
        "deny"
    } else {
        "forbid"
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for a
/// deterministic report.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // `fixtures` holds the analyzer's own deliberately-bad test
            // snippets — data for `analyze_sources`, not workspace code.
            if path.file_name().is_some_and(|n| n == "target" || n == "fixtures") {
                continue;
            }
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// True if the crate-root source opts out of unsafe code at the required
/// level. Token-level check: `#![<level>(unsafe_code)]`.
fn has_unsafe_attr(src: &str, level: &str) -> bool {
    let lexed = lexer::lex(src);
    (0..lexed.tokens.len()).any(|i| {
        lexed.is_punct(src, i, "#")
            && lexed.is_punct(src, i + 1, "!")
            && lexed.is_punct(src, i + 2, "[")
            && lexed.is_ident(src, i + 3, level)
            && lexed.is_punct(src, i + 4, "(")
            && lexed.is_ident(src, i + 5, "unsafe_code")
            && lexed.is_punct(src, i + 6, ")")
            && lexed.is_punct(src, i + 7, "]")
    })
}

/// Lints every source file under `<root>/crates`, returning the full
/// report. `root` must be the workspace root (the directory holding the
/// top-level `Cargo.toml`).
pub fn analyze_workspace(root: &Path) -> Report {
    analyze_workspace_with(root, &AnalyzeOptions::default())
}

/// [`analyze_workspace`] with explicit options.
pub fn analyze_workspace_with(root: &Path, opts: &AnalyzeOptions) -> Report {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    rs_files(&crates_dir, &mut files);

    let mut sources = Vec::new();
    let mut internal_errors = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(path) {
            Ok(src) => sources.push((rel, src)),
            Err(e) => internal_errors.push(format!("{rel}: unreadable ({e})")),
        }
    }

    let mut report = analyze_sources(sources, opts);
    report.root = root.display().to_string();
    report.internal_errors.extend(internal_errors);
    report
}

/// Lints an in-memory file set of `(workspace-relative path, source)`
/// pairs — the same full pass as [`analyze_workspace`] (per-file rules,
/// whole-program rules over the [`ItemGraph`], stale-allow audit), used
/// directly by the fixture tests.
pub fn analyze_sources(sources: Vec<(String, String)>, opts: &AnalyzeOptions) -> Report {
    let mut report = Report::default();

    // Pass 1: lex + parse every file into the program model's records,
    // running the per-file rules (R1–R6 and R4b) along the way.
    let mut records: Vec<FileRecord> = Vec::new();
    for (rel, src) in sources {
        let ctx = FileContext::classify(&rel);
        report.files_scanned += 1;
        let lexed = lexer::lex(&src);
        let allows = rules::collect_allows(&lexed, &ctx, &mut report.violations);
        let tests = rules::test_regions(&src, &lexed);
        rules::check_source_with(&src, &lexed, &ctx, &allows, &tests, &mut report.violations);

        // R4b: crate roots must opt out of unsafe code. A crate root is
        // src/lib.rs, src/main.rs, or a src/bin/*.rs target.
        let is_root = rel.ends_with("/src/lib.rs")
            || rel.ends_with("/src/main.rs")
            || (rel.contains("/src/bin/") && rel.ends_with(".rs"));
        if is_root {
            let level = required_unsafe_attr(&ctx.crate_name);
            if !has_unsafe_attr(&src, level) {
                report.violations.push(Violation {
                    rule: "R4/unsafe_attr".into(),
                    file: rel.clone(),
                    line: 1,
                    message: format!(
                        "crate root missing `#![{level}(unsafe_code)]` (every crate \
                         opts out of unsafe; `bench` uses `deny` with a module-scoped \
                         allow on alloc_track)"
                    ),
                });
            }
        }

        let parsed = parser::parse_file(&src, &lexed, &tests);
        records.push(FileRecord {
            ctx,
            src,
            lexed,
            parsed,
            allows,
            test_regions: tests,
        });
    }

    // Pass 2: whole-program rules (R7–R10) over the item graph.
    let item_graph = ItemGraph::build(&records);
    item_graph.check_all(&mut report.violations);

    // Pass 3: stale-allow audit — markers that suppressed nothing in
    // either pass have outlived their reason.
    for rec in &records {
        for a in &rec.allows {
            if a.used.get() {
                continue;
            }
            let v = Violation {
                rule: "stale_allow".into(),
                file: rec.ctx.rel_path.clone(),
                line: a.line,
                message: format!(
                    "`// lint: allow({}, {})` suppresses no finding; remove the \
                     marker (suppressions must not outlive their reason)",
                    a.rule, a.reason
                ),
            };
            if opts.strict_allows {
                report.violations.push(v);
            } else {
                report.warnings.push(v);
            }
        }
    }

    // Audit trail: record every allow marker with its reason.
    for rec in &records {
        for a in &rec.allows {
            report.allows.push(AllowRecord {
                rule: a.rule.clone(),
                file: rec.ctx.rel_path.clone(),
                line: a.line,
                reason: a.reason.clone(),
            });
        }
    }

    let key = |v: &Violation| (v.file.clone(), v.line, v.rule.clone());
    report.violations.sort_by_key(key);
    report.warnings.sort_by_key(key);
    report
        .allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_attr_detection() {
        assert!(has_unsafe_attr("#![forbid(unsafe_code)]\npub fn f() {}", "forbid"));
        assert!(has_unsafe_attr(
            "//! docs first\n#![forbid(unsafe_code)]",
            "forbid"
        ));
        assert!(!has_unsafe_attr("#![forbid(unsafe_code)]", "deny"));
        assert!(!has_unsafe_attr("pub fn f() {}", "forbid"));
        // An outer attribute on an item is not a crate-level opt-out.
        assert!(!has_unsafe_attr("#[forbid(unsafe_code)]\nmod m {}", "forbid"));
    }

    /// The linter must be clean on its own workspace — the same check
    /// `cargo run -p ftpm-analyzer` performs, wired into `cargo test` so
    /// a violation fails fast without the separate binary run.
    #[test]
    fn workspace_is_lint_clean() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root above CARGO_MANIFEST_DIR");
        let report = analyze_workspace(&root);
        assert!(report.files_scanned > 20, "walker found the crates");
        let render = |list: &[Violation]| -> String {
            list.iter()
                .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert!(
            report.violations.is_empty(),
            "workspace has lint violations:\n{}",
            render(&report.violations)
        );
        // Stale allows are warnings by default, but the workspace itself
        // must not carry any — a suppression that fires nothing is dead.
        assert!(
            report.warnings.is_empty(),
            "workspace has stale allow markers:\n{}",
            render(&report.warnings)
        );
        assert!(
            report.internal_errors.is_empty(),
            "analyzer internal errors: {:?}",
            report.internal_errors
        );
    }
}
