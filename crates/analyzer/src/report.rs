//! Machine-readable lint report — hand-rolled JSON, same offline spirit
//! as the lexer (the analyzer must not pull the vendored serde shim into
//! a second build graph).

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id, e.g. `R2/panic`.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// One `// lint: allow(rule, reason)` marker, recorded so the report
/// doubles as an audit trail of every suppressed site.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
}

/// The full result of one workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace root the paths are relative to.
    pub root: String,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    /// Non-fatal findings — today, stale allow markers (promoted to
    /// `violations` under `--strict-allows`).
    pub warnings: Vec<Violation>,
    /// Analyzer-side failures (unreadable files, bad roots) — these are
    /// *not* lint findings and map to a distinct exit code.
    pub internal_errors: Vec<String>,
    pub allows: Vec<AllowRecord>,
}

impl Report {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        // Writes into a String are infallible (fmt::Write).
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = writeln!(s, "{{\n  \"tool\": \"ftpm-analyzer\",");
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = writeln!(s, "  \"root\": {},", json_str(&self.root));
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = writeln!(s, "  \"violation_count\": {},", self.violations.len());
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = writeln!(s, "  \"warning_count\": {},", self.warnings.len());
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = writeln!(
            s,
            "  \"internal_error_count\": {},",
            self.internal_errors.len()
        );
        s.push_str("  \"violations\": [");
        write_violations(&mut s, &self.violations);
        s.push_str("],\n  \"warnings\": [");
        write_violations(&mut s, &self.warnings);
        s.push_str("],\n  \"internal_errors\": [");
        for (i, e) in self.internal_errors.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            // lint: allow(write_discard, fmt::Write to String is infallible)
            let _ = write!(s, "{sep}\n    {}", json_str(e));
        }
        if !self.internal_errors.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            // lint: allow(write_discard, fmt::Write to String is infallible)
            let _ = write!(
                s,
                "{sep}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&a.rule),
                json_str(&a.file),
                a.line,
                json_str(&a.reason)
            );
        }
        if !self.allows.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Writes one violation array body (shared by `violations`/`warnings`).
fn write_violations(s: &mut String, list: &[Violation]) {
    for (i, v) in list.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = write!(
            s,
            "{sep}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(&v.rule),
            json_str(&v.file),
            v.line,
            json_str(&v.message)
        );
    }
    if !list.is_empty() {
        s.push_str("\n  ");
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // lint: allow(write_discard, fmt::Write to String is infallible)
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report {
            root: "/tmp/ws".into(),
            files_scanned: 2,
            ..Report::default()
        };
        r.violations.push(Violation {
            rule: "R2/panic".into(),
            file: "crates/core/src/x.rs".into(),
            line: 7,
            message: "a \"quoted\"\nmessage".into(),
        });
        r.warnings.push(Violation {
            rule: "stale_allow".into(),
            file: "crates/core/src/x.rs".into(),
            line: 3,
            message: "allow(panic) suppresses nothing".into(),
        });
        r.internal_errors.push("crates/core/src/bad.rs: not UTF-8".into());
        let j = r.to_json();
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("\"warning_count\": 1"));
        assert!(j.contains("\"internal_error_count\": 1"));
        assert!(j.contains("\\\"quoted\\\"\\nmessage"));
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("suppresses nothing"));
        // Empty arrays stay well-formed.
        let empty = Report::default().to_json();
        assert!(empty.contains("\"violations\": []"));
        assert!(empty.contains("\"warnings\": []"));
        assert!(empty.contains("\"internal_errors\": []"));
        assert!(empty.contains("\"allows\": []"));
    }
}
