//! Machine-readable lint report — hand-rolled JSON, same offline spirit
//! as the lexer (the analyzer must not pull the vendored serde shim into
//! a second build graph).

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id, e.g. `R2/panic`.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// One `// lint: allow(rule, reason)` marker, recorded so the report
/// doubles as an audit trail of every suppressed site.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
}

/// The full result of one workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace root the paths are relative to.
    pub root: String,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub allows: Vec<AllowRecord>,
}

impl Report {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        // Writes into a String are infallible (fmt::Write).
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = writeln!(s, "{{\n  \"tool\": \"ftpm-analyzer\",");
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = writeln!(s, "  \"root\": {},", json_str(&self.root));
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        // lint: allow(write_discard, fmt::Write to String is infallible)
        let _ = writeln!(s, "  \"violation_count\": {},", self.violations.len());
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            // lint: allow(write_discard, fmt::Write to String is infallible)
            let _ = write!(
                s,
                "{sep}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.message)
            );
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            // lint: allow(write_discard, fmt::Write to String is infallible)
            let _ = write!(
                s,
                "{sep}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&a.rule),
                json_str(&a.file),
                a.line,
                json_str(&a.reason)
            );
        }
        if !self.allows.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // lint: allow(write_discard, fmt::Write to String is infallible)
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report {
            root: "/tmp/ws".into(),
            files_scanned: 2,
            ..Report::default()
        };
        r.violations.push(Violation {
            rule: "R2/panic".into(),
            file: "crates/core/src/x.rs".into(),
            line: 7,
            message: "a \"quoted\"\nmessage".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("\\\"quoted\\\"\\nmessage"));
        assert!(j.contains("\"files_scanned\": 2"));
        // Empty arrays stay well-formed.
        let empty = Report::default().to_json();
        assert!(empty.contains("\"violations\": []"));
        assert!(empty.contains("\"allows\": []"));
    }
}
