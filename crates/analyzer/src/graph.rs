//! The workspace program model and the whole-program rules R7–R10.
//!
//! [`ItemGraph`] stitches every file's [`crate::parser::ParsedFile`] into
//! one view: functions with their crate/module/impl coordinates, a
//! heuristic identifier-resolved call graph, and the flattened `use`
//! surface. Resolution is deliberately conservative-by-name —
//! `Type::name(..)` pins the receiver, `.name(..)` fans out to every
//! impl of that method name, and std vocabulary produces no edges at all
//! (see [`crate::parser::BUILTIN_CALLS`]) — so a missing edge is always
//! possible but a *wrong* conclusion needs two rules to fail at once.
//!
//! The rules:
//!
//! * **R7 `hot_path`** — no transient-allocation, I/O or panic-family
//!   calls transitively reachable (depth ≤ [`R7_DEPTH`]) from the
//!   declared hot set: the bitmap kernel module, `verify_pair`,
//!   `grow_candidates`, every `BoundaryKernel` impl,
//!   `OccArena::push_extend`, and the `PatternPool` interning family
//!   (`intern*` — the merge/exchange hot path hits the pool once per
//!   emission). Structural allocations (arena growth,
//!   bitmap construction) are the hot path's job; `format!`-family
//!   strings, `Box::new` and stray `unwrap`s are not. Panic sites that
//!   already carry a `lint: allow(panic, …)` contract are treated as
//!   documented.
//! * **R8 `facade`** — every name `ftpm_core` re-exports must be
//!   re-exported by the `ftpm` facade too. PRs 2–8 each had to remember
//!   this by hand; now drift is a lint failure.
//! * **R9 `sink_seam`** — every public `mine_*` entry point in
//!   `ftpm_core` must transitively reach the one mining seam
//!   (`mine_internal` / `mine_parallel_internal` /
//!   `mine_exchange_internal`, depth ≤ [`R9_DEPTH`]). One-off mining
//!   loops cannot share the sink/boundary/correlation plumbing, so they
//!   are banned outright. `reference.rs` is exempt by design: the oracle
//!   must stay independent of the machinery it checks.
//! * **R10 `concurrency`** — thread spawns, channels and shared-state
//!   primitives only in `parallel.rs` / `executor.rs` / `schedule.rs`
//!   (the seam a distributed worker loop will plug into). The `bench`
//!   crate is exempt: its allocation tracker is atomics-based
//!   instrumentation, not mining concurrency.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::lexer::{Lexed, TokenKind};
use crate::parser::{Call, CallKind, ParsedFile, BUILTIN_CALLS};
use crate::report::Violation;
use crate::rules::{allowed, Allow, FileContext};

/// Maximum call-graph depth R7 follows from a hot root.
pub const R7_DEPTH: usize = 4;

/// Maximum call-graph depth R9 follows from a `mine_*` entry point.
pub const R9_DEPTH: usize = 8;

/// The mining seam every public `mine_*` entry point must reach (R9).
const SINK_SEAMS: &[&str] = &[
    "mine_internal",
    "mine_parallel_internal",
    "mine_exchange_internal",
];

/// Files allowed to touch concurrency primitives (R10).
const CONCURRENCY_FILES: &[&str] = &[
    "crates/core/src/parallel.rs",
    "crates/core/src/executor.rs",
    "crates/core/src/schedule.rs",
];

/// Concurrency idents R10 confines (plus any ident starting `Atomic`).
const CONCURRENCY_IDENTS: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "spawn",
    "channel",
    "sync_channel",
];

/// Macro names R7 bans in the hot set (the `debug_assert*` family is
/// release-free and always fine).
const R7_BANNED_MACROS: &[&str] = &[
    "format", "println", "print", "eprintln", "eprint", "dbg", "panic", "unreachable",
    "todo", "unimplemented", "assert", "assert_eq", "assert_ne",
];

/// Method/free call names R7 bans in the hot set.
const R7_BANNED_CALLS: &[&str] = &["to_string", "to_owned", "unwrap", "expect"];

/// Panic-family names whose existing `lint: allow(panic, …)` contract
/// also satisfies R7 (the site is documented, not accidental).
const PANIC_FAMILY: &[&str] = &[
    "panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq",
    "assert_ne", "unwrap", "expect",
];

/// One analyzed file, as the program model consumes it.
pub struct FileRecord {
    pub ctx: FileContext,
    pub src: String,
    pub lexed: Lexed,
    pub parsed: ParsedFile,
    pub allows: Vec<Allow>,
    pub test_regions: Vec<(usize, usize)>,
}

/// One function in the workspace model.
struct FnNode {
    /// Index into the file list.
    file: usize,
    name: String,
    /// Full module path: file-derived plus inline `mod`s.
    modules: Vec<String>,
    is_pub: bool,
    impl_type: Option<String>,
    impl_trait: Option<String>,
    line: u32,
    calls: Vec<Call>,
    in_test: bool,
}

/// The workspace program model.
pub struct ItemGraph<'a> {
    files: &'a [FileRecord],
    fns: Vec<FnNode>,
    /// Function ids by bare name, for call resolution.
    by_name: HashMap<String, Vec<usize>>,
}

/// Module path a file contributes to its items: `src/lib.rs`,
/// `src/main.rs` and `mod.rs` add nothing; `src/a/b.rs` adds `a::b`;
/// `src/bin/x.rs` adds `x` (its own target, same crate namespace for
/// resolution purposes); `tests/x.rs` adds `x`.
fn file_modules(rel: &str) -> Vec<String> {
    let mut parts: Vec<&str> = rel.split('/').collect();
    // Strip `crates/<name>/` and the source root segment.
    if parts.first() == Some(&"crates") {
        parts.drain(..2);
    }
    if matches!(parts.first(), Some(&"src") | Some(&"tests") | Some(&"benches")) {
        parts.remove(0);
    }
    let mut out: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
    if let Some(last) = out.last_mut() {
        *last = last.trim_end_matches(".rs").to_string();
    }
    match out.last().map(String::as_str) {
        Some("lib") | Some("main") | Some("mod") => {
            out.pop();
        }
        _ => {}
    }
    out.retain(|s| s != "bin");
    out
}

/// Maps a dependency name in a path call to a workspace crate directory
/// name (`ftpm_core` → `core`, the facade stays `ftpm`).
fn crate_of_path_root(seg: &str) -> Option<&str> {
    match seg {
        "ftpm" => Some("ftpm"),
        "ftpm_analyzer" => Some("analyzer"),
        _ => seg.strip_prefix("ftpm_"),
    }
}

impl<'a> ItemGraph<'a> {
    /// Builds the model over every analyzed file.
    pub fn build(files: &'a [FileRecord]) -> ItemGraph<'a> {
        let mut fns = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            let base = file_modules(&f.ctx.rel_path);
            for item in &f.parsed.fns {
                let mut modules = base.clone();
                modules.extend(item.modules.iter().cloned());
                fns.push(FnNode {
                    file: fi,
                    name: item.name.clone(),
                    modules,
                    is_pub: item.is_pub,
                    impl_type: item.impl_type.clone(),
                    impl_trait: item.impl_trait.clone(),
                    line: item.line,
                    calls: item.calls.clone(),
                    in_test: item.in_test || f.ctx.is_test_file,
                });
            }
        }
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        ItemGraph { files, fns, by_name }
    }

    fn crate_name(&self, id: usize) -> &str {
        &self.files[self.fns[id].file].ctx.crate_name
    }

    fn rel_path(&self, id: usize) -> &str {
        &self.files[self.fns[id].file].ctx.rel_path
    }

    /// True when `id` can be the callee of a call in `caller`: not test
    /// code, and not in a leaf crate (`bench`/`ftpm`/`analyzer` — crates
    /// nothing else depends on) unless the caller is in that same crate.
    /// Name-based resolution would otherwise fan library calls out into
    /// binaries that can never be on the callee side.
    fn candidate(&self, caller: usize, id: usize) -> bool {
        const LEAF_CRATES: &[&str] = &["bench", "ftpm", "analyzer"];
        let cc = self.crate_name(id);
        !self.fns[id].in_test
            && (cc == self.crate_name(caller) || !LEAF_CRATES.contains(&cc))
    }

    /// Candidate callees of one call site, per the resolution heuristics.
    fn resolve(&self, caller: usize, call: &CallKind) -> Vec<usize> {
        let ids_named = |name: &str| -> &[usize] {
            self.by_name.get(name).map_or(&[][..], Vec::as_slice)
        };
        match call {
            CallKind::Macro(_) => Vec::new(),
            CallKind::Method(name) => {
                if BUILTIN_CALLS.contains(&name.as_str()) {
                    return Vec::new();
                }
                ids_named(name)
                    .iter()
                    .copied()
                    .filter(|&id| {
                        self.fns[id].impl_type.is_some() && self.candidate(caller, id)
                    })
                    .collect()
            }
            CallKind::Free(name) => {
                if BUILTIN_CALLS.contains(&name.as_str()) {
                    return Vec::new();
                }
                let all = ids_named(name);
                let caller_node = &self.fns[caller];
                let same_module: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&id| {
                        self.candidate(caller, id)
                            && self.fns[id].impl_type.is_none()
                            && self.crate_name(id) == self.crate_name(caller)
                            && self.fns[id].modules == caller_node.modules
                    })
                    .collect();
                if !same_module.is_empty() {
                    return same_module;
                }
                let same_crate: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&id| {
                        self.candidate(caller, id)
                            && self.fns[id].impl_type.is_none()
                            && self.crate_name(id) == self.crate_name(caller)
                    })
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                all.iter()
                    .copied()
                    .filter(|&id| {
                        self.candidate(caller, id) && self.fns[id].impl_type.is_none()
                    })
                    .collect()
            }
            CallKind::Path(seg, name) => {
                let all = ids_named(name);
                let caller_node = &self.fns[caller];
                if seg == "Self" {
                    return all
                        .iter()
                        .copied()
                        .filter(|&id| {
                            self.candidate(caller, id)
                                && self.fns[id].impl_type == caller_node.impl_type
                                && self.crate_name(id) == self.crate_name(caller)
                        })
                        .collect();
                }
                if seg == "crate" || seg == "self" || seg == "super" {
                    return all
                        .iter()
                        .copied()
                        .filter(|&id| {
                            self.candidate(caller, id)
                                && self.crate_name(id) == self.crate_name(caller)
                        })
                        .collect();
                }
                if let Some(krate) = crate_of_path_root(seg) {
                    return all
                        .iter()
                        .copied()
                        .filter(|&id| !self.fns[id].in_test && self.crate_name(id) == krate)
                        .collect();
                }
                // `Type::name` (an impl of Type) or `module::name`.
                all.iter()
                    .copied()
                    .filter(|&id| {
                        self.candidate(caller, id)
                            && (self.fns[id].impl_type.as_deref() == Some(seg.as_str())
                                || self.fns[id].modules.last().map(String::as_str)
                                    == Some(seg.as_str()))
                    })
                    .collect()
            }
        }
    }

    /// Breadth-first reachable set from `roots`, up to `depth` edges.
    /// Returns each reached function with the id path that reached it
    /// (root first).
    fn reachable(&self, roots: &[usize], depth: usize) -> Vec<(usize, Vec<usize>)> {
        let mut seen: HashSet<usize> = roots.iter().copied().collect();
        let mut queue: VecDeque<(usize, Vec<usize>)> = roots
            .iter()
            .map(|&r| (r, vec![r]))
            .collect();
        let mut out = Vec::new();
        while let Some((id, chain)) = queue.pop_front() {
            out.push((id, chain.clone()));
            if chain.len() > depth {
                continue;
            }
            for call in &self.fns[id].calls {
                for callee in self.resolve(id, &call.kind) {
                    if seen.insert(callee) {
                        let mut next = chain.clone();
                        next.push(callee);
                        queue.push_back((callee, next));
                    }
                }
            }
        }
        out
    }

    fn chain_names(&self, chain: &[usize]) -> String {
        chain
            .iter()
            .map(|&id| self.fns[id].name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// The R7 hot set: bitmap kernel fns, the L2 verifier, the growth
    /// loop, the monomorphized boundary kernels, the arena's extend
    /// path, and the pattern pool's interning family (once per emitted
    /// pattern on the merge/exchange path).
    fn hot_roots(&self) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&id| {
                let f = &self.fns[id];
                if f.in_test {
                    return false;
                }
                (self.crate_name(id) == "bitmap"
                    && f.modules.first().map(String::as_str) == Some("kernel"))
                    || f.name == "verify_pair"
                    || f.name == "grow_candidates"
                    || f.impl_trait.as_deref() == Some("BoundaryKernel")
                    || (f.impl_type.as_deref() == Some("OccArena") && f.name == "push_extend")
                    || (f.impl_type.as_deref() == Some("PatternPool")
                        && f.name.starts_with("intern"))
            })
            .collect()
    }

    /// R7: hot-path purity.
    pub fn check_hot_path(&self, out: &mut Vec<Violation>) {
        let roots = self.hot_roots();
        for (id, chain) in self.reachable(&roots, R7_DEPTH) {
            let f = &self.fns[id];
            let allows = &self.files[f.file].allows;
            for call in &f.calls {
                let name = match &call.kind {
                    CallKind::Macro(n) => {
                        if !R7_BANNED_MACROS.contains(&n.as_str()) {
                            continue;
                        }
                        format!("{n}!")
                    }
                    CallKind::Method(n) | CallKind::Free(n) => {
                        if !R7_BANNED_CALLS.contains(&n.as_str()) {
                            continue;
                        }
                        n.clone()
                    }
                    CallKind::Path(seg, n) => {
                        let boxed = seg == "Box" && n == "new";
                        let string = seg == "String" && (n == "new" || n == "from");
                        if !boxed && !string && !R7_BANNED_CALLS.contains(&n.as_str()) {
                            continue;
                        }
                        format!("{seg}::{n}")
                    }
                };
                let bare = name.trim_end_matches('!');
                let documented_panic = PANIC_FAMILY.contains(&bare)
                    && allowed(allows, "panic", call.line);
                if documented_panic || allowed(allows, "hot_path", call.line) {
                    continue;
                }
                out.push(Violation {
                    rule: "R7/hot_path".into(),
                    file: self.rel_path(id).to_string(),
                    line: call.line,
                    message: format!(
                        "`{name}` is reachable from the hot set via `{}` (depth {}); \
                         the hot path must stay free of transient allocation, I/O and \
                         undocumented panics — restructure, or annotate with \
                         `// lint: allow(hot_path, reason)`",
                        self.chain_names(&chain),
                        chain.len() - 1,
                    ),
                });
            }
        }
    }

    /// R8: facade coverage — every `pub use` leaf of `ftpm_core`'s crate
    /// root must be re-exported from `ftpm_core` by the facade crate
    /// root. Skipped when either crate root is absent from the file set
    /// (fixture corpora).
    pub fn check_facade(&self, out: &mut Vec<Violation>) {
        let core_lib = self
            .files
            .iter()
            .find(|f| f.ctx.rel_path == "crates/core/src/lib.rs");
        let facade_lib = self
            .files
            .iter()
            .find(|f| f.ctx.rel_path == "crates/ftpm/src/lib.rs");
        let (Some(core_lib), Some(facade_lib)) = (core_lib, facade_lib) else {
            return;
        };
        let mut facade: HashSet<&str> = HashSet::new();
        let mut facade_glob = false;
        for u in &facade_lib.parsed.uses {
            if u.path.first().map(String::as_str) == Some("ftpm_core") {
                if u.visible == "*" {
                    facade_glob = true;
                }
                facade.insert(u.visible.as_str());
            }
        }
        if facade_glob {
            return;
        }
        for u in &core_lib.parsed.uses {
            if !u.is_pub || u.visible == "*" || u.visible == "_" {
                continue;
            }
            if facade.contains(u.visible.as_str()) {
                continue;
            }
            if allowed(&core_lib.allows, "facade", u.line) {
                continue;
            }
            out.push(Violation {
                rule: "R8/facade".into(),
                file: core_lib.ctx.rel_path.clone(),
                line: u.line,
                message: format!(
                    "`{}` is exported by ftpm_core but not re-exported by the `ftpm` \
                     facade; add it to the facade's `pub use ftpm_core::{{..}}` list \
                     (or annotate with `// lint: allow(facade, reason)` for a \
                     deliberately internal export)",
                    u.visible
                ),
            });
        }
    }

    /// R9: sink-seam discipline for `ftpm_core`'s public miners.
    pub fn check_sink_seam(&self, out: &mut Vec<Violation>) {
        for id in 0..self.fns.len() {
            let f = &self.fns[id];
            if self.crate_name(id) != "core"
                || !f.is_pub
                || f.in_test
                || !f.name.starts_with("mine_")
                || self.rel_path(id) == "crates/core/src/reference.rs"
            {
                continue;
            }
            if SINK_SEAMS.contains(&f.name.as_str()) {
                continue;
            }
            let reached = self.reachable(&[id], R9_DEPTH);
            let hits_seam = reached
                .iter()
                .any(|(r, _)| SINK_SEAMS.contains(&self.fns[*r].name.as_str()));
            if hits_seam {
                continue;
            }
            let allows = &self.files[f.file].allows;
            if allowed(allows, "sink_seam", f.line) {
                continue;
            }
            out.push(Violation {
                rule: "R9/sink_seam".into(),
                file: self.rel_path(id).to_string(),
                line: f.line,
                message: format!(
                    "public miner `{}` never reaches the mining seam \
                     (mine_internal / mine_parallel_internal / mine_exchange_internal, \
                     depth ≤ {R9_DEPTH}); route it through the `_internal`/`_with_sink` \
                     family so every miner shares the sink, boundary and correlation \
                     plumbing — or annotate an oracle with \
                     `// lint: allow(sink_seam, reason)`",
                    f.name
                ),
            });
        }
    }

    /// R10: concurrency confinement — token-level, over the whole file
    /// set, so the rule catches primitives in type positions and paths
    /// the call-shaped parser does not model.
    pub fn check_concurrency(&self, out: &mut Vec<Violation>) {
        for f in self.files {
            if CONCURRENCY_FILES.contains(&f.ctx.rel_path.as_str())
                || f.ctx.crate_name == "bench"
                || f.ctx.is_test_file
            {
                continue;
            }
            let in_test = |pos: usize| {
                f.test_regions.iter().any(|&(s, e)| pos >= s && pos < e)
            };
            for (i, t) in f.lexed.tokens.iter().enumerate() {
                if t.kind != TokenKind::Ident || in_test(t.start) {
                    continue;
                }
                let word = f.lexed.text(&f.src, i);
                let concurrent = CONCURRENCY_IDENTS.contains(&word)
                    || (word.starts_with("Atomic") && word.len() > "Atomic".len());
                if !concurrent || allowed(&f.allows, "concurrency", t.line) {
                    continue;
                }
                out.push(Violation {
                    rule: "R10/concurrency".into(),
                    file: f.ctx.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "concurrency primitive `{word}` outside \
                         core/src/{{parallel,executor,schedule}}.rs; threads, channels \
                         and shared state are confined to the pool/executor/sequencer \
                         seam (the bench crate's instrumentation is exempt) — or \
                         annotate with `// lint: allow(concurrency, reason)`"
                    ),
                });
            }
        }
    }

    /// Runs every whole-program rule.
    pub fn check_all(&self, out: &mut Vec<Violation>) {
        self.check_hot_path(out);
        self.check_facade(out);
        self.check_sink_seam(out);
        self.check_concurrency(out);
    }
}
