//! The project-specific rules, R1–R5, evaluated over a lexed file.
//!
//! Every rule guards an invariant the compiler cannot see but the
//! system's exactness guarantee rests on:
//!
//! * **R1 `and-count`** — apriori gates must use the fused
//!   [`Bitmap::and_count`] instead of `.and(..).count_ones()`, which
//!   allocates an intermediate bitmap on the hottest path in the miner.
//!   Only the bitmap kernel module (`crates/bitmap/src/kernel.rs`, the
//!   one legitimate home of raw word loops) and test code (equivalence
//!   fixtures pin the fused kernels to the unfused reference) may spell
//!   the unfused form.
//! * **R2 `panic`** — library code of `core`/`events`/`bitmap`/
//!   `baselines`/`mi` must not panic on user data: no `unwrap`, `expect`,
//!   `panic!`, `assert!`/`assert_eq!`/`assert_ne!`, `unreachable!`,
//!   `todo!` or `unimplemented!` outside test code, unless the line (or
//!   the line above) carries `// lint: allow(panic, reason)` naming the
//!   invariant that makes the panic unreachable or the documented
//!   precondition it enforces. `debug_assert*` is always allowed — it
//!   vanishes in release builds.
//! * **R3 `boundary-match`** — a `match` whose arm patterns name
//!   `BoundaryPolicy` variants must be exhaustive *by name*: no `_ =>`
//!   and no catch-all binding arm. Adding a fourth policy must be a
//!   compile error at every decision point, not a silent fall-through.
//! * **R4 `unsafe`** — no `unsafe` outside `bench/src/alloc_track.rs`
//!   (the global-allocator shim), and every crate root must carry
//!   `#![forbid(unsafe_code)]` (`bench`: `#![deny(unsafe_code)]`).
//! * **R5 `write-discard`** — sink/writer results must not be silently
//!   discarded: no `let _ = …write…` statements and no `.ok();` on a
//!   write-family call. Writer sinks latch errors for
//!   `PatternSink::finish`; everything else must propagate.
//! * **R6 `filter-confinement`** — `CorrelationFilter` may only be
//!   constructed (`CorrelationFilter::new(..)` or a struct literal) in
//!   `crates/core/src/candidates.rs` (the definition),
//!   `crates/core/src/approx.rs` (the single construction seam) and
//!   `crates/core/src/executor.rs` (the exchange coordinator). The
//!   one-plan equivalence — every A-HTPGM composition yields the same
//!   pattern set — rests on every path consuming the *same* L1/L2
//!   gates; a filter assembled anywhere else can silently disagree.
//!
//! Suppression marker grammar (matched per line, same line or the line
//! directly above the flagged token):
//!
//! ```text
//! // lint: allow(<rule>, <reason>)
//! ```
//!
//! where `<rule>` is one of `and_count`, `panic`, `boundary_match`,
//! `unsafe`, `write_discard`, `filter_confinement`. The reason is
//! mandatory — a bare allow does not suppress.

use std::cell::Cell;

use crate::lexer::{lex, Lexed, TokenKind};
use crate::report::Violation;

/// Crates whose non-test library code falls under R2.
pub const PANIC_FREE_CRATES: &[&str] = &["core", "events", "bitmap", "baselines", "mi"];

/// Macro/method names R2 flags (without the `!`).
const PANIC_IDENTS: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Identifiers that mark a call as write-family for R5.
const WRITE_IDENTS: &[&str] = &["write", "writeln", "write_all", "write_fmt", "flush"];

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name under `crates/` (`core`, `bitmap`, …).
    pub crate_name: String,
    /// Path relative to the workspace root, for reporting.
    pub rel_path: String,
    /// True for files under `tests/`, `benches/` or `examples/` — whole
    /// file is test context for R2.
    pub is_test_file: bool,
}

impl FileContext {
    /// Classifies `rel_path` (workspace-relative, `/`-separated).
    pub fn classify(rel_path: &str) -> FileContext {
        let mut parts = rel_path.split('/');
        let crate_name = if parts.next() == Some("crates") {
            parts.next().unwrap_or("").to_string()
        } else {
            String::new()
        };
        let dir = parts.next().unwrap_or("");
        FileContext {
            crate_name,
            rel_path: rel_path.to_string(),
            is_test_file: matches!(dir, "tests" | "benches" | "examples"),
        }
    }
}

/// One parsed `// lint: allow(rule, reason)` marker. `used` latches when
/// the marker actually suppresses a finding; the stale-allow audit
/// reports markers that never fire.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    pub line: u32,
    pub used: Cell<bool>,
}

/// Extracts allow markers from the file's comments. Markers without a
/// reason are reported as violations of the marker grammar itself —
/// a bare allow suppresses nothing.
pub fn collect_allows(lexed: &Lexed, ctx: &FileContext, out: &mut Vec<Violation>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix("lint: allow(") else {
            continue;
        };
        let Some(body) = rest.split(')').next() else {
            continue;
        };
        match body.split_once(',') {
            Some((rule, reason)) if !reason.trim().is_empty() => allows.push(Allow {
                rule: rule.trim().to_string(),
                reason: reason.trim().to_string(),
                line: c.line,
                used: Cell::new(false),
            }),
            _ => out.push(Violation {
                rule: "marker".into(),
                file: ctx.rel_path.clone(),
                line: c.line,
                message: format!(
                    "malformed allow marker `{}`: use `// lint: allow(rule, reason)` \
                     with a non-empty reason",
                    c.text
                ),
            }),
        }
    }
    allows
}

/// True if `rule` is allowed on `line` (marker on the same line or the
/// line directly above). Marks every matching marker as used, feeding
/// the stale-allow audit.
pub(crate) fn allowed(allows: &[Allow], rule: &str, line: u32) -> bool {
    let mut hit = false;
    for a in allows {
        if a.rule == rule && (a.line == line || a.line + 1 == line) {
            a.used.set(true);
            hit = true;
        }
    }
    hit
}

/// Byte ranges of test code inside a non-test source file: bodies of
/// items annotated `#[cfg(test)]` or `#[test]`.
pub(crate) fn test_regions(src: &str, lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Attribute start: `#` `[` … `]` (outer only; `#![…]` is a crate
        // attribute, never a test marker on an item).
        if !(lexed.is_punct(src, i, "#") && lexed.is_punct(src, i + 1, "[")) {
            i += 1;
            continue;
        }
        // Scan the attribute body for `test` / `cfg ( test`.
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut is_test_attr = false;
        while j < toks.len() && depth > 0 {
            if toks[j].kind == TokenKind::Punct {
                match lexed.text(src, j) {
                    "[" | "(" => depth += 1,
                    "]" | ")" => depth -= 1,
                    _ => {}
                }
            } else if toks[j].kind == TokenKind::Ident && lexed.text(src, j) == "test" {
                is_test_attr = true;
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // The annotated item's extent: skip further attributes, then run
        // to the end of the first brace block (or a `;` for brace-less
        // items like `#[cfg(test)] use …;`).
        let mut k = j;
        while k + 1 < toks.len()
            && lexed.is_punct(src, k, "#")
            && lexed.is_punct(src, k + 1, "[")
        {
            let mut d = 1i32;
            k += 2;
            while k < toks.len() && d > 0 {
                if toks[k].kind == TokenKind::Punct {
                    match lexed.text(src, k) {
                        "[" | "(" => d += 1,
                        "]" | ")" => d -= 1,
                        _ => {}
                    }
                }
                k += 1;
            }
        }
        let start = toks[i].start;
        let mut d = 0i32;
        let mut end = None;
        while k < toks.len() {
            if toks[k].kind == TokenKind::Punct {
                match lexed.text(src, k) {
                    "{" => d += 1,
                    "}" => {
                        d -= 1;
                        if d == 0 {
                            end = Some(toks[k].end);
                            break;
                        }
                    }
                    ";" if d == 0 => {
                        end = Some(toks[k].end);
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        let end = end.unwrap_or(src.len());
        regions.push((start, end));
        // Continue after the item — nested `#[test]` fns inside a
        // `#[cfg(test)] mod` are already covered by the outer region.
        i = toks
            .iter()
            .position(|t| t.start >= end)
            .unwrap_or(toks.len());
    }
    regions
}

/// Runs every applicable per-file rule over one source file.
pub fn check_source(src: &str, ctx: &FileContext) -> Vec<Violation> {
    let lexed = lex(src);
    let mut out = Vec::new();
    let allows = collect_allows(&lexed, ctx, &mut out);
    let tests = test_regions(src, &lexed);
    check_source_with(src, &lexed, ctx, &allows, &tests, &mut out);
    out
}

/// The per-file rules (R1–R6) over pre-computed lex/allow/test-region
/// state, so the workspace driver can share `allows` with the
/// whole-program rules and the stale-allow audit.
pub(crate) fn check_source_with(
    src: &str,
    lexed: &Lexed,
    ctx: &FileContext,
    allows: &[Allow],
    tests: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let in_test = |pos: usize| tests.iter().any(|&(s, e)| pos >= s && pos < e);

    rule_and_count(src, lexed, ctx, allows, &in_test, out);
    rule_panic(src, lexed, ctx, allows, &in_test, out);
    rule_boundary_match(src, lexed, ctx, allows, out);
    rule_unsafe(src, lexed, ctx, allows, out);
    rule_write_discard(src, lexed, ctx, allows, out);
    rule_filter_confinement(src, lexed, ctx, allows, &in_test, out);
}

/// Files allowed to construct a `CorrelationFilter` under R6: the
/// definition, the one construction seam, and the exchange coordinator.
const FILTER_CONSTRUCTION_FILES: &[&str] = &[
    "crates/core/src/candidates.rs",
    "crates/core/src/approx.rs",
    "crates/core/src/executor.rs",
];

/// R6: `CorrelationFilter` construction — `CorrelationFilter::new(..)`
/// or a `CorrelationFilter { .. }` struct literal — outside the allowed
/// files and test code. Type mentions (`&CorrelationFilter<'_>`,
/// `struct CorrelationFilter`) are fine everywhere: consuming the filter
/// is the point, assembling a second one is the bug.
fn rule_filter_confinement(
    src: &str,
    lexed: &Lexed,
    ctx: &FileContext,
    allows: &[Allow],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Violation>,
) {
    if FILTER_CONSTRUCTION_FILES.contains(&ctx.rel_path.as_str()) || ctx.is_test_file {
        return;
    }
    for (i, tok) in lexed.tokens.iter().enumerate() {
        if !lexed.is_ident(src, i, "CorrelationFilter") || in_test(tok.start) {
            continue;
        }
        // A declaration (`struct CorrelationFilter …`) is not a
        // construction site.
        if i > 0 && lexed.is_ident(src, i - 1, "struct") {
            continue;
        }
        let constructs = (lexed.is_punct(src, i + 1, "::")
            && lexed.is_ident(src, i + 2, "new")
            && lexed.is_punct(src, i + 3, "("))
            || lexed.is_punct(src, i + 1, "{");
        if !constructs {
            continue;
        }
        let line = tok.line;
        if !allowed(allows, "filter_confinement", line) {
            out.push(Violation {
                rule: "R6/filter_confinement".into(),
                file: ctx.rel_path.clone(),
                line,
                message: "`CorrelationFilter` constructed outside the approx module / \
                          exchange coordinator; build it via `correlation_filter` so \
                          every A-HTPGM path consumes the same L1/L2 gates"
                    .into(),
            });
        }
    }
}

/// R1: `.and(..).count_ones()` outside the bitmap kernel module and test
/// code.
fn rule_and_count(
    src: &str,
    lexed: &Lexed,
    ctx: &FileContext,
    allows: &[Allow],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Violation>,
) {
    // The kernel module is where the word-level loops live — the one
    // place allowed to spell popcounts by hand; test files and test
    // regions pin the fused kernels to the unfused reference form.
    if ctx.rel_path == "crates/bitmap/src/kernel.rs" || ctx.is_test_file {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if !(lexed.is_punct(src, i, ".")
            && lexed.is_ident(src, i + 1, "and")
            && lexed.is_punct(src, i + 2, "("))
        {
            continue;
        }
        if in_test(toks[i].start) {
            continue;
        }
        // Skip the balanced argument list.
        let mut depth = 1i32;
        let mut j = i + 3;
        while j < toks.len() && depth > 0 {
            if toks[j].kind == TokenKind::Punct {
                match lexed.text(src, j) {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
            }
            j += 1;
        }
        if lexed.is_punct(src, j, ".") && lexed.is_ident(src, j + 1, "count_ones") {
            let line = toks[i].line;
            if !allowed(allows, "and_count", line) {
                out.push(Violation {
                    rule: "R1/and_count".into(),
                    file: ctx.rel_path.clone(),
                    line,
                    message: "`.and(..).count_ones()` allocates an intermediate bitmap; \
                              use the fused `Bitmap::and_count` (every apriori gate \
                              must go through it)"
                        .into(),
                });
            }
        }
    }
}

/// R2: panicking constructs in non-test library code of the panic-free
/// crates.
fn rule_panic(
    src: &str,
    lexed: &Lexed,
    ctx: &FileContext,
    allows: &[Allow],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Violation>,
) {
    if !PANIC_FREE_CRATES.contains(&ctx.crate_name.as_str()) || ctx.is_test_file {
        return;
    }
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let word = lexed.text(src, i);
        if !PANIC_IDENTS.contains(&word) || in_test(tok.start) {
            continue;
        }
        // Macros must be invoked (`panic!(`); methods must be called
        // (`.unwrap(`). A stray identifier named `assert` in a path or
        // a field called `expect` is not a panic site.
        let is_macro = matches!(
            word,
            "panic" | "assert" | "assert_eq" | "assert_ne" | "unreachable" | "todo"
                | "unimplemented"
        );
        let invoked = if is_macro {
            lexed.is_punct(src, i + 1, "!")
        } else {
            lexed.is_punct(src, i.wrapping_sub(1), ".") && lexed.is_punct(src, i + 1, "(")
        };
        if !invoked {
            continue;
        }
        let line = tok.line;
        if !allowed(allows, "panic", line) {
            out.push(Violation {
                rule: "R2/panic".into(),
                file: ctx.rel_path.clone(),
                line,
                message: format!(
                    "`{word}` can panic in library code reachable from user data; \
                     propagate an error, or annotate the invariant with \
                     `// lint: allow(panic, reason)`"
                ),
            });
        }
    }
}

/// R3: a `match` whose arm patterns name `BoundaryPolicy` must have no
/// wildcard or catch-all-binding arm.
fn rule_boundary_match(
    src: &str,
    lexed: &Lexed,
    ctx: &FileContext,
    allows: &[Allow],
    out: &mut Vec<Violation>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if !lexed.is_ident(src, i, "match") {
            continue;
        }
        // Scrutinee runs to the first `{` at paren depth 0.
        let mut j = i + 1;
        let mut pdepth = 0i32;
        while j < toks.len() {
            if toks[j].kind == TokenKind::Punct {
                match lexed.text(src, j) {
                    "(" | "[" => pdepth += 1,
                    ")" | "]" => pdepth -= 1,
                    "{" if pdepth == 0 => break,
                    ";" if pdepth == 0 => return, // `match` as an ident, not the keyword
                    _ => {}
                }
            }
            j += 1;
        }
        if j >= toks.len() {
            continue;
        }
        let Some((names_policy, bad_arm)) = scan_match_arms(src, lexed, j) else {
            continue;
        };
        if !names_policy {
            continue;
        }
        if let Some((line, what)) = bad_arm {
            if !allowed(allows, "boundary_match", line) {
                out.push(Violation {
                    rule: "R3/boundary_match".into(),
                    file: ctx.rel_path.clone(),
                    line,
                    message: format!(
                        "{what} in a `BoundaryPolicy` match: name every variant so \
                         adding a policy is a compile error at this decision point"
                    ),
                });
            }
        }
    }
}

/// Walks the arms of the match body opening at token `open` (a `{`).
/// Returns `(arm patterns mention BoundaryPolicy, first wildcard/catch-all
/// arm as (line, description))`, or `None` if the body never closes.
fn scan_match_arms(
    src: &str,
    lexed: &Lexed,
    open: usize,
) -> Option<(bool, Option<(u32, &'static str)>)> {
    let toks = &lexed.tokens;
    let mut names_policy = false;
    let mut bad: Option<(u32, &'static str)> = None;
    let mut i = open + 1;
    let mut depth = 0i32; // relative to the body
    let mut pattern: Vec<usize> = Vec::new(); // token indices of the current arm pattern
    let mut in_pattern = true;
    let mut expr_brace: i32 = -1; // depth at which a block-expression arm opened
    while i < toks.len() {
        let is_p = toks[i].kind == TokenKind::Punct;
        let text = lexed.text(src, i);
        if is_p {
            match text {
                "{" | "(" | "[" => {
                    if !in_pattern && depth == 0 && text == "{" && expr_brace < 0 {
                        expr_brace = 0;
                    }
                    depth += 1;
                }
                "}" | ")" | "]" => {
                    if text == "}" && depth == 0 {
                        // End of the match body.
                        if in_pattern && !pattern.is_empty() {
                            check_arm_pattern(src, lexed, &pattern, &mut names_policy, &mut bad);
                        }
                        return Some((names_policy, bad));
                    }
                    depth -= 1;
                    if !in_pattern && text == "}" && expr_brace == depth {
                        // Block-expression arm closed: next arm.
                        expr_brace = -1;
                        in_pattern = true;
                        pattern.clear();
                        i += 1;
                        // Optional trailing comma.
                        if lexed.is_punct(src, i, ",") {
                            i += 1;
                        }
                        continue;
                    }
                }
                "=>" if in_pattern && depth == 0 => {
                    check_arm_pattern(src, lexed, &pattern, &mut names_policy, &mut bad);
                    in_pattern = false;
                    i += 1;
                    continue;
                }
                "," if !in_pattern && depth == 0 => {
                    in_pattern = true;
                    pattern.clear();
                    i += 1;
                    continue;
                }
                _ => {}
            }
        }
        if in_pattern && depth >= 0 {
            pattern.push(i);
        }
        i += 1;
    }
    None
}

/// Classifies one arm pattern: records whether it names `BoundaryPolicy`
/// and whether it is a wildcard (`_`) or catch-all binding (a lone
/// identifier that is not a path or literal), optionally guarded.
fn check_arm_pattern(
    src: &str,
    lexed: &Lexed,
    pattern: &[usize],
    names_policy: &mut bool,
    bad: &mut Option<(u32, &'static str)>,
) {
    if pattern.is_empty() {
        return;
    }
    for &t in pattern {
        if lexed.is_ident(src, t, "BoundaryPolicy") {
            *names_policy = true;
        }
    }
    // Strip a guard: everything from a top-level `if` onward.
    let head: Vec<usize> = pattern
        .iter()
        .copied()
        .take_while(|&t| !lexed.is_ident(src, t, "if"))
        .collect();
    let line = lexed.tokens[pattern[0]].line;
    if bad.is_none() {
        if head.len() == 1 && lexed.is_ident(src, head[0], "_") {
            *bad = Some((line, "wildcard `_` arm"));
        } else if head.len() == 1
            && lexed.tokens[head[0]].kind == TokenKind::Ident
            && !matches!(lexed.text(src, head[0]), "true" | "false")
        {
            *bad = Some((line, "catch-all binding arm"));
        }
    }
}

/// R4: the `unsafe` keyword outside the allocator shim.
fn rule_unsafe(
    src: &str,
    lexed: &Lexed,
    ctx: &FileContext,
    allows: &[Allow],
    out: &mut Vec<Violation>,
) {
    if ctx.rel_path == "crates/bench/src/alloc_track.rs" {
        return;
    }
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && lexed.text(src, i) == "unsafe"
            && !allowed(allows, "unsafe", t.line)
        {
            out.push(Violation {
                rule: "R4/unsafe".into(),
                file: ctx.rel_path.clone(),
                line: t.line,
                message: "`unsafe` is confined to bench/src/alloc_track.rs (the \
                          global-allocator shim); every other crate is \
                          `#![forbid(unsafe_code)]`"
                    .into(),
            });
        }
    }
}

/// R5: discarded write results — `let _ = …write…;` statements and
/// `.ok();` on write-family calls.
fn rule_write_discard(
    src: &str,
    lexed: &Lexed,
    ctx: &FileContext,
    allows: &[Allow],
    out: &mut Vec<Violation>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        // `let _ = <expr containing a write-family ident> ;`
        if lexed.is_ident(src, i, "let")
            && lexed.is_ident(src, i + 1, "_")
            && lexed.is_punct(src, i + 2, "=")
        {
            let mut j = i + 3;
            let mut depth = 0i32;
            let mut writes = false;
            while j < toks.len() {
                if toks[j].kind == TokenKind::Punct {
                    match lexed.text(src, j) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                } else if toks[j].kind == TokenKind::Ident
                    && WRITE_IDENTS.contains(&lexed.text(src, j))
                {
                    writes = true;
                }
                j += 1;
            }
            let line = toks[i].line;
            if writes && !allowed(allows, "write_discard", line) {
                out.push(Violation {
                    rule: "R5/write_discard".into(),
                    file: ctx.rel_path.clone(),
                    line,
                    message: "write result discarded with `let _ =`; propagate the \
                              error (writer sinks latch it for `finish`), or annotate \
                              an infallible target with \
                              `// lint: allow(write_discard, reason)`"
                        .into(),
                });
            }
        }
        // `…write…(…).ok();` — swallowing the Result.
        if lexed.is_punct(src, i, ".")
            && lexed.is_ident(src, i + 1, "ok")
            && lexed.is_punct(src, i + 2, "(")
            && lexed.is_punct(src, i + 3, ")")
            && lexed.is_punct(src, i + 4, ";")
        {
            // Scan the statement backwards for a write-family identifier.
            let mut j = i;
            let mut depth = 0i32;
            let mut writes = false;
            while j > 0 {
                j -= 1;
                if toks[j].kind == TokenKind::Punct {
                    match lexed.text(src, j) {
                        ")" | "]" | "}" => depth += 1,
                        "(" | "[" => depth -= 1,
                        "{" => break,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                } else if toks[j].kind == TokenKind::Ident
                    && WRITE_IDENTS.contains(&lexed.text(src, j))
                {
                    writes = true;
                }
            }
            let line = toks[i].line;
            if writes && !allowed(allows, "write_discard", line) {
                out.push(Violation {
                    rule: "R5/write_discard".into(),
                    file: ctx.rel_path.clone(),
                    line,
                    message: "write result swallowed with `.ok()`; propagate the error \
                              or latch it for `finish`"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    //! Seeded regression fixtures: one deliberately bad snippet per rule,
    //! plus the allow-marker and test-region escape hatches.

    use super::*;

    fn check(rel_path: &str, src: &str) -> Vec<Violation> {
        check_source(src, &FileContext::classify(rel_path))
    }

    #[test]
    fn r1_catches_unfused_and_count() {
        let bad = "fn f(a: &Bitmap, b: &Bitmap) -> usize { a.and(b).count_ones() }";
        let v = check("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R1/and_count");
        // Only the kernel module may spell the unfused form — the rest of
        // the bitmap crate's library code must go through the kernels too.
        assert!(check("crates/bitmap/src/kernel.rs", bad).is_empty());
        assert_eq!(check("crates/bitmap/src/lib.rs", bad).len(), 1);
        // Test files and test regions pin fused kernels to the unfused
        // reference form.
        assert!(check("crates/bitmap/tests/equiv.rs", bad).is_empty());
        let in_mod = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    \
                      fn t() { assert_eq!(a.and_count(&b), a.and(&b).count_ones()); }\n}";
        assert!(check("crates/bitmap/src/lib.rs", in_mod).is_empty());
        // The fused call is fine anywhere.
        let good = "fn f(a: &Bitmap, b: &Bitmap) -> usize { a.and_count(b) }";
        assert!(check("crates/core/src/x.rs", good).is_empty());
        // Nested arguments don't confuse the paren matcher.
        let nested = "let n = x.and(&y.and(&z)).count_ones();";
        assert_eq!(check("crates/core/src/x.rs", nested).len(), 1);
    }

    #[test]
    fn r2_catches_panics_in_library_code() {
        let bad = "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }";
        let v = check("crates/events/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R2/panic");
        // Not a panic-free crate: no finding.
        assert!(check("crates/datagen/src/x.rs", bad).is_empty());
        // Test files are exempt.
        assert!(check("crates/events/tests/x.rs", bad).is_empty());
        // debug_assert is always fine.
        let dbg = "pub fn f(x: usize) { debug_assert!(x > 0); }";
        assert!(check("crates/core/src/x.rs", dbg).is_empty());
        // Macros: panic! and assert! are caught.
        let mac = "pub fn f() { assert!(cond, \"nope\"); }";
        assert_eq!(check("crates/mi/src/x.rs", mac).len(), 1);
    }

    #[test]
    fn r2_respects_allow_marker_and_test_modules() {
        let marked = "pub fn f(v: &[u32]) -> u32 {\n    \
                      // lint: allow(panic, v is non-empty by construction)\n    \
                      *v.first().unwrap()\n}";
        assert!(check("crates/core/src/x.rs", marked).is_empty(), "marker on line above");
        let same_line =
            "pub fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() } // lint: allow(panic, ok)";
        assert!(check("crates/core/src/x.rs", same_line).is_empty(), "marker on same line");
        let tests = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    \
                     fn t() { Some(1).unwrap(); panic!(\"boom\"); }\n}";
        assert!(check("crates/core/src/x.rs", tests).is_empty(), "cfg(test) module exempt");
        // A reason-less marker is itself a violation and suppresses nothing.
        let bare = "// lint: allow(panic)\npub fn f() { panic!(\"x\"); }";
        let v = check("crates/core/src/x.rs", bare);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.rule == "marker"));
        assert!(v.iter().any(|x| x.rule == "R2/panic"));
    }

    #[test]
    fn r3_catches_wildcard_boundary_match() {
        let bad = "fn f(b: BoundaryPolicy) -> u32 {\n    match b {\n        \
                   BoundaryPolicy::Discard => 1,\n        _ => 0,\n    }\n}";
        let v = check("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R3/boundary_match");
        // A catch-all binding is just as bad.
        let binding = "fn f(b: BoundaryPolicy) -> u32 {\n    match b {\n        \
                       BoundaryPolicy::Discard => 1,\n        other => 0,\n    }\n}";
        assert_eq!(check("crates/core/src/x.rs", binding).len(), 1);
        // Exhaustive-by-name matches pass, including or-patterns.
        let good = "fn f(b: BoundaryPolicy) -> u32 {\n    match b {\n        \
                    BoundaryPolicy::Clip | BoundaryPolicy::Discard => 0,\n        \
                    BoundaryPolicy::TrueExtent => 1,\n    }\n}";
        assert!(check("crates/core/src/x.rs", good).is_empty());
        // Matches not naming BoundaryPolicy in their *patterns* are out of
        // scope, even when arms construct policies.
        let unrelated = "fn f(s: &str) -> Result<BoundaryPolicy, String> {\n    match s {\n        \
                         \"clip\" => Ok(BoundaryPolicy::Clip),\n        \
                         other => Err(format!(\"{other}\")),\n    }\n}";
        assert!(check("crates/core/src/x.rs", unrelated).is_empty());
    }

    #[test]
    fn r4_confines_unsafe() {
        let bad = "pub fn f(p: *mut u8) { unsafe { *p = 0; } }";
        let v = check("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R4/unsafe");
        assert!(check("crates/bench/src/alloc_track.rs", bad).is_empty());
        // `unsafe_code` inside the forbid attribute is one identifier,
        // not the keyword.
        assert!(check("crates/core/src/lib.rs", "#![forbid(unsafe_code)]").is_empty());
    }

    #[test]
    fn r5_catches_discarded_write_results() {
        let let_discard = "fn f(w: &mut W) { let _ = writeln!(w, \"x\"); }";
        let v = check("crates/core/src/x.rs", let_discard);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R5/write_discard");
        let ok_discard = "fn f(w: &mut W) { w.write_all(b\"x\").ok(); }";
        assert_eq!(check("crates/core/src/x.rs", ok_discard).len(), 1);
        // Propagated writes are fine.
        let good = "fn f(w: &mut W) -> io::Result<()> { w.write_all(b\"x\")?; w.flush() }";
        assert!(check("crates/core/src/x.rs", good).is_empty());
        // `let _ =` of a non-write expression is fine.
        let unrelated = "fn f(x: u32) { let _ = x; }";
        assert!(check("crates/core/src/x.rs", unrelated).is_empty());
        // Marker suppresses (e.g. fmt::Write into a String is infallible).
        let marked = "fn f(s: &mut String) {\n    \
                      // lint: allow(write_discard, fmt::Write to String is infallible)\n    \
                      let _ = write!(s, \"x\");\n}";
        assert!(check("crates/core/src/x.rs", marked).is_empty());
    }

    #[test]
    fn r6_confines_filter_construction() {
        let call = "fn f(g: &Graph) -> CorrelationFilter<'_> { CorrelationFilter::new(a, e) }";
        let v = check("crates/core/src/shard.rs", call);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "R6/filter_confinement");
        // Struct literals are constructions too.
        let literal = "let f = CorrelationFilter { allowed, edge };";
        assert_eq!(check("crates/ftpm/src/lib.rs", literal).len(), 1);
        // The definition, the approx seam and the exchange coordinator
        // are the allowed homes.
        assert!(check("crates/core/src/candidates.rs", call).is_empty());
        assert!(check("crates/core/src/approx.rs", call).is_empty());
        assert!(check("crates/core/src/executor.rs", call).is_empty());
        // Test files and test regions may assemble fixtures.
        assert!(check("crates/core/tests/approx.rs", call).is_empty());
        let in_mod = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    \
                      fn t() { let f = CorrelationFilter::new(a, e); }\n}";
        assert!(check("crates/core/src/shard.rs", in_mod).is_empty());
        // Consuming the filter — type positions, declarations — is fine
        // everywhere.
        let uses = "struct CorrelationFilter<'a> { x: u8 }\n\
                    fn g(c: Option<&CorrelationFilter<'_>>) {}";
        assert!(check("crates/core/src/shard.rs", uses).is_empty());
        // Marker suppresses with a reason.
        let marked = "fn f() {\n    \
                      // lint: allow(filter_confinement, event-level gate shares the seam)\n    \
                      let f = CorrelationFilter::new(a, e);\n}";
        assert!(check("crates/core/src/shard.rs", marked).is_empty());
    }

    #[test]
    fn fixture_strings_do_not_self_trip() {
        // Rule text inside string literals or comments is data.
        let src = "// mentions .unwrap() and unsafe\nconst S: &str = \
                   \"a.and(b).count_ones() panic! unsafe\";";
        assert!(check("crates/core/src/x.rs", src).is_empty());
    }
}
