//! Fixture corpus for the analyzer's rule set: for every rule R1–R10
//! there is one deliberately-bad case (`rN_flagged/`) that must trip
//! exactly that rule and one minimally-different good case (`rN_clean/`)
//! that must pass the *whole* pipeline clean. Each case directory
//! mirrors workspace-relative paths (`crates/<crate>/src/...`) because
//! the rules key on file placement; the files are fed to
//! [`analyze_sources`] as an in-memory workspace, so the corpus never
//! has to compile. The workspace walker skips `fixtures/` directories —
//! these snippets are data, not code.
//!
//! The JSON snapshot test pins the machine-readable report shape the CI
//! `analyze` job greps; regenerate with `UPDATE_SNAPSHOTS=1 cargo test
//! -p ftpm-analyzer --test fixtures`.

use std::fs;
use std::path::Path;

use ftpm_analyzer::{analyze_sources, AnalyzeOptions, Report};

/// Loads one case directory as `(workspace-relative path, source)`
/// pairs, sorted for determinism.
fn load_case(case: &str) -> Vec<(String, String)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case);
    let mut rels = Vec::new();
    collect(&dir, &dir, &mut rels);
    assert!(!rels.is_empty(), "fixture case {case} has no files");
    rels.sort();
    rels.into_iter()
        .map(|rel| {
            let src = fs::read_to_string(dir.join(&rel)).expect("fixture file readable");
            (rel, src)
        })
        .collect()
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) {
    for entry in fs::read_dir(dir).expect("fixture dir readable") {
        let path = entry.expect("fixture dir entry").path();
        if path.is_dir() {
            collect(root, &path, out);
        } else {
            let rel = path
                .strip_prefix(root)
                .expect("file under case root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
}

fn run(case: &str) -> Report {
    analyze_sources(load_case(case), &AnalyzeOptions::default())
}

fn render(report: &Report) -> String {
    report
        .violations
        .iter()
        .chain(&report.warnings)
        .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Every rule has a flagged fixture tripping it (and nothing else) and a
/// clean fixture passing the full pipeline — violations, warnings and
/// internal errors all empty.
#[test]
fn every_rule_has_a_flagged_and_a_clean_fixture() {
    for n in 1..=10 {
        let tag = format!("R{n}/");
        let flagged = run(&format!("r{n}_flagged"));
        assert!(
            flagged.violations.iter().any(|v| v.rule.starts_with(&tag)),
            "r{n}_flagged must trip {tag}:\n{}",
            render(&flagged)
        );
        assert!(
            flagged.violations.iter().all(|v| v.rule.starts_with(&tag)),
            "r{n}_flagged must trip only {tag}:\n{}",
            render(&flagged)
        );
        assert!(
            flagged.internal_errors.is_empty(),
            "r{n}_flagged hit internal errors: {:?}",
            flagged.internal_errors
        );

        let clean = run(&format!("r{n}_clean"));
        assert!(
            clean.violations.is_empty() && clean.warnings.is_empty(),
            "r{n}_clean must pass clean:\n{}",
            render(&clean)
        );
        assert!(
            clean.internal_errors.is_empty(),
            "r{n}_clean hit internal errors: {:?}",
            clean.internal_errors
        );
    }
}

/// A suppression that fires nothing is reported — warning by default,
/// violation under `--strict-allows` — so markers cannot outlive their
/// reason.
#[test]
fn stale_allows_warn_by_default_and_error_under_strict() {
    let sources = vec![(
        "crates/core/src/quiet.rs".to_string(),
        "// lint: allow(panic, never fires)\npub fn quiet() {}\n".to_string(),
    )];
    let lax = analyze_sources(sources.clone(), &AnalyzeOptions::default());
    assert!(lax.violations.is_empty(), "{}", render(&lax));
    assert_eq!(lax.warnings.len(), 1, "{}", render(&lax));
    assert_eq!(lax.warnings[0].rule, "stale_allow");

    let strict = analyze_sources(sources, &AnalyzeOptions { strict_allows: true });
    assert_eq!(strict.violations.len(), 1, "{}", render(&strict));
    assert_eq!(strict.violations[0].rule, "stale_allow");
    assert!(strict.warnings.is_empty(), "{}", render(&strict));
}

/// A used suppression is *not* stale: the same marker next to a real
/// panic site suppresses the finding and survives the audit.
#[test]
fn used_allows_are_not_stale() {
    let sources = vec![(
        "crates/core/src/loud.rs".to_string(),
        "pub fn loud(v: &[u32]) -> u32 {\n    \
         // lint: allow(panic, v is non-empty by construction)\n    \
         *v.first().unwrap()\n}\n"
            .to_string(),
    )];
    let report = analyze_sources(sources, &AnalyzeOptions { strict_allows: true });
    assert!(
        report.violations.is_empty() && report.warnings.is_empty(),
        "{}",
        render(&report)
    );
    assert_eq!(report.allows.len(), 1, "audit trail keeps the marker");
}

/// Snapshot of the JSON report shape: one violation, one stale-allow
/// warning, one audit-trail allow — every array and counter populated.
/// CI greps this format (`violation_count`, `internal_error_count`), so
/// drift must be deliberate.
#[test]
fn json_report_shape_snapshot() {
    let sources = vec![(
        "crates/events/src/snap.rs".to_string(),
        "// lint: allow(and_count, stale by design)\n\
         pub fn snap(v: &[u32]) -> u32 { *v.first().unwrap() }\n"
            .to_string(),
    )];
    let report = analyze_sources(sources, &AnalyzeOptions::default());
    let actual = report.to_json();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/report_snapshot.json");
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        fs::write(&path, &actual).expect("write snapshot");
    }
    let expected = fs::read_to_string(&path)
        .expect("snapshot present — regenerate with UPDATE_SNAPSHOTS=1");
    assert_eq!(
        actual, expected,
        "JSON report shape drifted; regenerate with UPDATE_SNAPSHOTS=1 if deliberate"
    );
}
