//! R7 fixture (flagged): the CSA kernel reaches a formatting allocation
//! through a helper — transient allocation on the hot path.

pub fn and_count(a: &[u64], b: &[u64]) -> u32 {
    fused(a, b)
}

fn fused(a: &[u64], b: &[u64]) -> u32 {
    let label = format!("{}w", a.len().min(b.len()));
    label.len() as u32
}
