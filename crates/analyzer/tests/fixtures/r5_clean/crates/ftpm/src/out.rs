//! R5 fixture (clean): the write result propagates to the caller.

pub fn dump<W: std::io::Write>(w: &mut W) -> std::io::Result<()> {
    writeln!(w, "patterns")
}
