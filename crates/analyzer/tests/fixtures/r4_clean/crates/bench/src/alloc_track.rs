//! R4 fixture (clean): the global-allocator shim is the one permitted
//! home of `unsafe`.

pub fn zero(p: *mut u8) {
    unsafe {
        *p = 0;
    }
}
