//! R1 fixture (clean): the same gate through the fused kernel.

pub fn joint_support(a: &Bitmap, b: &Bitmap) -> usize {
    a.and_count(b)
}
