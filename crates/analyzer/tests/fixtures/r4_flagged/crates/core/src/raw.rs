//! R4 fixture (flagged): `unsafe` outside the allocator shim.

pub fn zero(p: *mut u8) {
    unsafe {
        *p = 0;
    }
}
