#![forbid(unsafe_code)]
//! The facade covers the whole core surface.

pub use ftpm_core::{Gadget, Widget};
