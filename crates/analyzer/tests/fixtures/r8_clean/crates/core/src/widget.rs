pub struct Widget;
pub struct Gadget;
