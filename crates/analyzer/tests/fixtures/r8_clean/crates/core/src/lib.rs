#![forbid(unsafe_code)]
//! R8 fixture (clean): every core export is re-exported by the facade.

mod widget;

pub use widget::{Gadget, Widget};
