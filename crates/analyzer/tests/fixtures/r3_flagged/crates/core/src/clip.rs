//! R3 fixture (flagged): a `BoundaryPolicy` match with a wildcard arm —
//! adding a fourth policy would silently fall through here.

pub fn weight(policy: BoundaryPolicy) -> u32 {
    match policy {
        BoundaryPolicy::Clip => 1,
        _ => 0,
    }
}
