//! R7 fixture (clean): the kernel and its helper stay pure — word-level
//! arithmetic only, nothing transitively allocates or panics.

pub fn and_count(a: &[u64], b: &[u64]) -> u32 {
    fused(a, b)
}

fn fused(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b.iter()).map(|(x, y)| (x & y).count_ones()).sum()
}
