//! R10 fixture (clean): `parallel.rs` is a permitted home for
//! concurrency primitives.

pub struct WorkQueue {
    jobs: std::sync::Mutex<Vec<u32>>,
}
