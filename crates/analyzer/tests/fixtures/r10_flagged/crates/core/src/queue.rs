//! R10 fixture (flagged): a concurrency primitive outside the
//! parallel/executor/schedule modules.

pub struct WorkQueue {
    jobs: std::sync::Mutex<Vec<u32>>,
}
