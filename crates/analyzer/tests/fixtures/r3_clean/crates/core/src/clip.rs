//! R3 fixture (clean): every variant named, so a new policy is a
//! compile error at this decision point.

pub fn weight(policy: BoundaryPolicy) -> u32 {
    match policy {
        BoundaryPolicy::Clip => 1,
        BoundaryPolicy::Discard => 0,
        BoundaryPolicy::TrueExtent => 2,
    }
}
