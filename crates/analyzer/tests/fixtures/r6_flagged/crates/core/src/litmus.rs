//! R6 fixture (flagged): a `CorrelationFilter` assembled outside the
//! approx seam — this copy can silently disagree with the L1/L2 gates
//! every other A-HTPGM path consumes.

pub fn rebuild(allowed: AllowedSet, edges: EdgeSet) -> CorrelationFilter {
    CorrelationFilter::new(allowed, edges)
}
