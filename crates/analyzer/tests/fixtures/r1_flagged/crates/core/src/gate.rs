//! R1 fixture (flagged): an apriori gate spelled with the unfused form,
//! allocating an intermediate bitmap on the miner's hottest path.

pub fn joint_support(a: &Bitmap, b: &Bitmap) -> usize {
    a.and(b).count_ones()
}
