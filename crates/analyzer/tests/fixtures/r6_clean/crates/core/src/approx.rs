//! R6 fixture (clean): the approx module is the construction seam.

pub fn rebuild(allowed: AllowedSet, edges: EdgeSet) -> CorrelationFilter {
    CorrelationFilter::new(allowed, edges)
}
