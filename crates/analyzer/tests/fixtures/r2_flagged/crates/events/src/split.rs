//! R2 fixture (flagged): a panic on user data in a panic-free crate.

pub fn first_window(starts: &[u32]) -> u32 {
    *starts.first().unwrap()
}
