//! R5 fixture (flagged): a sink write whose result is discarded.

pub fn dump<W: std::io::Write>(w: &mut W) {
    let _ = writeln!(w, "patterns");
}
