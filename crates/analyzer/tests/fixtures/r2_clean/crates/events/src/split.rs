//! R2 fixture (clean): the same accessor with a total fallback.

pub fn first_window(starts: &[u32]) -> u32 {
    starts.first().copied().unwrap_or(0)
}
