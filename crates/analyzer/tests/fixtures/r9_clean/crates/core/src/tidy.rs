//! R9 fixture (clean): the public miner delegates to the seam.

pub fn mine_tidy(windows: &[u32]) -> usize {
    mine_internal(windows)
}

fn mine_internal(windows: &[u32]) -> usize {
    windows.len()
}
