//! R9 fixture (flagged): a public miner that never routes through the
//! `mine_internal` seam family — it would bypass the shared sink,
//! boundary and correlation plumbing.

pub fn mine_rogue(windows: &[u32]) -> usize {
    windows.len()
}
