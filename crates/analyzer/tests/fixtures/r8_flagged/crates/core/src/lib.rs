#![forbid(unsafe_code)]
//! R8 fixture (flagged): core exports `Widget` and `Gadget`, but the
//! facade below re-exports only `Gadget`.

mod widget;

pub use widget::{Gadget, Widget};
