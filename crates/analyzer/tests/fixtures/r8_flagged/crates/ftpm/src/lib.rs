#![forbid(unsafe_code)]
//! The facade forgot `Widget`.

pub use ftpm_core::Gadget;
